//! The threaded phase-overlap executor.
//!
//! A linear chain of phases runs on a pool of OS threads. In **barrier**
//! mode every phase completes before the next starts — the strict
//! sequential-phase regime the paper starts from. In **overlap** mode the
//! executor applies the paper's enablement machinery for real: identity
//! releases matching successor ranges as current tasks complete, counted
//! (indirect/seam) mappings decrement per-granule enablement counters, and
//! universal successors release wholesale when they enter the one-phase
//! lookahead window.
//!
//! The executive is deliberately a single mutex-protected queue — PAX's
//! management was serial, and the lock hold times here are exactly the
//! "completion processing and task scheduling time" the paper budgets at
//! one cycle per processor per task time.

use crate::work::spin_for;
use parking_lot::{Condvar, Mutex};
use pax_core::mapping::CompositeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a phase enables its successor in the chain.
#[derive(Clone)]
pub enum RtMapping {
    /// Strict barrier (also used for the paper's null mapping).
    Barrier,
    /// Successor shares nothing; released wholesale at window entry.
    Universal,
    /// Completion of granule `i` releases successor granule `i`
    /// (granule counts must match).
    Identity,
    /// Composite-map enablement counters (forward/reverse indirect and
    /// seam mappings all lower to this, as in the paper).
    Counted(Arc<CompositeMap>),
}

impl std::fmt::Debug for RtMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtMapping::Barrier => write!(f, "Barrier"),
            RtMapping::Universal => write!(f, "Universal"),
            RtMapping::Identity => write!(f, "Identity"),
            RtMapping::Counted(c) => write!(f, "Counted({} entries)", c.entries()),
        }
    }
}

/// One phase of real work.
#[derive(Clone)]
pub struct RtPhase {
    /// Name for reports.
    pub name: String,
    /// Granule count.
    pub granules: u32,
    /// The work of one granule (called with the granule index).
    pub work: Arc<dyn Fn(u32) + Send + Sync>,
    /// How this phase enables the next one in the chain.
    pub mapping_to_next: RtMapping,
}

impl RtPhase {
    /// A phase running `work` for each of `granules` granules.
    pub fn new(
        name: impl Into<String>,
        granules: u32,
        work: Arc<dyn Fn(u32) + Send + Sync>,
    ) -> RtPhase {
        RtPhase {
            name: name.into(),
            granules,
            work,
            mapping_to_next: RtMapping::Barrier,
        }
    }

    /// Set the enablement mapping to the next phase.
    pub fn with_mapping(mut self, m: RtMapping) -> RtPhase {
        self.mapping_to_next = m;
        self
    }

    /// A phase that spins for `per_granule` per granule — synthetic load
    /// with a real execution time.
    pub fn synthetic(name: impl Into<String>, granules: u32, per_granule: Duration) -> RtPhase {
        RtPhase::new(name, granules, Arc::new(move |_| spin_for(per_granule)))
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Granules per task.
    pub task_granules: u32,
    /// Overlap (true) or strict barriers (false).
    pub overlap: bool,
    /// Optional cluster count for proximity-aware stealing in the lateral
    /// executor (the paper's "data-proximity work assignment algorithm"
    /// on real threads): workers are block-partitioned into clusters and
    /// an idle worker raids same-cluster peers before crossing clusters.
    /// Ignored by the central executor. `None` = flat steal order.
    pub clusters: Option<usize>,
    /// Completion-service lanes. `1` (the default) is PAX's serial
    /// executive: every worker processes its own completion while holding
    /// the executive lock. With more lanes, completions are *posted* to a
    /// pending queue and one worker at a time acts as the combiner,
    /// draining up to `exec_lanes` postings per critical section and
    /// yielding the lock between batches — the paper's "middle
    /// management" answer to rundown: idle processors help service the
    /// completion queue instead of waiting on it. Ignored by the lateral
    /// executor, whose completion processing is already per-worker.
    pub exec_lanes: usize,
}

impl RuntimeConfig {
    /// `workers` threads, task size per the paper's two-tasks-per-worker
    /// guidance applied by the caller, overlap on.
    pub fn new(workers: usize, task_granules: u32) -> RuntimeConfig {
        assert!(workers > 0 && task_granules > 0);
        RuntimeConfig {
            workers,
            task_granules,
            overlap: true,
            clusters: None,
            exec_lanes: 1,
        }
    }

    /// Switch to strict barrier mode.
    pub fn barrier(mut self) -> RuntimeConfig {
        self.overlap = false;
        self
    }

    /// Service completions in combiner batches of up to `lanes` per
    /// executive critical section (must be ≥ 1; 1 keeps the serial
    /// own-completion service).
    pub fn with_exec_lanes(mut self, lanes: usize) -> RuntimeConfig {
        assert!(lanes > 0, "need at least one executive lane");
        self.exec_lanes = lanes;
        self
    }

    /// Enable proximity-aware stealing with `clusters` worker clusters.
    pub fn with_clusters(mut self, clusters: usize) -> RuntimeConfig {
        assert!(clusters > 0, "need at least one cluster");
        self.clusters = Some(clusters);
        self
    }

    /// Cluster of worker `w` (block partition; cluster 0 when proximity
    /// stealing is disabled).
    pub fn worker_cluster(&self, w: usize) -> usize {
        match self.clusters {
            None => 0,
            Some(c) => {
                let block = self.workers.div_ceil(c).max(1);
                (w / block).min(c - 1)
            }
        }
    }
}

/// Per-phase measured timings.
#[derive(Debug, Clone)]
pub struct RtPhaseReport {
    /// Phase name.
    pub name: String,
    /// First granule start, relative to run start.
    pub first_start: Option<Duration>,
    /// Last granule end, relative to run start.
    pub last_end: Option<Duration>,
    /// Granules executed while the previous phase was still incomplete.
    pub overlap_granules: u64,
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RtReport {
    /// Wall-clock duration.
    pub wall: Duration,
    /// Sum of worker busy time.
    pub busy: Duration,
    /// Worker count.
    pub workers: usize,
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks stolen from a peer in the thief's own cluster (lateral
    /// executor only; 0 elsewhere).
    pub steals_same_cluster: u64,
    /// Tasks stolen from a peer in another cluster (lateral executor
    /// only; counts all peer steals when clustering is disabled).
    pub steals_cross_cluster: u64,
    /// Per-phase details.
    pub phases: Vec<RtPhaseReport>,
}

impl RtReport {
    /// busy / (workers × wall).
    pub fn utilization(&self) -> f64 {
        let cap = self.wall.as_secs_f64() * self.workers as f64;
        if cap <= 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / cap
        }
    }

    /// Total granules that ran during their predecessor's phase.
    pub fn total_overlap_granules(&self) -> u64 {
        self.phases.iter().map(|p| p.overlap_granules).sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct Task {
    phase: usize,
    lo: u32,
    hi: u32,
}

struct PhaseState {
    remaining: u32,
    /// Enablement counters for a counted mapping *into* this phase.
    counters: Option<Vec<u32>>,
    released: bool,
    /// Identity releases that fired while this phase was still outside
    /// the lookahead window; flushed at window entry. Without this buffer
    /// a ≥3-phase identity chain loses releases and deadlocks.
    deferred: Vec<(u32, u32)>,
    first_start: Option<Instant>,
    last_end: Option<Instant>,
    overlap_granules: u64,
}

struct State {
    queue: VecDeque<Task>,
    phases: Vec<PhaseState>,
    /// Lowest incomplete phase.
    current: usize,
    done: bool,
    tasks_executed: u64,
    /// Completions posted but not yet serviced (`exec_lanes > 1` only).
    pending: VecDeque<(Task, Instant)>,
    /// A worker is currently draining `pending` in combiner batches.
    combining: bool,
}

struct Shared {
    state: Mutex<State>,
    cond: Condvar,
    specs: Vec<RtPhase>,
    cfg: RuntimeConfig,
    t0: Instant,
}

impl Shared {
    /// Push a range of `phase` as task-sized chunks; caller holds the lock.
    fn push_range(&self, st: &mut State, phase: usize, lo: u32, hi: u32) {
        let step = self.cfg.task_granules;
        let mut a = lo;
        while a < hi {
            let b = (a + step).min(hi);
            st.queue.push_back(Task {
                phase,
                lo: a,
                hi: b,
            });
            a = b;
        }
        self.cond.notify_all();
    }

    /// Release all granules of `phase`; caller holds the lock.
    fn release_all(&self, st: &mut State, phase: usize) {
        if st.phases[phase].released {
            return;
        }
        st.phases[phase].released = true;
        let n = self.specs[phase].granules;
        self.push_range(st, phase, 0, n);
    }

    /// Called when `phase` enters the lookahead window (its predecessor
    /// became current); caller holds the lock.
    fn on_window_entry(&self, st: &mut State, phase: usize) {
        if phase >= self.specs.len() || !self.cfg.overlap {
            return;
        }
        // flush identity releases deferred while out of window
        let deferred = std::mem::take(&mut st.phases[phase].deferred);
        for (a, b) in deferred {
            self.push_range(st, phase, a, b);
        }
        match &self.specs[phase - 1].mapping_to_next {
            RtMapping::Universal => self.release_all(st, phase),
            RtMapping::Counted(comp) => {
                // null-set-enabled successor granules release immediately
                let mut runs: Vec<(u32, u32)> = Vec::new();
                {
                    let counters = st.phases[phase]
                        .counters
                        .get_or_insert_with(|| comp.requires.clone());
                    let mut i = 0u32;
                    let n = counters.len() as u32;
                    while i < n {
                        if counters[i as usize] == 0 {
                            let start = i;
                            while i < n && counters[i as usize] == 0 {
                                i += 1;
                            }
                            runs.push((start, i));
                        } else {
                            i += 1;
                        }
                    }
                }
                st.phases[phase].released =
                    runs.len() == 1 && runs[0] == (0, self.specs[phase].granules);
                for (a, b) in runs {
                    self.push_range(st, phase, a, b);
                }
            }
            RtMapping::Identity | RtMapping::Barrier => {}
        }
    }

    /// Completion processing for one task; caller holds the lock.
    fn complete(&self, st: &mut State, t: Task, now: Instant) {
        let len = t.hi - t.lo;
        let ps = &mut st.phases[t.phase];
        ps.remaining -= len;
        ps.last_end = Some(now);
        let phase_done = ps.remaining == 0;

        // Enablement into the successor. A task of the *overlapped*
        // successor (t.phase == current + 1) enables granules of phase
        // current + 2, which is still outside the lookahead window: those
        // releases are deferred (identity) or left as zeroed counters
        // (counted) and flushed at window entry — dropping them would
        // deadlock chains of three or more overlappable phases.
        let succ = t.phase + 1;
        if self.cfg.overlap && succ < self.specs.len() {
            let in_window = succ == st.current + 1;
            match &self.specs[t.phase].mapping_to_next {
                RtMapping::Identity => {
                    if in_window {
                        self.push_range(st, succ, t.lo, t.hi);
                    } else {
                        st.phases[succ].deferred.push((t.lo, t.hi));
                    }
                }
                RtMapping::Counted(comp) => {
                    let mut freed: Vec<u32> = Vec::new();
                    {
                        let counters = st.phases[succ]
                            .counters
                            .get_or_insert_with(|| comp.requires.clone());
                        for g in t.lo..t.hi {
                            for &r in comp.dependents_of(g) {
                                let c = &mut counters[r as usize];
                                debug_assert!(*c > 0);
                                *c -= 1;
                                if *c == 0 {
                                    freed.push(r);
                                }
                            }
                        }
                    }
                    if in_window {
                        freed.sort_unstable();
                        let mut i = 0;
                        while i < freed.len() {
                            let start = freed[i];
                            let mut end = start + 1;
                            i += 1;
                            while i < freed.len() && freed[i] == end {
                                end += 1;
                                i += 1;
                            }
                            self.push_range(st, succ, start, end);
                        }
                    }
                    // out of window: zeroed counters are picked up by the
                    // window-entry scan
                }
                RtMapping::Universal | RtMapping::Barrier => {}
            }
        }

        if phase_done && t.phase == st.current {
            // advance over any already-finished phases
            while st.current < self.specs.len() && st.phases[st.current].remaining == 0 {
                st.current += 1;
                if st.current < self.specs.len() {
                    let cur = st.current;
                    // barrier release of the new current phase (covers
                    // barrier mode and identity/counted leftovers)
                    if !st.phases[cur].released {
                        let released_so_far = self.released_len(st, cur);
                        let n = self.specs[cur].granules;
                        if released_so_far < n {
                            // release whatever the mapping never released;
                            // for barrier mode this is everything
                            self.release_barrier_residual(st, cur);
                        }
                        st.phases[cur].released = true;
                    }
                    // the next phase enters the lookahead window
                    if cur + 1 < self.specs.len() {
                        self.on_window_entry(st, cur + 1);
                    }
                }
            }
            if st.current >= self.specs.len() {
                st.done = true;
                self.cond.notify_all();
            }
        }
    }

    /// Granules of `phase` already released (executed + queued + running
    /// are not separable here, so we track via counters/released flags):
    /// barrier-residual release pushes only granules whose enablement
    /// never fired.
    fn released_len(&self, st: &State, phase: usize) -> u32 {
        let n = self.specs[phase].granules;
        if st.phases[phase].released {
            return n;
        }
        // with identity, released == completed granules of predecessor;
        // the exact number is n - remaining + queued; rather than track
        // precisely we conservatively return 0 so the residual path runs
        // and deduplicates via per-granule released bits below.
        0
    }

    fn release_barrier_residual(&self, st: &mut State, phase: usize) {
        // Residual release at the barrier: for identity/counted mappings,
        // everything the enablement machinery didn't release must be
        // released now. We must avoid double-pushing granules. For
        // identity: the predecessor is complete, so every granule was
        // released by task completions — nothing to do. For counted: any
        // counter still > 0 was never released (possible only if the
        // predecessor never ran in overlap mode, i.e. barrier mode).
        let overlap = self.cfg.overlap;
        if !overlap {
            self.release_all(st, phase);
            return;
        }
        match if phase == 0 {
            &RtMapping::Barrier
        } else {
            &self.specs[phase - 1].mapping_to_next
        } {
            RtMapping::Barrier => self.release_all(st, phase),
            RtMapping::Identity => { /* fully released by completions */ }
            RtMapping::Universal => self.release_all(st, phase),
            RtMapping::Counted(comp) => {
                let runs: Vec<(u32, u32)> = {
                    let counters = st.phases[phase]
                        .counters
                        .get_or_insert_with(|| comp.requires.clone());
                    // counters should all be zero here (predecessor is
                    // complete); release anything nonzero defensively —
                    // it can only be nonzero if enablement was skipped
                    // because the phase was outside the window.
                    let mut runs = Vec::new();
                    let mut i = 0u32;
                    let n = counters.len() as u32;
                    while i < n {
                        if counters[i as usize] > 0 {
                            let start = i;
                            while i < n && counters[i as usize] > 0 {
                                counters[i as usize] = 0;
                                i += 1;
                            }
                            runs.push((start, i));
                        } else {
                            i += 1;
                        }
                    }
                    runs
                };
                for (a, b) in runs {
                    self.push_range(st, phase, a, b);
                }
            }
        }
    }
}

/// Run a phase chain to completion; returns measured timings.
pub fn run_chain(specs: Vec<RtPhase>, cfg: RuntimeConfig) -> RtReport {
    assert!(!specs.is_empty(), "need at least one phase");
    for (i, s) in specs.iter().enumerate() {
        if let RtMapping::Identity = s.mapping_to_next {
            if i + 1 < specs.len() {
                assert_eq!(
                    s.granules,
                    specs[i + 1].granules,
                    "identity mapping requires equal granule counts"
                );
            }
        }
    }
    let nphases = specs.len();
    let t0 = Instant::now();
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            phases: (0..nphases)
                .map(|i| PhaseState {
                    remaining: specs[i].granules,
                    counters: None,
                    released: false,
                    deferred: Vec::new(),
                    first_start: None,
                    last_end: None,
                    overlap_granules: 0,
                })
                .collect(),
            current: 0,
            done: false,
            tasks_executed: 0,
            pending: VecDeque::new(),
            combining: false,
        }),
        cond: Condvar::new(),
        specs,
        cfg: cfg.clone(),
        t0,
    });

    {
        let mut st = shared.state.lock();
        shared.release_all(&mut st, 0);
        if nphases > 1 {
            shared.on_window_entry(&mut st, 1);
        }
    }

    let mut handles = Vec::with_capacity(cfg.workers);
    for _ in 0..cfg.workers {
        let sh = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut busy = Duration::ZERO;
            loop {
                let task = {
                    let mut st = sh.state.lock();
                    loop {
                        if let Some(t) = st.queue.pop_front() {
                            let now = Instant::now();
                            let current = st.current;
                            let ps = &mut st.phases[t.phase];
                            if ps.first_start.is_none() {
                                ps.first_start = Some(now);
                            }
                            if t.phase > current {
                                ps.overlap_granules += (t.hi - t.lo) as u64;
                            }
                            break Some(t);
                        }
                        if st.done {
                            break None;
                        }
                        sh.cond.wait(&mut st);
                    }
                };
                let Some(t) = task else { break };
                let start = Instant::now();
                for g in t.lo..t.hi {
                    (sh.specs[t.phase].work)(g);
                }
                busy += start.elapsed();
                let mut st = sh.state.lock();
                st.tasks_executed += 1;
                if sh.cfg.exec_lanes <= 1 {
                    // Serial executive: service your own completion while
                    // holding the lock (the PAX arrangement).
                    sh.complete(&mut st, t, Instant::now());
                } else {
                    // Multi-lane service: post the completion; if a
                    // combiner is already draining, it will pick this
                    // posting up and this worker goes straight back to
                    // seeking work. Otherwise become the combiner and
                    // drain in batches of `exec_lanes`, yielding the lock
                    // between batches so peers post and fetch instead of
                    // queueing behind one long critical section.
                    st.pending.push_back((t, Instant::now()));
                    if !st.combining {
                        st.combining = true;
                        loop {
                            for _ in 0..sh.cfg.exec_lanes {
                                let Some((pt, pnow)) = st.pending.pop_front() else {
                                    break;
                                };
                                sh.complete(&mut st, pt, pnow);
                            }
                            if st.pending.is_empty() {
                                break;
                            }
                            drop(st);
                            st = sh.state.lock();
                        }
                        st.combining = false;
                    }
                }
            }
            busy
        }));
    }

    let mut busy_total = Duration::ZERO;
    for h in handles {
        busy_total += h.join().expect("worker panicked");
    }
    let wall = t0.elapsed();
    let st = shared.state.lock();
    let phases = shared
        .specs
        .iter()
        .zip(st.phases.iter())
        .map(|(spec, ps)| RtPhaseReport {
            name: spec.name.clone(),
            first_start: ps.first_start.map(|t| t.duration_since(shared.t0)),
            last_end: ps.last_end.map(|t| t.duration_since(shared.t0)),
            overlap_granules: ps.overlap_granules,
        })
        .collect();
    RtReport {
        wall,
        busy: busy_total,
        workers: cfg.workers,
        tasks: st.tasks_executed,
        steals_same_cluster: 0,
        steals_cross_cluster: 0,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{SharedCounters, SharedF64};

    fn counting_phase(name: &str, n: u32, counters: Arc<SharedCounters>) -> RtPhase {
        RtPhase::new(
            name,
            n,
            Arc::new(move |g| {
                counters.incr(g as usize);
            }),
        )
    }

    #[test]
    fn every_granule_runs_exactly_once_barrier() {
        let c1 = Arc::new(SharedCounters::zeros(100));
        let c2 = Arc::new(SharedCounters::zeros(100));
        let phases = vec![
            counting_phase("a", 100, Arc::clone(&c1)).with_mapping(RtMapping::Identity),
            counting_phase("b", 100, Arc::clone(&c2)),
        ];
        let r = run_chain(phases, RuntimeConfig::new(4, 8).barrier());
        for i in 0..100 {
            assert_eq!(c1.get(i), 1);
            assert_eq!(c2.get(i), 1);
        }
        assert_eq!(
            r.total_overlap_granules(),
            0,
            "barrier mode must not overlap"
        );
    }

    #[test]
    fn identity_overlap_preserves_dataflow() {
        // phase 1: B[i] = i + 1; phase 2: C[i] = B[i] * 2.
        // If enablement is wrong, C sees zeros.
        let n = 400u32;
        let b = Arc::new(SharedF64::zeros(n as usize));
        let c = Arc::new(SharedF64::zeros(n as usize));
        let b1 = Arc::clone(&b);
        let p1 = RtPhase::new(
            "write-b",
            n,
            Arc::new(move |g| {
                spin_for(Duration::from_micros(20));
                b1.set(g as usize, g as f64 + 1.0);
            }),
        )
        .with_mapping(RtMapping::Identity);
        let b2 = Arc::clone(&b);
        let c2 = Arc::clone(&c);
        let p2 = RtPhase::new(
            "read-b",
            n,
            Arc::new(move |g| {
                let v = b2.get(g as usize);
                c2.set(g as usize, v * 2.0);
            }),
        );
        let r = run_chain(vec![p1, p2], RuntimeConfig::new(4, 4));
        for g in 0..n {
            assert_eq!(c.get(g as usize), (g as f64 + 1.0) * 2.0, "granule {g}");
        }
        assert_eq!(r.tasks, 200);
    }

    #[test]
    fn counted_mapping_preserves_dataflow() {
        // successor granule r needs current granules {r, r+1 mod n}
        let n = 200u32;
        let req: Vec<Vec<u32>> = (0..n).map(|r| vec![r, (r + 1) % n]).collect();
        let comp = Arc::new(CompositeMap::from_requirement_lists(&req, n));
        let a = Arc::new(SharedF64::zeros(n as usize));
        let out = Arc::new(SharedF64::zeros(n as usize));
        let a1 = Arc::clone(&a);
        let p1 = RtPhase::new(
            "gen",
            n,
            Arc::new(move |g| {
                spin_for(Duration::from_micros(10));
                a1.set(g as usize, g as f64);
            }),
        )
        .with_mapping(RtMapping::Counted(comp));
        let a2 = Arc::clone(&a);
        let o2 = Arc::clone(&out);
        let p2 = RtPhase::new(
            "stencil",
            n,
            Arc::new(move |g| {
                let v = a2.get(g as usize) + a2.get(((g + 1) % n) as usize);
                o2.set(g as usize, v);
            }),
        );
        run_chain(vec![p1, p2], RuntimeConfig::new(4, 2));
        for g in 0..n {
            let expect = g as f64 + ((g + 1) % n) as f64;
            assert_eq!(out.get(g as usize), expect, "granule {g}");
        }
    }

    #[test]
    fn universal_overlap_runs_both_phases() {
        let c1 = Arc::new(SharedCounters::zeros(50));
        let c2 = Arc::new(SharedCounters::zeros(50));
        let phases = vec![
            counting_phase("a", 50, Arc::clone(&c1)).with_mapping(RtMapping::Universal),
            counting_phase("b", 50, Arc::clone(&c2)),
        ];
        run_chain(phases, RuntimeConfig::new(4, 4));
        for i in 0..50 {
            assert_eq!(c1.get(i), 1);
            assert_eq!(c2.get(i), 1);
        }
    }

    #[test]
    fn overlap_improves_utilization_with_rundown_tail() {
        // A long-tailed phase into a universal successor: barrier idles
        // workers during the tail; overlap fills them. Two workers only —
        // oversubscribing the host's cores would turn spin-time into
        // scheduler noise and erase the structural gap this test asserts.
        let mk = || {
            let slow = RtPhase::new(
                "tail",
                4,
                Arc::new(|g| {
                    // granule 3 is a straggler: the barrier leaves one
                    // worker idle for ~35 ms while it spins
                    if g == 3 {
                        spin_for(Duration::from_millis(40));
                    } else {
                        spin_for(Duration::from_millis(5));
                    }
                }),
            )
            .with_mapping(RtMapping::Universal);
            let fill = RtPhase::synthetic("fill", 30, Duration::from_micros(2500));
            vec![slow, fill]
        };
        // Shared-VM noise: other test binaries spin on the same cores, so
        // compare the best of five interleaved runs per mode and retry the
        // whole comparison up to three times before calling it a
        // regression. Overlap occurrence is load-independent and checked
        // every attempt.
        let mut last = (Duration::ZERO, Duration::ZERO);
        for _attempt in 0..3 {
            let mut barrier = Duration::MAX;
            let mut overlap = Duration::MAX;
            let mut overlap_granules = 0;
            for _ in 0..5 {
                barrier = barrier.min(run_chain(mk(), RuntimeConfig::new(2, 1).barrier()).wall);
                let r = run_chain(mk(), RuntimeConfig::new(2, 1));
                overlap = overlap.min(r.wall);
                overlap_granules += r.total_overlap_granules();
            }
            assert!(overlap_granules > 0);
            if overlap < barrier {
                return;
            }
            last = (overlap, barrier);
        }
        panic!(
            "after 3 attempts: overlap {:?} !< barrier {:?}",
            last.0, last.1
        );
    }

    #[test]
    fn three_phase_chain_mixed_mappings() {
        let n = 120u32;
        let c3 = Arc::new(SharedCounters::zeros(n as usize));
        let phases = vec![
            RtPhase::synthetic("p0", n, Duration::from_micros(30))
                .with_mapping(RtMapping::Identity),
            RtPhase::synthetic("p1", n, Duration::from_micros(30))
                .with_mapping(RtMapping::Universal),
            counting_phase("p2", n, Arc::clone(&c3)),
        ];
        let r = run_chain(phases, RuntimeConfig::new(3, 5));
        for i in 0..n as usize {
            assert_eq!(c3.get(i), 1);
        }
        assert_eq!(r.phases.len(), 3);
        assert!(r.utilization() > 0.0);
    }

    #[test]
    fn multi_lane_combiner_preserves_dataflow() {
        // The batched completion combiner must not lose, duplicate, or
        // reorder enablement: same dataflow check as the serial
        // executive, at several lane counts (including lanes > workers).
        for lanes in [2usize, 4, 16] {
            let n = 300u32;
            let b = Arc::new(SharedF64::zeros(n as usize));
            let c = Arc::new(SharedF64::zeros(n as usize));
            let b1 = Arc::clone(&b);
            let p1 = RtPhase::new(
                "write-b",
                n,
                Arc::new(move |g| {
                    spin_for(Duration::from_micros(15));
                    b1.set(g as usize, g as f64 + 1.0);
                }),
            )
            .with_mapping(RtMapping::Identity);
            let b2 = Arc::clone(&b);
            let c2 = Arc::clone(&c);
            let p2 = RtPhase::new(
                "read-b",
                n,
                Arc::new(move |g| {
                    let v = b2.get(g as usize);
                    c2.set(g as usize, v * 2.0);
                }),
            );
            let r = run_chain(
                vec![p1, p2],
                RuntimeConfig::new(4, 4).with_exec_lanes(lanes),
            );
            for g in 0..n {
                assert_eq!(
                    c.get(g as usize),
                    (g as f64 + 1.0) * 2.0,
                    "lanes {lanes} granule {g}"
                );
            }
            assert_eq!(r.tasks, 150, "lanes {lanes}");
        }
    }

    #[test]
    fn multi_lane_combiner_barrier_and_counted_mappings() {
        // Every granule of a mixed barrier/counted chain runs exactly
        // once under batched completion service.
        let n = 120u32;
        let req: Vec<Vec<u32>> = (0..n).map(|r| vec![r, (r + 1) % n]).collect();
        let comp = Arc::new(CompositeMap::from_requirement_lists(&req, n));
        let c1 = Arc::new(SharedCounters::zeros(n as usize));
        let c2 = Arc::new(SharedCounters::zeros(n as usize));
        let c3 = Arc::new(SharedCounters::zeros(n as usize));
        let phases = vec![
            counting_phase("a", n, Arc::clone(&c1)).with_mapping(RtMapping::Counted(comp)),
            counting_phase("b", n, Arc::clone(&c2)).with_mapping(RtMapping::Barrier),
            counting_phase("c", n, Arc::clone(&c3)),
        ];
        let r = run_chain(phases, RuntimeConfig::new(4, 3).with_exec_lanes(8));
        for i in 0..n as usize {
            assert_eq!(c1.get(i), 1);
            assert_eq!(c2.get(i), 1);
            assert_eq!(c3.get(i), 1);
        }
        assert_eq!(r.phases.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one executive lane")]
    fn zero_exec_lanes_rejected() {
        let _ = RuntimeConfig::new(2, 2).with_exec_lanes(0);
    }

    #[test]
    #[should_panic(expected = "equal granule counts")]
    fn identity_requires_equal_counts() {
        let p1 = RtPhase::synthetic("a", 10, Duration::ZERO).with_mapping(RtMapping::Identity);
        let p2 = RtPhase::synthetic("b", 20, Duration::ZERO);
        let _ = run_chain(vec![p1, p2], RuntimeConfig::new(2, 2));
    }
}
