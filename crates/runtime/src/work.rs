//! Building blocks for real workloads: shared float arrays without data
//! races, and calibrated busy-work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A shared array of `f64` values stored as atomic bit patterns. Granule
/// ownership plus the executor's release ordering make plain relaxed
/// access correct; atomics keep the type safe without `unsafe`.
#[derive(Debug)]
pub struct SharedF64 {
    cells: Vec<AtomicU64>,
}

impl SharedF64 {
    /// An array of `n` zeros.
    pub fn zeros(n: usize) -> SharedF64 {
        SharedF64 {
            cells: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
        }
    }

    /// From existing values.
    pub fn from_vec(v: Vec<f64>) -> SharedF64 {
        SharedF64 {
            cells: v.into_iter().map(|x| AtomicU64::new(x.to_bits())).collect(),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Load element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Acquire))
    }

    /// Store element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: f64) {
        self.cells[i].store(v.to_bits(), Ordering::Release);
    }

    /// Snapshot to a plain vector.
    pub fn to_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Spin the CPU for roughly `d` (used to give synthetic granules a real,
/// measurable execution time; sleeping would free the core and hide the
/// utilization effects the experiments measure).
pub fn spin_for(d: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// A shared array of atomic counters (for test instrumentation).
#[derive(Debug)]
pub struct SharedCounters {
    cells: Vec<AtomicU64>,
}

impl SharedCounters {
    /// `n` zeroed counters.
    pub fn zeros(n: usize) -> SharedCounters {
        SharedCounters {
            cells: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Increment counter `i`, returning the previous value.
    pub fn incr(&self, i: usize) -> u64 {
        self.cells[i].fetch_add(1, Ordering::AcqRel)
    }

    /// Read counter `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.cells[i].load(Ordering::Acquire)
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_f64_roundtrip() {
        let a = SharedF64::zeros(4);
        a.set(2, 3.5);
        assert_eq!(a.get(2), 3.5);
        assert_eq!(a.get(0), 0.0);
        assert_eq!(a.to_vec(), vec![0.0, 0.0, 3.5, 0.0]);
    }

    #[test]
    fn shared_f64_from_vec() {
        let a = SharedF64::from_vec(vec![1.0, -2.0]);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.get(1), -2.0);
    }

    #[test]
    fn spin_takes_time() {
        let t0 = Instant::now();
        spin_for(Duration::from_micros(200));
        assert!(t0.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn counters_count() {
        let c = SharedCounters::zeros(2);
        assert_eq!(c.incr(0), 0);
        assert_eq!(c.incr(0), 1);
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.len(), 2);
    }
}
