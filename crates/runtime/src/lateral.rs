//! Lateral worker-to-worker scheduling — the paper's named extension.
//!
//! Among the "additional strategies which have been identified for
//! development" the paper lists "a direct worker-to-worker lateral
//! communication scheme": letting workers hand work to each other instead
//! of funnelling every dispatch through the serial executive. Four
//! decades later that idea is work stealing; this module implements it
//! with crossbeam deques so the repository can measure what the strategy
//! buys over the central-executive executor in [`crate::executor`].
//!
//! The overlap machinery is the same — identity releases, composite-map
//! enablement counters, a one-phase lookahead window — but releases go to
//! the *releasing worker's own deque* (lateral hand-off); idle workers
//! steal from peers, and only phase-level bookkeeping takes a lock.

use crate::executor::{RtMapping, RtPhase, RtPhaseReport, RtReport, RuntimeConfig};
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct Task {
    phase: usize,
    lo: u32,
    hi: u32,
}

/// Phase bookkeeping shared under one small mutex (completion counts and
/// counter state only — the hot dispatch path never takes it).
struct PhaseBook {
    remaining: Vec<u32>,
    counters: Vec<Option<Vec<u32>>>,
    released: Vec<bool>,
    /// Identity releases deferred while the phase was outside the
    /// lookahead window (flushed at window entry).
    deferred: Vec<Vec<(u32, u32)>>,
    current: usize,
    first_start: Vec<Option<Instant>>,
    last_end: Vec<Option<Instant>>,
    overlap_granules: Vec<u64>,
}

struct Shared {
    specs: Vec<RtPhase>,
    cfg: RuntimeConfig,
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    /// Per-worker victim order: same-cluster peers first when the config
    /// clusters workers (proximity-aware stealing), flat order otherwise.
    /// `(victim, same_cluster)` pairs, fixed at startup.
    steal_order: Vec<Vec<(usize, bool)>>,
    book: Mutex<PhaseBook>,
    done: AtomicBool,
    live_tasks: AtomicUsize,
    tasks_executed: AtomicU64,
    steals_same_cluster: AtomicU64,
    steals_cross_cluster: AtomicU64,
    t0: Instant,
}

impl Shared {
    /// Push a range as task-sized chunks. `local` is the releasing
    /// worker's own deque (lateral hand-off) when available, otherwise
    /// the global injector.
    fn push_range(&self, local: Option<&Deque<Task>>, phase: usize, lo: u32, hi: u32) {
        let step = self.cfg.task_granules;
        let mut a = lo;
        while a < hi {
            let b = (a + step).min(hi);
            self.live_tasks.fetch_add(1, Ordering::AcqRel);
            let t = Task {
                phase,
                lo: a,
                hi: b,
            };
            match local {
                Some(d) => d.push(t),
                None => self.injector.push(t),
            }
            a = b;
        }
    }

    fn release_all(&self, book: &mut PhaseBook, local: Option<&Deque<Task>>, phase: usize) {
        if book.released[phase] {
            return;
        }
        book.released[phase] = true;
        self.push_range(local, phase, 0, self.specs[phase].granules);
    }

    fn on_window_entry(&self, book: &mut PhaseBook, local: Option<&Deque<Task>>, phase: usize) {
        if phase >= self.specs.len() || !self.cfg.overlap {
            return;
        }
        let deferred = std::mem::take(&mut book.deferred[phase]);
        for (a, b) in deferred {
            self.push_range(local, phase, a, b);
        }
        match &self.specs[phase - 1].mapping_to_next {
            RtMapping::Universal => self.release_all(book, local, phase),
            RtMapping::Counted(comp) => {
                if book.counters[phase].is_none() {
                    book.counters[phase] = Some(comp.requires.clone());
                }
                let runs = {
                    let counters = book.counters[phase].as_ref().unwrap();
                    zero_runs(counters)
                };
                for (a, b) in runs {
                    self.push_range(local, phase, a, b);
                }
            }
            RtMapping::Identity | RtMapping::Barrier => {}
        }
    }

    /// Completion processing. Returns true when everything is done.
    fn complete(&self, local: &Deque<Task>, t: Task, now: Instant) -> bool {
        let mut book = self.book.lock();
        let len = t.hi - t.lo;
        book.remaining[t.phase] -= len;
        book.last_end[t.phase] = Some(now);
        let phase_done = book.remaining[t.phase] == 0;

        let succ = t.phase + 1;
        if self.cfg.overlap && succ < self.specs.len() {
            let in_window = succ == book.current + 1;
            match &self.specs[t.phase].mapping_to_next {
                RtMapping::Identity => {
                    if in_window {
                        // lateral hand-off: the enabled successor range
                        // goes to this worker's own deque, warm in cache
                        self.push_range(Some(local), succ, t.lo, t.hi);
                    } else {
                        // outside the lookahead window: defer, don't drop
                        book.deferred[succ].push((t.lo, t.hi));
                    }
                }
                RtMapping::Counted(comp) => {
                    let mut freed: Vec<u32> = Vec::new();
                    {
                        let counters =
                            book.counters[succ].get_or_insert_with(|| comp.requires.clone());
                        for g in t.lo..t.hi {
                            for &r in comp.dependents_of(g) {
                                let c = &mut counters[r as usize];
                                debug_assert!(*c > 0);
                                *c -= 1;
                                if *c == 0 {
                                    freed.push(r);
                                }
                            }
                        }
                    }
                    if in_window {
                        freed.sort_unstable();
                        for (a, b) in index_runs(&freed) {
                            self.push_range(Some(local), succ, a, b);
                        }
                    }
                }
                RtMapping::Universal | RtMapping::Barrier => {}
            }
        }

        if phase_done && t.phase == book.current {
            while book.current < self.specs.len() && book.remaining[book.current] == 0 {
                book.current += 1;
                if book.current < self.specs.len() {
                    let cur = book.current;
                    if !book.released[cur] {
                        let needs_all = !self.cfg.overlap
                            || matches!(
                                self.specs[cur - 1].mapping_to_next,
                                RtMapping::Barrier | RtMapping::Universal
                            );
                        if needs_all {
                            self.release_all(&mut book, Some(local), cur);
                        } else if let RtMapping::Counted(comp) =
                            &self.specs[cur - 1].mapping_to_next
                        {
                            // defensively zero any counters the window
                            // gating kept from firing
                            let runs = {
                                let counters =
                                    book.counters[cur].get_or_insert_with(|| comp.requires.clone());
                                let runs: Vec<(u32, u32)> = nonzero_runs(counters);
                                for c in counters.iter_mut() {
                                    *c = 0;
                                }
                                runs
                            };
                            for (a, b) in runs {
                                self.push_range(Some(local), cur, a, b);
                            }
                        }
                        book.released[cur] = true;
                    }
                    if cur + 1 < self.specs.len() {
                        self.on_window_entry(&mut book, Some(local), cur + 1);
                    }
                }
            }
            if book.current >= self.specs.len() {
                self.done.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    fn find_task(&self, local: &Deque<Task>, id: usize) -> Option<Task> {
        // own deque first (lateral locality), then the injector, then
        // steal from peers — same-cluster victims before remote ones when
        // proximity stealing is on
        if let Some(t) = local.pop() {
            return Some(t);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                crossbeam::deque::Steal::Success(t) => return Some(t),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
        for &(victim, same) in &self.steal_order[id] {
            loop {
                match self.stealers[victim].steal() {
                    crossbeam::deque::Steal::Success(t) => {
                        if same {
                            self.steals_same_cluster.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.steals_cross_cluster.fetch_add(1, Ordering::Relaxed);
                        }
                        return Some(t);
                    }
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
        None
    }
}

/// Victim order for each thief: same-cluster peers (nearest id first),
/// then cross-cluster peers. With clustering disabled every peer is
/// "cross-cluster" in flat id order, preserving the original behaviour.
fn build_steal_order(cfg: &RuntimeConfig) -> Vec<Vec<(usize, bool)>> {
    (0..cfg.workers)
        .map(|id| {
            let my = cfg.worker_cluster(id);
            let mut order: Vec<(usize, bool)> = (0..cfg.workers)
                .filter(|&v| v != id)
                .map(|v| (v, cfg.clusters.is_some() && cfg.worker_cluster(v) == my))
                .collect();
            // stable partition: same-cluster victims first
            order.sort_by_key(|&(_, same)| !same);
            order
        })
        .collect()
}

fn index_runs(sorted: &[u32]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start + 1;
        i += 1;
        while i < sorted.len() && sorted[i] == end {
            end += 1;
            i += 1;
        }
        out.push((start, end));
    }
    out
}

fn zero_runs(counters: &[u32]) -> Vec<(u32, u32)> {
    runs_where(counters, |c| c == 0)
}

fn nonzero_runs(counters: &[u32]) -> Vec<(u32, u32)> {
    runs_where(counters, |c| c > 0)
}

fn runs_where(counters: &[u32], pred: impl Fn(u32) -> bool) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0u32;
    let n = counters.len() as u32;
    while i < n {
        if pred(counters[i as usize]) {
            let start = i;
            while i < n && pred(counters[i as usize]) {
                i += 1;
            }
            out.push((start, i));
        } else {
            i += 1;
        }
    }
    out
}

/// Run a phase chain on the lateral (work-stealing) executor.
pub fn run_chain_lateral(specs: Vec<RtPhase>, cfg: RuntimeConfig) -> RtReport {
    assert!(!specs.is_empty(), "need at least one phase");
    for (i, s) in specs.iter().enumerate() {
        if let RtMapping::Identity = s.mapping_to_next {
            if i + 1 < specs.len() {
                assert_eq!(
                    s.granules,
                    specs[i + 1].granules,
                    "identity mapping requires equal granule counts"
                );
            }
        }
    }
    let nphases = specs.len();
    let workers = cfg.workers;
    let deques: Vec<Deque<Task>> = (0..workers).map(|_| Deque::new_fifo()).collect();
    let stealers: Vec<Stealer<Task>> = deques.iter().map(|d| d.stealer()).collect();
    let t0 = Instant::now();
    let shared = Arc::new(Shared {
        book: Mutex::new(PhaseBook {
            remaining: specs.iter().map(|s| s.granules).collect(),
            counters: vec![None; nphases],
            released: vec![false; nphases],
            deferred: vec![Vec::new(); nphases],
            current: 0,
            first_start: vec![None; nphases],
            last_end: vec![None; nphases],
            overlap_granules: vec![0; nphases],
        }),
        specs,
        steal_order: build_steal_order(&cfg),
        cfg: cfg.clone(),
        injector: Injector::new(),
        stealers,
        done: AtomicBool::new(false),
        live_tasks: AtomicUsize::new(0),
        tasks_executed: AtomicU64::new(0),
        steals_same_cluster: AtomicU64::new(0),
        steals_cross_cluster: AtomicU64::new(0),
        t0,
    });

    {
        let mut book = shared.book.lock();
        shared.release_all(&mut book, None, 0);
        if nphases > 1 {
            shared.on_window_entry(&mut book, None, 1);
        }
    }

    let mut handles = Vec::with_capacity(workers);
    for (id, deque) in deques.into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut busy = Duration::ZERO;
            loop {
                let Some(t) = sh.find_task(&deque, id) else {
                    if sh.done.load(Ordering::Acquire) {
                        break;
                    }
                    std::hint::spin_loop();
                    std::thread::yield_now();
                    continue;
                };
                {
                    let mut book = sh.book.lock();
                    let now = Instant::now();
                    if book.first_start[t.phase].is_none() {
                        book.first_start[t.phase] = Some(now);
                    }
                    if t.phase > book.current {
                        book.overlap_granules[t.phase] += (t.hi - t.lo) as u64;
                    }
                }
                let start = Instant::now();
                for g in t.lo..t.hi {
                    (sh.specs[t.phase].work)(g);
                }
                busy += start.elapsed();
                sh.tasks_executed.fetch_add(1, Ordering::AcqRel);
                sh.live_tasks.fetch_sub(1, Ordering::AcqRel);
                sh.complete(&deque, t, Instant::now());
            }
            busy
        }));
    }

    let mut busy_total = Duration::ZERO;
    for h in handles {
        busy_total += h.join().expect("worker panicked");
    }
    let wall = t0.elapsed();
    let book = shared.book.lock();
    let phases = shared
        .specs
        .iter()
        .enumerate()
        .map(|(i, spec)| RtPhaseReport {
            name: spec.name.clone(),
            first_start: book.first_start[i].map(|t| t.duration_since(shared.t0)),
            last_end: book.last_end[i].map(|t| t.duration_since(shared.t0)),
            overlap_granules: book.overlap_granules[i],
        })
        .collect();
    RtReport {
        wall,
        busy: busy_total,
        workers,
        tasks: shared.tasks_executed.load(Ordering::Acquire),
        steals_same_cluster: shared.steals_same_cluster.load(Ordering::Relaxed),
        steals_cross_cluster: shared.steals_cross_cluster.load(Ordering::Relaxed),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{SharedCounters, SharedF64};
    use pax_core::mapping::CompositeMap;

    #[test]
    fn every_granule_runs_exactly_once() {
        let c1 = Arc::new(SharedCounters::zeros(200));
        let c2 = Arc::new(SharedCounters::zeros(200));
        let mk = |c: &Arc<SharedCounters>, name: &str| {
            let c = Arc::clone(c);
            RtPhase::new(
                name,
                200,
                Arc::new(move |g| {
                    c.incr(g as usize);
                }),
            )
        };
        let phases = vec![mk(&c1, "a").with_mapping(RtMapping::Identity), mk(&c2, "b")];
        let r = run_chain_lateral(phases, RuntimeConfig::new(4, 8));
        for i in 0..200 {
            assert_eq!(c1.get(i), 1, "phase a granule {i}");
            assert_eq!(c2.get(i), 1, "phase b granule {i}");
        }
        assert_eq!(r.tasks, 50);
    }

    #[test]
    fn identity_dataflow_preserved_under_stealing() {
        let n = 300u32;
        let b = Arc::new(SharedF64::zeros(n as usize));
        let c = Arc::new(SharedF64::zeros(n as usize));
        let b1 = Arc::clone(&b);
        let p1 = RtPhase::new(
            "w",
            n,
            Arc::new(move |g| {
                crate::work::spin_for(Duration::from_micros(15));
                b1.set(g as usize, g as f64 * 3.0);
            }),
        )
        .with_mapping(RtMapping::Identity);
        let b2 = Arc::clone(&b);
        let c2 = Arc::clone(&c);
        let p2 = RtPhase::new(
            "r",
            n,
            Arc::new(move |g| {
                c2.set(g as usize, b2.get(g as usize) + 1.0);
            }),
        );
        run_chain_lateral(vec![p1, p2], RuntimeConfig::new(4, 4));
        for g in 0..n {
            assert_eq!(c.get(g as usize), g as f64 * 3.0 + 1.0, "granule {g}");
        }
    }

    #[test]
    fn counted_dataflow_preserved_under_stealing() {
        let n = 150u32;
        let req: Vec<Vec<u32>> = (0..n).map(|r| vec![r, (r + 3) % n]).collect();
        let comp = Arc::new(CompositeMap::from_requirement_lists(&req, n));
        let a = Arc::new(SharedF64::zeros(n as usize));
        let out = Arc::new(SharedF64::zeros(n as usize));
        let a1 = Arc::clone(&a);
        let p1 = RtPhase::new(
            "gen",
            n,
            Arc::new(move |g| {
                crate::work::spin_for(Duration::from_micros(10));
                a1.set(g as usize, g as f64);
            }),
        )
        .with_mapping(RtMapping::Counted(comp));
        let a2 = Arc::clone(&a);
        let o = Arc::clone(&out);
        let p2 = RtPhase::new(
            "use",
            n,
            Arc::new(move |g| {
                o.set(
                    g as usize,
                    a2.get(g as usize) + a2.get(((g + 3) % n) as usize),
                );
            }),
        );
        run_chain_lateral(vec![p1, p2], RuntimeConfig::new(4, 2));
        for g in 0..n {
            assert_eq!(
                out.get(g as usize),
                g as f64 + ((g + 3) % n) as f64,
                "granule {g}"
            );
        }
    }

    #[test]
    fn barrier_mode_matches_central_executor_semantics() {
        let c = Arc::new(SharedCounters::zeros(64));
        let cc = Arc::clone(&c);
        let phases = vec![
            RtPhase::synthetic("a", 64, Duration::from_micros(5))
                .with_mapping(RtMapping::Universal),
            RtPhase::new(
                "b",
                64,
                Arc::new(move |g| {
                    cc.incr(g as usize);
                }),
            ),
        ];
        let r = run_chain_lateral(phases, RuntimeConfig::new(3, 4).barrier());
        assert_eq!(r.total_overlap_granules(), 0);
        for i in 0..64 {
            assert_eq!(c.get(i), 1);
        }
    }

    #[test]
    fn steal_order_partitions_by_cluster() {
        let cfg = RuntimeConfig::new(8, 4).with_clusters(4);
        let order = build_steal_order(&cfg);
        // worker 0 (cluster 0) raids worker 1 (cluster 0) first, then the
        // six cross-cluster peers
        assert_eq!(order[0][0], (1, true));
        assert!(order[0][1..].iter().all(|&(_, same)| !same));
        assert_eq!(order[0].len(), 7);
        // worker 5 (cluster 2) pairs with worker 4
        assert_eq!(order[5][0], (4, true));
    }

    #[test]
    fn flat_steal_order_without_clusters() {
        let cfg = RuntimeConfig::new(4, 4);
        let order = build_steal_order(&cfg);
        assert_eq!(
            order[2],
            vec![(0, false), (1, false), (3, false)],
            "id order, all cross-cluster"
        );
    }

    #[test]
    fn cluster_stealing_preserves_correctness_and_counts_steals() {
        let n = 400u32;
        let c1 = Arc::new(SharedCounters::zeros(n as usize));
        let c2 = Arc::new(SharedCounters::zeros(n as usize));
        let mk = |c: &Arc<SharedCounters>, name: &str| {
            let c = Arc::clone(c);
            RtPhase::new(
                name,
                n,
                Arc::new(move |g| {
                    crate::work::spin_for(Duration::from_micros(5));
                    c.incr(g as usize);
                }),
            )
        };
        let phases = vec![mk(&c1, "a").with_mapping(RtMapping::Identity), mk(&c2, "b")];
        let r = run_chain_lateral(phases, RuntimeConfig::new(4, 4).with_clusters(2));
        for i in 0..n as usize {
            assert_eq!(c1.get(i), 1);
            assert_eq!(c2.get(i), 1);
        }
        // steal accounting is consistent: total steals cannot exceed tasks
        assert!(r.steals_same_cluster + r.steals_cross_cluster <= r.tasks);
    }

    #[test]
    fn clustered_stealing_prefers_same_cluster_victims() {
        // Starve three of four workers (all work starts on one deque via
        // the injector after a single-task first phase), then watch where
        // steals land. Same-cluster steals should appear whenever any
        // stealing happens at all; cross-cluster steals only occur when a
        // whole cluster is dry. Run a few times to dodge scheduling luck.
        let mut same_total = 0u64;
        let mut cross_total = 0u64;
        for _ in 0..5 {
            let phases = vec![
                RtPhase::synthetic("a", 64, Duration::from_micros(50))
                    .with_mapping(RtMapping::Identity),
                RtPhase::synthetic("b", 64, Duration::from_micros(50)),
            ];
            let r = run_chain_lateral(phases, RuntimeConfig::new(4, 2).with_clusters(2));
            same_total += r.steals_same_cluster;
            cross_total += r.steals_cross_cluster;
        }
        // identity hand-off keeps successor work on the completing worker,
        // so peers must steal; with cluster preference the same-cluster
        // channel should carry a share whenever substantial stealing
        // occurred. (Below ~50 total steals the sample is too small to
        // judge preference — OS scheduling on a loaded 2-core VM can
        // legitimately route a handful of steals anywhere.)
        if same_total + cross_total > 50 {
            assert!(
                same_total > 0,
                "no same-cluster steals in {same_total}+{cross_total}"
            );
        }
    }

    #[test]
    fn lateral_overlaps_universal_chains() {
        let phases: Vec<RtPhase> = (0..3)
            .map(|i| {
                let p = RtPhase::synthetic(format!("p{i}"), 30, Duration::from_micros(100));
                if i < 2 {
                    p.with_mapping(RtMapping::Universal)
                } else {
                    p
                }
            })
            .collect();
        let r = run_chain_lateral(phases, RuntimeConfig::new(4, 1));
        assert!(r.total_overlap_granules() > 0);
        assert_eq!(r.tasks, 90);
    }
}
