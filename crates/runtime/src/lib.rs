//! # pax-runtime — phase overlap on real threads
//!
//! The simulator (`pax-core`) reproduces the paper's scheduling claims
//! deterministically; this crate demonstrates them on actual hardware. A
//! pool of OS threads executes a linear chain of phases under either
//! strict barriers or the paper's enablement machinery (identity releases,
//! composite-map enablement counters, universal window releases), and the
//! report measures real utilization and rundown fill.
//!
//! Two executors share that machinery: [`run_chain`] routes every dispatch
//! through a central serial executive (PAX's arrangement), while
//! [`run_chain_lateral`] implements the paper's "direct worker-to-worker
//! lateral communication scheme" as work stealing — optionally
//! cluster-aware ([`RuntimeConfig::with_clusters`]), so an idle worker
//! raids same-cluster peers before crossing clusters (the thread-level
//! analogue of the data-proximity assignment measured in E12).
//!
//! ```
//! use pax_runtime::{run_chain, RtMapping, RtPhase, RuntimeConfig};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let phases = vec![
//!     RtPhase::synthetic("sweep-1", 32, Duration::from_micros(50))
//!         .with_mapping(RtMapping::Identity),
//!     RtPhase::synthetic("sweep-2", 32, Duration::from_micros(50)),
//! ];
//! let report = run_chain(phases, RuntimeConfig::new(4, 2));
//! assert_eq!(report.phases.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod lateral;
pub mod shard_exec;
pub mod work;

pub use executor::{run_chain, RtMapping, RtPhase, RtPhaseReport, RtReport, RuntimeConfig};
pub use lateral::run_chain_lateral;
pub use shard_exec::{run_sharded_threaded, run_simulation_sharded, ThreadedSession};
pub use work::{spin_for, SharedCounters, SharedF64};
