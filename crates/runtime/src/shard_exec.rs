//! Threaded epoch-barrier driver for the sharded simulation core.
//!
//! `pax-core`'s [`pax_core::shard`] module decomposes a multi-group
//! [`Simulation`] into per-shard [`ShardEngine`]s plus an epoch
//! [`pax_core::shard::Coordinator`], and ships a single-threaded
//! reference driver ([`pax_core::shard::run_sharded`]). This module runs
//! the same decomposition on real worker threads: one persistent thread
//! per shard, synchronized with the coordinator through a **cancellable
//! epoch gate** — a mutex-and-condvar rendezvous that replaces the naked
//! `std::sync::Barrier` an earlier revision used, because a barrier has
//! no failure mode: one panicking or wedged shard thread left every
//! other participant (the coordinator included) blocked in
//! `Barrier::wait` forever.
//!
//! Each epoch runs the same two-phase protocol as before:
//!
//! 1. **release** — the coordinator publishes the epoch command (a
//!    conservative global window, or stop) and bumps the gate's epoch
//!    counter; each worker wakes, applies its pending admissions, and
//!    drains its shard's calendars up to the window;
//! 2. **join** — workers deposit their outbox notes into the shared
//!    exchange and check in; once every shard checked in, the
//!    coordinator absorbs the notes, decides admissions (exact
//!    timestamps, never quantized to the gate), routes them to the
//!    owning shards' inboxes, and plans the next epoch.
//!
//! Unlike a barrier, the gate is **failure-aware**:
//!
//! * every epoch body runs under [`std::panic::catch_unwind`]; a panic
//!   poisons the gate (records the shard and the panic message) instead
//!   of unwinding through the rendezvous, and every other participant —
//!   workers waiting for the next epoch and the coordinator waiting for
//!   check-ins — observes the poisoned flag and cancels;
//! * the coordinator's wait is guarded by a coarse **watchdog deadline**
//!   (wall-clock, default two minutes per epoch — epochs of the pinned
//!   suites complete in milliseconds, so only a genuinely wedged thread
//!   can trip it); on expiry the gate is poisoned naming the first shard
//!   that failed to check in, and the wedged thread is abandoned
//!   (workers are spawned detached precisely so an unkillable thread
//!   cannot block the driver's return);
//! * either way the caller gets a structured
//!   [`EngineError::ShardFailed`] `{ shard, cause }` instead of a
//!   process hang.
//!
//! Determinism is inherited, not re-proven: workers only ever run whole
//! windows of their own engines, and window boundaries are
//! result-invariant, so this driver is bit-identical to the
//! single-threaded one (and to the classic engine) by construction —
//! the equivalence suite pins it anyway. Note order in the exchange
//! varies with thread completion order, but `Coordinator::absorb` is
//! order-insensitive within an epoch (each note targets its own group;
//! admissions are exact maxes over finish times), so the nondeterministic
//! arrival order never reaches the results.

use pax_core::engine::{EngineError, Simulation};
use pax_core::report::RunReport;
use pax_core::shard::{stuck_error, Coordinator, EpochPlan, GroupNote, ShardEngine, ShardedRun};
use pax_sim::time::SimTime;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-epoch watchdog: how long the coordinator will wait for every
/// shard to check in before declaring the epoch wedged. Epochs of even
/// the largest pinned workloads complete in milliseconds of wall-clock;
/// two minutes is pure headroom for grotesquely loaded CI hosts.
const DEFAULT_WATCHDOG: Duration = Duration::from_secs(120);

/// What the coordinator asks of the workers this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    /// Drain one conservative window (unbounded when `None`).
    Run(Option<SimTime>),
    /// Hand the engine back and exit.
    Stop,
}

/// Everything the gate guards. One mutex covers command publication,
/// check-ins, note exchange, admission inboxes, and the poison flag —
/// epoch traffic is a handful of lock acquisitions per shard, so a
/// single lock is simpler and plenty.
struct GateState {
    /// Bumped once per published epoch; workers wait for it to move.
    epoch: u64,
    command: Command,
    /// Which shards checked in for the current epoch.
    done: Vec<bool>,
    /// First failure observed: `(shard, cause)`. Once set, every
    /// participant cancels.
    poisoned: Option<(usize, String)>,
    /// Outbox notes deposited this epoch.
    exchange: Vec<GroupNote>,
    /// Admissions routed to each shard for its next epoch.
    inboxes: Vec<Vec<(usize, SimTime)>>,
    /// Engines handed back on [`Command::Stop`].
    returned: Vec<(usize, ShardEngine)>,
}

/// The cancellable epoch gate.
struct Gate {
    state: Mutex<GateState>,
    /// Wakes workers: a new epoch was published, or the gate poisoned.
    publish: Condvar,
    /// Wakes the coordinator: a worker checked in, or the gate poisoned.
    checkin: Condvar,
}

impl Gate {
    fn new(shards: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                epoch: 0,
                command: Command::Stop,
                done: vec![false; shards],
                poisoned: None,
                exchange: Vec::new(),
                inboxes: (0..shards).map(|_| Vec::new()).collect(),
                returned: Vec::with_capacity(shards),
            }),
            publish: Condvar::new(),
            checkin: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        // Worker panics are confined by `catch_unwind` before any lock
        // is re-taken, so std's poisoning can only fire if the runtime
        // itself is broken; recover the guard rather than double-panic.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a failure (first writer wins) and wake everyone.
    fn poison(&self, shard: usize, cause: String) {
        let mut st = self.lock();
        if st.poisoned.is_none() {
            st.poisoned = Some((shard, cause));
        }
        self.publish.notify_all();
        self.checkin.notify_all();
    }
}

/// Render a panic payload for the `ShardFailed` cause.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "shard thread panicked with a non-string payload".to_string()
    }
}

/// Run `sim` to completion on one worker thread per shard
/// (`sim`'s `MachineConfig::shards`, clamped to the group count).
///
/// Falls back to the calling thread when the decomposition yields a
/// single shard. Results are bit-identical to [`Simulation::run`].
pub fn run_simulation_sharded(sim: Simulation) -> Result<RunReport, EngineError> {
    run_sharded_threaded(sim.into_sharded()?)
}

/// Drive an already-decomposed [`ShardedRun`] on real threads.
///
/// A shard thread that panics or wedges past the per-epoch watchdog
/// surfaces as [`EngineError::ShardFailed`]; the driver never hangs on
/// a failed worker.
pub fn run_sharded_threaded(run: ShardedRun) -> Result<RunReport, EngineError> {
    ThreadedSession::new(run).finish()
}

/// [`run_sharded_threaded`] with an explicit watchdog and a per-epoch
/// test hook `(shard, epoch)`, invoked inside the `catch_unwind`
/// envelope before the window is drained — the chaos tests inject
/// panicking and sleeping hooks here to simulate shard failures.
#[cfg(test)]
fn run_sharded_threaded_with<F>(
    run: ShardedRun,
    watchdog: Duration,
    hook: F,
) -> Result<RunReport, EngineError>
where
    F: Fn(usize, u64) + Send + Sync + 'static,
{
    ThreadedSession::spawn(run, watchdog, hook).finish()
}

/// A long-lived threaded sharded run: the service-mode counterpart of
/// [`pax_core::engine::Session`], driving one persistent worker thread
/// per shard through the cancellable epoch gate.
///
/// `step_until` pauses the whole fleet at a global time bound (arrival
/// streams keep the calendars populated between calls), `drain` runs to
/// completion, and `finish` stops the workers and merges the report.
/// [`run_sharded_threaded`] is the one-shot wrapper over this type, so
/// batch and service drives share one protocol implementation.
pub struct ThreadedSession {
    inner: Option<SessionInner>,
    watchdog: Duration,
}

enum SessionInner {
    /// ≤ 1 shard: a thread plus a gate rendezvous per epoch would buy
    /// nothing; drive the reference decomposition on the calling thread.
    Inline(ShardedRun),
    Threaded {
        coordinator: Coordinator,
        gate: Arc<Gate>,
        n: usize,
        /// Reused admission scratch, kept across epochs.
        admissions: Vec<(usize, SimTime)>,
    },
}

impl ThreadedSession {
    /// Decompose-and-spawn with the default watchdog.
    pub fn new(run: ShardedRun) -> ThreadedSession {
        Self::spawn(run, DEFAULT_WATCHDOG, |_, _| {})
    }

    /// Spawn the shard worker threads (detached — the watchdog abandons
    /// a wedged thread rather than joining on it) and park them at the
    /// gate awaiting the first epoch.
    fn spawn<F>(run: ShardedRun, watchdog: Duration, hook: F) -> ThreadedSession
    where
        F: Fn(usize, u64) + Send + Sync + 'static,
    {
        if run.shard_count() <= 1 {
            return ThreadedSession {
                inner: Some(SessionInner::Inline(run)),
                watchdog,
            };
        }
        let (coordinator, shards) = run.into_parts();
        let n = shards.len();
        let gate = Arc::new(Gate::new(n));
        let hook = Arc::new(hook);
        for (i, shard) in shards.into_iter().enumerate() {
            let gate = Arc::clone(&gate);
            let hook = Arc::clone(&hook);
            std::thread::Builder::new()
                .name(format!("pax-shard-{i}"))
                .spawn(move || worker_loop(i, shard, &gate, &*hook))
                .expect("spawn shard worker thread");
        }
        ThreadedSession {
            inner: Some(SessionInner::Threaded {
                coordinator,
                gate,
                n,
                admissions: Vec::new(),
            }),
            watchdog,
        }
    }

    /// Drive the fleet up to global time `limit` (to completion when
    /// `None`). Returns `Ok(true)` once every group finished, `Ok(false)`
    /// when the fleet paused at the limit with work left.
    pub fn step_until(&mut self, limit: Option<SimTime>) -> Result<bool, EngineError> {
        let watchdog = self.watchdog;
        match self.inner.as_mut().expect("session already finished") {
            SessionInner::Inline(run) => run.step_until(limit),
            SessionInner::Threaded {
                coordinator,
                gate,
                n,
                admissions,
            } => loop {
                match coordinator.plan() {
                    EpochPlan::Done => return Ok(true),
                    EpochPlan::Stuck { unadmitted } => {
                        let err = stuck_error(coordinator, &unadmitted);
                        // Workers are healthy and waiting; release them
                        // before reporting the fleet-level deadlock.
                        let _ = publish_and_wait(gate, Command::Stop, watchdog);
                        return Err(err);
                    }
                    EpochPlan::Run { window } => {
                        let eff = match (window, limit) {
                            (Some(w), Some(l)) => Some(w.min(l)),
                            (Some(w), None) => Some(w),
                            (None, l) => l,
                        };
                        publish_and_wait(gate, Command::Run(eff), watchdog)?;
                        let mut st = gate.lock();
                        coordinator.absorb(&st.exchange);
                        st.exchange.clear();
                        admissions.clear();
                        coordinator.drain_admissions(admissions);
                        for &(g, at) in admissions.iter() {
                            st.inboxes[g % *n].push((g, at));
                        }
                        drop(st);
                        if let Some(l) = limit {
                            if coordinator.paused_past(l) {
                                return Ok(false);
                            }
                        }
                    }
                }
            },
        }
    }

    /// Run the fleet to completion (every calendar drained).
    pub fn drain(&mut self) -> Result<(), EngineError> {
        self.step_until(None).map(|_| ())
    }

    /// Drain any remaining work, stop the workers, and merge the final
    /// [`RunReport`].
    pub fn finish(mut self) -> Result<RunReport, EngineError> {
        self.step_until(None)?;
        let watchdog = self.watchdog;
        match self.inner.take().expect("session already finished") {
            SessionInner::Inline(run) => {
                let (coordinator, shards) = run.into_parts();
                coordinator.finish(shards)
            }
            SessionInner::Threaded {
                coordinator, gate, ..
            } => {
                publish_and_wait(&gate, Command::Stop, watchdog)?;
                let mut cells: Vec<(usize, ShardEngine)> = {
                    let mut st = gate.lock();
                    st.returned.drain(..).collect()
                };
                cells.sort_by_key(|&(i, _)| i);
                coordinator.finish(cells.into_iter().map(|(_, s)| s).collect())
            }
        }
    }
}

impl Drop for ThreadedSession {
    fn drop(&mut self) {
        if let Some(SessionInner::Threaded { gate, .. }) = &self.inner {
            // Abandoned mid-run (or an error path already returned):
            // cancel any workers parked at the gate so the detached
            // threads exit instead of waiting forever. First-writer-wins
            // makes this a no-op after a real failure already poisoned.
            gate.poison(0, "session dropped before finish".to_string());
        }
    }
}

/// One shard thread: wait for each published epoch, run it under
/// `catch_unwind`, check in; exit on stop or when the gate poisons.
fn worker_loop<F>(i: usize, mut shard: ShardEngine, gate: &Gate, hook: &F)
where
    F: Fn(usize, u64),
{
    let mut seen_epoch = 0u64;
    loop {
        let (cmd, epoch, admissions) = {
            let mut st = gate.lock();
            while st.epoch == seen_epoch && st.poisoned.is_none() {
                st = gate.publish.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.poisoned.is_some() {
                return; // cancelled: abandon the engine
            }
            seen_epoch = st.epoch;
            (st.command, st.epoch, std::mem::take(&mut st.inboxes[i]))
        };
        match cmd {
            Command::Stop => {
                let mut st = gate.lock();
                st.returned.push((i, shard));
                st.done[i] = true;
                gate.checkin.notify_all();
                return;
            }
            Command::Run(window) => {
                let body = catch_unwind(AssertUnwindSafe(|| {
                    hook(i, epoch);
                    for (g, at) in admissions {
                        shard.deliver(g, at);
                    }
                    shard.run_window(window);
                }));
                match body {
                    Ok(()) => {
                        let mut st = gate.lock();
                        if st.poisoned.is_some() {
                            return;
                        }
                        st.exchange.extend_from_slice(shard.notes());
                        st.done[i] = true;
                        gate.checkin.notify_all();
                    }
                    Err(payload) => {
                        gate.poison(i, format!("panicked: {}", panic_message(payload)));
                        return;
                    }
                }
            }
        }
    }
}

/// Publish one epoch command, then wait — watchdog-guarded — until every
/// shard checks in. A panic or watchdog expiry yields
/// [`EngineError::ShardFailed`].
fn publish_and_wait(gate: &Gate, cmd: Command, watchdog: Duration) -> Result<(), EngineError> {
    let mut st = gate.lock();
    for d in st.done.iter_mut() {
        *d = false;
    }
    st.command = cmd;
    st.epoch += 1;
    gate.publish.notify_all();
    let deadline = Instant::now() + watchdog;
    loop {
        if let Some((shard, cause)) = st.poisoned.clone() {
            return Err(EngineError::ShardFailed { shard, cause });
        }
        if st.done.iter().all(|&d| d) {
            return Ok(());
        }
        let now = Instant::now();
        if now >= deadline {
            let shard = st.done.iter().position(|&d| !d).unwrap_or(0);
            let cause = format!(
                "wedged: no check-in for epoch {} within the {:?} watchdog",
                st.epoch, watchdog
            );
            st.poisoned = Some((shard, cause.clone()));
            // Wake waiting workers so they observe the poison and exit;
            // the wedged thread itself is abandoned.
            gate.publish.notify_all();
            return Err(EngineError::ShardFailed { shard, cause });
        }
        let (guard, _) = gate
            .checkin
            .wait_timeout(st, deadline - now)
            .unwrap_or_else(|e| e.into_inner());
        st = guard;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_core::mapping::EnablementMapping;
    use pax_core::phase::PhaseDef;
    use pax_core::policy::OverlapPolicy;
    use pax_core::program::{EnableSpec, Program, ProgramBuilder};
    use pax_sim::dist::CostModel;
    use pax_sim::machine::MachineConfig;
    use pax_sim::time::SimDuration;
    use pax_sim::ShardPolicy;

    fn overlap_program(granules: u32, cost: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new("a", granules, CostModel::constant(cost)));
        let z = b.phase(PhaseDef::new("z", granules, CostModel::constant(cost)));
        b.dispatch_enable(
            a,
            vec![EnableSpec {
                successor: z,
                mapping: EnablementMapping::Identity,
            }],
        );
        b.dispatch(z);
        b.build().unwrap()
    }

    fn fleet(shards: usize, groups: usize, linked: bool) -> Simulation {
        let mut sim = Simulation::new(
            MachineConfig::new(4).with_shards(ShardPolicy::new(shards)),
            OverlapPolicy::overlap(),
        )
        .with_seed(7);
        for g in 0..groups {
            sim.add_job_in_group(overlap_program(48, 5), g);
        }
        if linked {
            for g in 1..groups {
                sim.link_groups(g - 1, g, SimDuration(11));
            }
        }
        sim
    }

    fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64, u64, usize) {
        (
            r.events,
            r.makespan.ticks(),
            r.tasks_dispatched,
            r.splits,
            r.descriptors_created,
            r.descriptors_peak,
        )
    }

    #[test]
    fn threaded_driver_matches_reference_driver() {
        for linked in [false, true] {
            let base = fleet(1, 6, linked).run().unwrap();
            for shards in [2, 3, 4] {
                let threaded = run_simulation_sharded(fleet(shards, 6, linked)).unwrap();
                assert_eq!(
                    fingerprint(&base),
                    fingerprint(&threaded),
                    "shards={shards} linked={linked}"
                );
                assert_eq!(base.busy_trace.points(), threaded.busy_trace.points());
                assert_eq!(
                    base.jobs.iter().map(|j| j.finished_at).collect::<Vec<_>>(),
                    threaded
                        .jobs
                        .iter()
                        .map(|j| j.finished_at)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn single_shard_falls_back_inline() {
        let r = run_simulation_sharded(fleet(1, 2, true)).unwrap();
        assert_eq!(r.jobs.len(), 2);
    }

    #[test]
    fn threaded_driver_surfaces_admission_cycles() {
        let mut sim = fleet(2, 3, false);
        sim.link_groups(1, 2, SimDuration(3));
        sim.link_groups(2, 1, SimDuration(3));
        match run_simulation_sharded(sim) {
            Err(EngineError::Deadlock {
                unfinished_jobs, ..
            }) => {
                assert_eq!(unfinished_jobs, vec![1, 2]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    /// A shard thread that panics mid-epoch must surface as a structured
    /// `ShardFailed` — fast, via the poison path, not the watchdog.
    #[test]
    fn panicking_shard_surfaces_shard_failed() {
        let run = fleet(3, 6, false).into_sharded().unwrap();
        let started = Instant::now();
        let result = run_sharded_threaded_with(run, DEFAULT_WATCHDOG, |shard, epoch| {
            if shard == 1 && epoch == 1 {
                panic!("chaos: injected shard panic");
            }
        });
        let elapsed = started.elapsed();
        match result {
            Err(EngineError::ShardFailed { shard, cause }) => {
                assert_eq!(shard, 1);
                assert!(cause.contains("injected shard panic"), "{cause}");
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(10),
            "panic must cancel the epoch promptly, took {elapsed:?}"
        );
    }

    /// A shard thread that wedges (never checks in) trips the watchdog
    /// within its budget instead of hanging the driver forever.
    #[test]
    fn wedged_shard_trips_the_watchdog() {
        let run = fleet(3, 6, false).into_sharded().unwrap();
        let watchdog = Duration::from_millis(250);
        let started = Instant::now();
        let result = run_sharded_threaded_with(run, watchdog, |shard, epoch| {
            if shard == 2 && epoch == 1 {
                std::thread::sleep(Duration::from_secs(2));
            }
        });
        let elapsed = started.elapsed();
        match result {
            Err(EngineError::ShardFailed { shard, cause }) => {
                assert_eq!(shard, 2);
                assert!(cause.contains("watchdog"), "{cause}");
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
        assert!(
            elapsed >= watchdog,
            "the watchdog cannot fire before its deadline"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "the driver must return without joining the wedged thread, took {elapsed:?}"
        );
    }

    /// The poison flag cancels workers parked at the gate: after a
    /// failure, a fresh run on the same process still works (no global
    /// state was corrupted).
    #[test]
    fn driver_recovers_after_a_failed_run() {
        let run = fleet(2, 4, false).into_sharded().unwrap();
        let result = run_sharded_threaded_with(run, DEFAULT_WATCHDOG, |shard, _| {
            if shard == 0 {
                panic!("chaos: first run dies");
            }
        });
        assert!(matches!(result, Err(EngineError::ShardFailed { .. })));
        let clean = run_simulation_sharded(fleet(2, 4, false)).unwrap();
        assert_eq!(clean.jobs.len(), 4);
    }
}
