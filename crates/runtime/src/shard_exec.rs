//! Threaded epoch-barrier driver for the sharded simulation core.
//!
//! `pax-core`'s [`pax_core::shard`] module decomposes a multi-group
//! [`Simulation`] into per-shard [`ShardEngine`]s plus an epoch
//! [`pax_core::shard::Coordinator`], and ships a single-threaded
//! reference driver ([`pax_core::shard::run_sharded`]). This module runs
//! the same decomposition on real worker threads: one persistent thread
//! per shard, synchronized with the coordinator through a **two-phase
//! barrier** per epoch — the same persistent-pool shape as the central
//! executive in [`crate::executor`] (a `parking_lot`-guarded shared
//! state crossed by every worker), with `std::sync::Barrier` standing in
//! for the condvar handshake because every epoch is a full rendezvous:
//!
//! 1. **release** — the coordinator publishes the epoch command (a
//!    conservative global window, or stop) and all threads cross the
//!    first barrier; each worker applies its pending admissions and
//!    drains its shard's calendars up to the window;
//! 2. **join** — workers deposit their outbox notes into the shared
//!    exchange and cross the second barrier; the coordinator absorbs the
//!    notes, decides admissions (exact timestamps, never quantized to
//!    the barrier), routes them to the owning shards' inboxes, and plans
//!    the next epoch.
//!
//! Determinism is inherited, not re-proven: workers only ever run whole
//! windows of their own engines, and window boundaries are
//! result-invariant, so this driver is bit-identical to the
//! single-threaded one (and to the classic engine) by construction —
//! the equivalence suite pins it anyway.

use parking_lot::Mutex;
use pax_core::engine::{EngineError, Simulation};
use pax_core::report::RunReport;
use pax_core::shard::{stuck_error, EpochPlan, GroupNote, ShardEngine, ShardedRun};
use pax_sim::time::SimTime;
use std::sync::Barrier;

/// Run `sim` to completion on one worker thread per shard
/// (`sim`'s `MachineConfig::shards`, clamped to the group count).
///
/// Falls back to the calling thread when the decomposition yields a
/// single shard. Results are bit-identical to [`Simulation::run`].
pub fn run_simulation_sharded(sim: Simulation) -> Result<RunReport, EngineError> {
    run_sharded_threaded(sim.into_sharded()?)
}

/// Drive an already-decomposed [`ShardedRun`] on real threads.
pub fn run_sharded_threaded(run: ShardedRun) -> Result<RunReport, EngineError> {
    if run.shard_count() <= 1 {
        // One shard: a thread plus two barriers per epoch would buy
        // nothing over the reference driver.
        return pax_core::shard::run_sharded(run);
    }
    let (mut coordinator, shards) = run.into_parts();
    let n = shards.len();
    let barrier = Barrier::new(n + 1);
    /// Epoch command: `Some(window)` runs one epoch, `None` stops.
    type Command = Option<Option<SimTime>>;
    let command: Mutex<Command> = Mutex::new(None);
    let exchange: Mutex<Vec<GroupNote>> = Mutex::new(Vec::new());
    let inboxes: Vec<Mutex<Vec<(usize, SimTime)>>> =
        (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let returned: Mutex<Vec<(usize, ShardEngine)>> = Mutex::new(Vec::with_capacity(n));

    let outcome = std::thread::scope(|scope| {
        for (i, mut shard) in shards.into_iter().enumerate() {
            let barrier = &barrier;
            let command = &command;
            let exchange = &exchange;
            let inbox = &inboxes[i];
            let returned = &returned;
            scope.spawn(move || loop {
                barrier.wait(); // release: command published
                let cmd: Command = *command.lock();
                let Some(window) = cmd else {
                    returned.lock().push((i, shard));
                    barrier.wait(); // join: let the coordinator proceed
                    return;
                };
                for (g, at) in inbox.lock().drain(..) {
                    shard.deliver(g, at);
                }
                shard.run_window(window);
                exchange.lock().extend_from_slice(shard.notes());
                barrier.wait(); // join: notes published
            });
        }
        let mut admissions: Vec<(usize, SimTime)> = Vec::new();
        let outcome = loop {
            match coordinator.plan() {
                EpochPlan::Done => break Ok(()),
                EpochPlan::Stuck { unadmitted } => {
                    break Err(stuck_error(&coordinator, &unadmitted))
                }
                EpochPlan::Run { window } => {
                    *command.lock() = Some(window);
                    barrier.wait(); // release
                    barrier.wait(); // join
                    {
                        let mut notes = exchange.lock();
                        coordinator.absorb(&notes);
                        notes.clear();
                    }
                    admissions.clear();
                    coordinator.drain_admissions(&mut admissions);
                    for &(g, at) in &admissions {
                        inboxes[g % n].lock().push((g, at));
                    }
                }
            }
        };
        *command.lock() = None;
        barrier.wait(); // release the stop command
        barrier.wait(); // join: every engine handed back
        outcome
    });
    outcome?;

    let mut cells: Vec<(usize, ShardEngine)> = {
        let mut guard = returned.lock();
        guard.drain(..).collect()
    };
    cells.sort_by_key(|&(i, _)| i);
    coordinator.finish(cells.into_iter().map(|(_, s)| s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_core::mapping::EnablementMapping;
    use pax_core::phase::PhaseDef;
    use pax_core::policy::OverlapPolicy;
    use pax_core::program::{EnableSpec, Program, ProgramBuilder};
    use pax_sim::dist::CostModel;
    use pax_sim::machine::MachineConfig;
    use pax_sim::time::SimDuration;
    use pax_sim::ShardPolicy;

    fn overlap_program(granules: u32, cost: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new("a", granules, CostModel::constant(cost)));
        let z = b.phase(PhaseDef::new("z", granules, CostModel::constant(cost)));
        b.dispatch_enable(
            a,
            vec![EnableSpec {
                successor: z,
                mapping: EnablementMapping::Identity,
            }],
        );
        b.dispatch(z);
        b.build().unwrap()
    }

    fn fleet(shards: usize, groups: usize, linked: bool) -> Simulation {
        let mut sim = Simulation::new(
            MachineConfig::new(4).with_shards(ShardPolicy::new(shards)),
            OverlapPolicy::overlap(),
        )
        .with_seed(7);
        for g in 0..groups {
            sim.add_job_in_group(overlap_program(48, 5), g);
        }
        if linked {
            for g in 1..groups {
                sim.link_groups(g - 1, g, SimDuration(11));
            }
        }
        sim
    }

    fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64, u64, usize) {
        (
            r.events,
            r.makespan.ticks(),
            r.tasks_dispatched,
            r.splits,
            r.descriptors_created,
            r.descriptors_peak,
        )
    }

    #[test]
    fn threaded_driver_matches_reference_driver() {
        for linked in [false, true] {
            let base = fleet(1, 6, linked).run().unwrap();
            for shards in [2, 3, 4] {
                let threaded = run_simulation_sharded(fleet(shards, 6, linked)).unwrap();
                assert_eq!(
                    fingerprint(&base),
                    fingerprint(&threaded),
                    "shards={shards} linked={linked}"
                );
                assert_eq!(base.busy_trace.points(), threaded.busy_trace.points());
                assert_eq!(
                    base.jobs.iter().map(|j| j.finished_at).collect::<Vec<_>>(),
                    threaded
                        .jobs
                        .iter()
                        .map(|j| j.finished_at)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn single_shard_falls_back_inline() {
        let r = run_simulation_sharded(fleet(1, 2, true)).unwrap();
        assert_eq!(r.jobs.len(), 2);
    }

    #[test]
    fn threaded_driver_surfaces_admission_cycles() {
        let mut sim = fleet(2, 3, false);
        sim.link_groups(1, 2, SimDuration(3));
        sim.link_groups(2, 1, SimDuration(3));
        match run_simulation_sharded(sim) {
            Err(EngineError::Deadlock {
                unfinished_jobs, ..
            }) => {
                assert_eq!(unfinished_jobs, vec![1, 2]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
