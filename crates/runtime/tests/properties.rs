//! Property-based concurrency tests: random phase chains on real
//! threads, both executors, all mappings — every granule must execute
//! exactly once, whatever the OS scheduler does.

use pax_core::mapping::CompositeMap;
use pax_runtime::SharedCounters;
use pax_runtime::{run_chain, run_chain_lateral, RtMapping, RtPhase, RuntimeConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a random chain; returns (phases, per-phase counters).
fn chain(
    granules: u32,
    nphases: usize,
    mappings: &[u8],
) -> (Vec<RtPhase>, Vec<Arc<SharedCounters>>) {
    let counters: Vec<Arc<SharedCounters>> = (0..nphases)
        .map(|_| Arc::new(SharedCounters::zeros(granules as usize)))
        .collect();
    let phases: Vec<RtPhase> = (0..nphases)
        .map(|i| {
            let c = Arc::clone(&counters[i]);
            let p = RtPhase::new(
                format!("p{i}"),
                granules,
                Arc::new(move |g| {
                    c.incr(g as usize);
                }),
            );
            if i + 1 == nphases {
                return p;
            }
            match mappings[i] % 4 {
                0 => p.with_mapping(RtMapping::Barrier),
                1 => p.with_mapping(RtMapping::Universal),
                2 => p.with_mapping(RtMapping::Identity),
                _ => {
                    // deterministic pseudo-random fan-in-2 reverse map
                    let req: Vec<Vec<u32>> = (0..granules)
                        .map(|r| vec![r, (r * 7 + 3) % granules])
                        .collect();
                    p.with_mapping(RtMapping::Counted(Arc::new(
                        CompositeMap::from_requirement_lists(&req, granules),
                    )))
                }
            }
        })
        .collect();
    (phases, counters)
}

proptest! {
    // Thread spawning is expensive; a couple dozen random chains give
    // plenty of schedule diversity on a loaded machine.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Central executor: exactly-once execution for every granule of
    /// every phase under any mapping mix, worker count, and task size.
    #[test]
    fn central_executor_runs_every_granule_once(
        granules in 8u32..60,
        nphases in 2usize..5,
        mappings in proptest::collection::vec(0u8..4, 4),
        workers in 1usize..5,
        task in 1u32..9,
        overlap in proptest::bool::ANY,
    ) {
        let (phases, counters) = chain(granules, nphases, &mappings);
        let cfg = if overlap {
            RuntimeConfig::new(workers, task)
        } else {
            RuntimeConfig::new(workers, task).barrier()
        };
        let r = run_chain(phases, cfg);
        for (i, c) in counters.iter().enumerate() {
            for g in 0..granules as usize {
                prop_assert_eq!(c.get(g), 1, "phase {} granule {}", i, g);
            }
        }
        prop_assert_eq!(r.phases.len(), nphases);
        if !overlap {
            prop_assert_eq!(r.total_overlap_granules(), 0);
        }
    }

    /// Lateral (work-stealing) executor: the same exactly-once guarantee,
    /// with and without cluster-aware stealing.
    #[test]
    fn lateral_executor_runs_every_granule_once(
        granules in 8u32..60,
        nphases in 2usize..5,
        mappings in proptest::collection::vec(0u8..4, 4),
        workers in 1usize..5,
        task in 1u32..9,
        clusters in 0usize..3,
    ) {
        let (phases, counters) = chain(granules, nphases, &mappings);
        let mut cfg = RuntimeConfig::new(workers, task);
        if clusters > 0 {
            cfg = cfg.with_clusters(clusters);
        }
        let r = run_chain_lateral(phases, cfg);
        for (i, c) in counters.iter().enumerate() {
            for g in 0..granules as usize {
                prop_assert_eq!(c.get(g), 1, "phase {} granule {}", i, g);
            }
        }
        // steal accounting can never exceed executed tasks
        prop_assert!(r.steals_same_cluster + r.steals_cross_cluster <= r.tasks);
    }

    /// Both executors agree on the task count for identical configs
    /// (tasks = Σ ceil(granules / task_size) per phase).
    #[test]
    fn task_count_is_deterministic(
        granules in 8u32..60,
        nphases in 2usize..4,
        task in 1u32..9,
    ) {
        let mappings = vec![2u8; 4]; // identity everywhere
        let per_phase = granules.div_ceil(task) as u64;
        let (phases, _) = chain(granules, nphases, &mappings);
        let central = run_chain(phases, RuntimeConfig::new(2, task));
        prop_assert_eq!(central.tasks, per_phase * nphases as u64);
        let (phases, _) = chain(granules, nphases, &mappings);
        let lateral = run_chain_lateral(phases, RuntimeConfig::new(2, task));
        prop_assert_eq!(lateral.tasks, per_phase * nphases as u64);
    }
}
