//! The checkerboard successive over-relaxation workload — the paper's
//! running example.
//!
//! "the checkerboard approach to the successive over-relaxation solution
//! of the potential field problem divides into two such phases: the 'odd'
//! locations phase and the 'even' locations phase. ... If all the 'odd'
//! locations adjacent to a particular 'even' location have been updated
//! with new values from the current computational phase, then the new
//! value for that particular 'even' location for the next computational
//! phase can be correctly computed."
//!
//! That neighbor enablement is the **seam mapping** the paper foresees but
//! leaves beyond scope; we implement it (the extension that pushes the
//! fraction of overlappable phases past 90%). This module provides:
//!
//! * [`Checkerboard`] — grid geometry, color-major granule numbering, and
//!   seam-map construction;
//! * [`checkerboard_program`] — simulation programs with the exact
//!   granule counts of the paper's 1024²/1000-processor example;
//! * [`RedBlackGrid`] — a real `f64` red–black SOR kernel (used by the
//!   threaded runtime example and verified against the analytic solution).

use pax_core::mapping::{EnablementMapping, SeamMap};
use pax_core::phase::PhaseDef;
use pax_core::program::{EnableSpec, Program, ProgramBuilder};
use pax_sim::dist::CostModel;
use std::sync::Arc;

/// Cell colors of the checkerboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Cells with even `row + col` ("odd locations" in the paper's
    /// 1-based numbering).
    Red,
    /// Cells with odd `row + col`.
    Black,
}

impl Color {
    /// The other color.
    pub fn other(self) -> Color {
        match self {
            Color::Red => Color::Black,
            Color::Black => Color::Red,
        }
    }
}

/// Geometry of an `n × n` checkerboard with color-major granule
/// numbering: the granules of one phase are the cells of one color, in
/// row-major order.
#[derive(Debug, Clone)]
pub struct Checkerboard {
    n: usize,
    /// `granule_of[cell]` = granule index within the cell's color.
    granule_of: Vec<u32>,
}

impl Checkerboard {
    /// An `n × n` board (n ≥ 2).
    pub fn new(n: usize) -> Checkerboard {
        assert!(n >= 2, "grid must be at least 2×2");
        let mut granule_of = vec![0u32; n * n];
        let mut red = 0u32;
        let mut black = 0u32;
        for r in 0..n {
            for c in 0..n {
                let i = r * n + c;
                if (r + c) % 2 == 0 {
                    granule_of[i] = red;
                    red += 1;
                } else {
                    granule_of[i] = black;
                    black += 1;
                }
            }
        }
        Checkerboard { n, granule_of }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Color of cell `(r, c)`.
    pub fn color(&self, r: usize, c: usize) -> Color {
        if (r + c).is_multiple_of(2) {
            Color::Red
        } else {
            Color::Black
        }
    }

    /// Number of cells of `color` (the phase's granule count).
    pub fn granules(&self, color: Color) -> u32 {
        let total = self.n * self.n;
        match color {
            Color::Red => (total as u32).div_ceil(2),
            Color::Black => total as u32 / 2,
        }
    }

    /// Granule index of cell `(r, c)` within its color phase.
    pub fn granule(&self, r: usize, c: usize) -> u32 {
        self.granule_of[r * self.n + c]
    }

    /// The cell `(r, c)` of granule `g` of `color`. O(n²) scan — used only
    /// in tests.
    pub fn cell_of(&self, color: Color, g: u32) -> Option<(usize, usize)> {
        for r in 0..self.n {
            for c in 0..self.n {
                if self.color(r, c) == color && self.granule(r, c) == g {
                    return Some((r, c));
                }
            }
        }
        None
    }

    /// Orthogonal neighbors of `(r, c)` (2–4 of them; edges clip).
    pub fn neighbors(&self, r: usize, c: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push((r - 1, c));
        }
        if r + 1 < self.n {
            out.push((r + 1, c));
        }
        if c > 0 {
            out.push((r, c - 1));
        }
        if c + 1 < self.n {
            out.push((r, c + 1));
        }
        out
    }

    /// The seam map from a `from`-colored phase into the following
    /// `from.other()`-colored phase: successor granule `g` (a cell of the
    /// other color) requires all its `from`-colored neighbors.
    pub fn seam_map(&self, from: Color) -> SeamMap {
        let to = from.other();
        let mut requires: Vec<Vec<u32>> = vec![Vec::new(); self.granules(to) as usize];
        for r in 0..self.n {
            for c in 0..self.n {
                if self.color(r, c) != to {
                    continue;
                }
                let g = self.granule(r, c) as usize;
                for (nr, nc) in self.neighbors(r, c) {
                    debug_assert_eq!(self.color(nr, nc), from);
                    requires[g].push(self.granule(nr, nc));
                }
            }
        }
        SeamMap { requires }
    }
}

/// Build a simulation program of `sweeps` alternating red/black phases
/// over an `n × n` board, seam-mapped when `overlap_mapping` is true
/// (otherwise the enables are omitted and the phases barrier).
///
/// With `n = 1024` each phase has 524,288 granules — the paper's example
/// ("Each computational phase will provide 524,288 individual
/// computations, or 524 computations for each of the 1000 processors;
/// however, 288 computations will be left over").
pub fn checkerboard_program(
    n: usize,
    sweeps: usize,
    cost: CostModel,
    with_seam_enables: bool,
) -> Program {
    assert!(sweeps >= 1);
    let board = Checkerboard::new(n);
    let mut b = ProgramBuilder::new();
    let red = b.phase(PhaseDef::new(
        "red-sweep",
        board.granules(Color::Red),
        cost.clone(),
    ));
    let black = b.phase(PhaseDef::new(
        "black-sweep",
        board.granules(Color::Black),
        cost,
    ));
    let red_to_black = Arc::new(board.seam_map(Color::Red));
    let black_to_red = Arc::new(board.seam_map(Color::Black));
    for s in 0..sweeps {
        let (phase, succ, map) = if s % 2 == 0 {
            (red, black, &red_to_black)
        } else {
            (black, red, &black_to_red)
        };
        let last = s + 1 == sweeps;
        if with_seam_enables && !last {
            b.dispatch_enable(
                phase,
                vec![EnableSpec {
                    successor: succ,
                    mapping: EnablementMapping::Seam(Arc::clone(map)),
                }],
            );
        } else {
            b.dispatch(phase);
        }
    }
    b.build().expect("checkerboard program is always valid")
}

/// A real red–black SOR solver for the Laplace potential problem on an
/// `n × n` grid with fixed boundary values. The interior relaxes toward
/// the discrete harmonic solution; granule `g` of a color phase updates
/// one cell — "nominally, the time for four additions and a divide".
#[derive(Debug, Clone)]
pub struct RedBlackGrid {
    n: usize,
    vals: Vec<f64>,
}

impl RedBlackGrid {
    /// Grid with `top` boundary potential on row 0 and zero elsewhere.
    pub fn with_top_boundary(n: usize, top: f64) -> RedBlackGrid {
        assert!(n >= 3, "need at least one interior point");
        let mut vals = vec![0.0; n * n];
        for v in vals.iter_mut().take(n) {
            *v = top;
        }
        RedBlackGrid { n, vals }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Value at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.vals[r * self.n + c]
    }

    /// Mutable cell access (for custom boundaries).
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.vals[r * self.n + c] = v;
    }

    /// Raw values (row-major).
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Whether `(r, c)` is interior (updatable).
    pub fn interior(&self, r: usize, c: usize) -> bool {
        r > 0 && c > 0 && r + 1 < self.n && c + 1 < self.n
    }

    /// Relax one cell with factor `omega`; returns the |change|.
    /// Out-of-range or boundary cells return 0 (no-op).
    pub fn relax_cell(&mut self, r: usize, c: usize, omega: f64) -> f64 {
        if !self.interior(r, c) {
            return 0.0;
        }
        let n = self.n;
        let idx = r * n + c;
        let avg = 0.25
            * (self.vals[idx - n] + self.vals[idx + n] + self.vals[idx - 1] + self.vals[idx + 1]);
        let new = self.vals[idx] + omega * (avg - self.vals[idx]);
        let delta = (new - self.vals[idx]).abs();
        self.vals[idx] = new;
        delta
    }

    /// Sequentially relax every interior cell of one color; returns the
    /// max |change| (for convergence tests).
    pub fn sweep(&mut self, color: Color, omega: f64) -> f64 {
        let mut max_delta: f64 = 0.0;
        for r in 1..self.n - 1 {
            for c in 1..self.n - 1 {
                if ((r + c) % 2 == 0) == (color == Color::Red) {
                    max_delta = max_delta.max(self.relax_cell(r, c, omega));
                }
            }
        }
        max_delta
    }

    /// Run red/black sweeps until the max change drops below `tol`;
    /// returns the number of full (red+black) iterations.
    pub fn solve(&mut self, omega: f64, tol: f64, max_iters: usize) -> usize {
        for it in 0..max_iters {
            let d1 = self.sweep(Color::Red, omega);
            let d2 = self.sweep(Color::Black, omega);
            if d1.max(d2) < tol {
                return it + 1;
            }
        }
        max_iters
    }

    /// Residual of the interior Laplace equation (max |Δu|), a measure of
    /// solution quality independent of the sweep order.
    pub fn residual(&self) -> f64 {
        let n = self.n;
        let mut worst: f64 = 0.0;
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                let idx = r * n + c;
                let lap = self.vals[idx - n]
                    + self.vals[idx + n]
                    + self.vals[idx - 1]
                    + self.vals[idx + 1]
                    - 4.0 * self.vals[idx];
                worst = worst.max(lap.abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_numbering_is_dense_per_color() {
        let b = Checkerboard::new(6);
        assert_eq!(b.granules(Color::Red), 18);
        assert_eq!(b.granules(Color::Black), 18);
        // granule indices within a color are 0..granules, each exactly once
        let mut seen_red = [false; 18];
        let mut seen_black = [false; 18];
        for r in 0..6 {
            for c in 0..6 {
                let g = b.granule(r, c) as usize;
                match b.color(r, c) {
                    Color::Red => {
                        assert!(!seen_red[g]);
                        seen_red[g] = true;
                    }
                    Color::Black => {
                        assert!(!seen_black[g]);
                        seen_black[g] = true;
                    }
                }
            }
        }
        assert!(seen_red.iter().all(|&x| x));
        assert!(seen_black.iter().all(|&x| x));
    }

    #[test]
    fn odd_grid_red_has_one_extra() {
        let b = Checkerboard::new(5);
        assert_eq!(b.granules(Color::Red), 13);
        assert_eq!(b.granules(Color::Black), 12);
    }

    #[test]
    fn seam_map_matches_neighbor_structure() {
        let b = Checkerboard::new(4);
        let m = b.seam_map(Color::Red);
        // every black cell requires its 2-4 red neighbors
        for r in 0..4 {
            for c in 0..4 {
                if b.color(r, c) != Color::Black {
                    continue;
                }
                let g = b.granule(r, c) as usize;
                assert_eq!(m.requires[g].len(), b.neighbors(r, c).len());
            }
        }
        // corner-adjacent black cell (0,1) requires red (0,0), (1,1), (0,2)
        let g = b.granule(0, 1) as usize;
        let mut req = m.requires[g].clone();
        req.sort_unstable();
        let mut expect = vec![b.granule(0, 0), b.granule(1, 1), b.granule(0, 2)];
        expect.sort_unstable();
        assert_eq!(req, expect);
    }

    #[test]
    fn paper_example_granule_counts() {
        let b = Checkerboard::new(1024);
        assert_eq!(b.granules(Color::Red), 524_288);
        assert_eq!(b.granules(Color::Black), 524_288);
        // "288 computations will be left over for distribution among the
        // 1000 processors"
        assert_eq!(524_288 % 1000, 288);
        assert_eq!(524_288 / 1000, 524);
    }

    #[test]
    fn program_shape() {
        let p = checkerboard_program(8, 4, CostModel::constant(5), true);
        assert_eq!(p.phases.len(), 2);
        // 4 dispatches + end
        assert_eq!(p.steps.len(), 5);
    }

    #[test]
    fn sor_converges_to_harmonic_solution() {
        let mut g = RedBlackGrid::with_top_boundary(17, 100.0);
        let iters = g.solve(1.5, 1e-8, 10_000);
        assert!(iters < 10_000, "did not converge");
        assert!(g.residual() < 1e-6);
        // Harmonic function properties: interior values strictly between
        // boundary extremes, decreasing away from the hot boundary.
        let mid = g.n() / 2;
        for r in 1..g.n() - 1 {
            let v = g.get(r, mid);
            assert!(v > 0.0 && v < 100.0);
        }
        assert!(g.get(1, mid) > g.get(g.n() - 2, mid));
    }

    #[test]
    fn sweep_only_touches_one_color() {
        let mut g = RedBlackGrid::with_top_boundary(9, 50.0);
        let before: Vec<f64> = g.values().to_vec();
        g.sweep(Color::Red, 1.0);
        let b = Checkerboard::new(9);
        for r in 1..8 {
            for c in 1..8 {
                if b.color(r, c) == Color::Black {
                    assert_eq!(
                        g.get(r, c),
                        before[r * 9 + c],
                        "black cell moved in red sweep"
                    );
                }
            }
        }
    }

    #[test]
    fn relax_cell_ignores_boundary() {
        let mut g = RedBlackGrid::with_top_boundary(5, 10.0);
        assert_eq!(g.relax_cell(0, 2, 1.0), 0.0);
        assert_eq!(g.get(0, 2), 10.0);
    }
}
