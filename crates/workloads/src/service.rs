//! Open-system service workloads: streaming job admission.
//!
//! The batch workloads submit every job at time zero and measure the
//! makespan of the closed set — the paper's own experimental frame. A
//! *service* workload instead feeds a long-lived machine a stream of job
//! arrivals (Poisson by default) and measures what an operator of such a
//! machine would: admission→completion latency percentiles and
//! steady-state throughput, with completed program instances evicted so
//! memory stays bounded by the in-flight population rather than the
//! stream length.
//!
//! [`ServiceConfig::simulation`] assembles the stream on top of the same
//! two-phase identity-mapped rundown job the fleet workloads use, so
//! service results are directly comparable to the batch sweeps. With
//! `mean_gap = 0` every arrival lands at time zero and the run reduces
//! exactly to the closed system (the equivalence suite pins this).

use pax_core::mapping::EnablementMapping;
use pax_core::phase::PhaseDef;
use pax_core::policy::{OverlapPolicy, SplitStrategy, TaskSizing};
use pax_core::program::{EnableSpec, Program, ProgramBuilder};
use pax_core::Simulation;
use pax_sim::dist::{ArrivalProcess, CostModel};
use pax_sim::machine::{AdmissionPolicy, MachineConfig};

/// A stream of identical jobs arriving at a machine held in service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total jobs in the arrival stream (split round-robin over groups).
    pub jobs: usize,
    /// Mean inter-arrival gap in ticks (Poisson process). `0` degenerates
    /// to all-arrivals-at-time-zero — the closed batch system.
    pub mean_gap: u64,
    /// Number of machine groups the stream is spread over (each group is
    /// one replica of the machine config with its own arrival stream).
    pub groups: usize,
    /// Granules per phase, per job (two phases per job).
    pub granules_per_job: u32,
    /// Constant granule cost in ticks.
    pub granule_cost: u64,
    /// Worker-task size in granules.
    pub task_size: u32,
    /// How the executive treats arrivals beyond capacity.
    pub admission: AdmissionPolicy,
}

impl ServiceConfig {
    /// A single-machine Poisson stream: `jobs` arrivals with the given
    /// mean gap, accept-all admission, modest per-job work.
    pub fn poisson(jobs: usize, mean_gap: u64) -> ServiceConfig {
        ServiceConfig {
            jobs,
            mean_gap,
            groups: 1,
            granules_per_job: 32,
            granule_cost: 100,
            task_size: 16,
            admission: AdmissionPolicy::AcceptAll,
        }
    }

    /// Spread the stream over `groups` machine replicas.
    pub fn with_groups(mut self, groups: usize) -> ServiceConfig {
        self.groups = groups;
        self
    }

    /// Select the admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> ServiceConfig {
        self.admission = admission;
        self
    }

    /// One job's program: two identity-mapped phases, overlapping through
    /// the rundown (the fleet workloads' shape, for comparability).
    pub fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new(
            "svc-a",
            self.granules_per_job,
            CostModel::constant(self.granule_cost),
        ));
        let z = b.phase(PhaseDef::new(
            "svc-z",
            self.granules_per_job,
            CostModel::constant(self.granule_cost),
        ));
        b.dispatch_enable(
            a,
            vec![EnableSpec {
                successor: z,
                mapping: EnablementMapping::Identity,
            }],
        );
        b.dispatch(z);
        b.build().expect("service program is statically valid")
    }

    /// The overlap policy the service runs under.
    pub fn policy(&self) -> OverlapPolicy {
        OverlapPolicy::overlap()
            .with_sizing(TaskSizing::Fixed(self.task_size))
            .with_split_strategy(SplitStrategy::DemandSplit)
    }

    /// Jobs routed to group `g` (round-robin remainder-first split).
    pub fn jobs_in_group(&self, g: usize) -> usize {
        let base = self.jobs / self.groups;
        let extra = usize::from(g < self.jobs % self.groups);
        base + extra
    }

    /// Assemble the full service simulation on `machine` (the configured
    /// admission policy overrides the machine's; eviction is always on —
    /// a service run must not grow with the stream length).
    pub fn simulation(&self, machine: MachineConfig, seed: u64) -> Simulation {
        assert!(self.groups >= 1, "a service fleet needs at least one group");
        assert!(self.jobs >= 1, "a service stream needs at least one job");
        let machine = machine.with_admission(self.admission);
        let mut sim = Simulation::new(machine, self.policy())
            .with_seed(seed)
            .with_eviction();
        let program = self.program();
        for g in 0..self.groups {
            let count = self.jobs_in_group(g);
            if count == 0 {
                continue;
            }
            let process = if self.mean_gap == 0 {
                // Degenerate closed system: everything arrives at zero.
                ArrivalProcess::trace(vec![pax_sim::SimTime::ZERO; count])
            } else {
                ArrivalProcess::poisson(self.mean_gap)
            };
            sim.add_job_stream_in_group(program.clone(), process, count, g);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_sim::ShardPolicy;

    #[test]
    fn poisson_service_reports_latency_and_bounded_instances() {
        let cfg = ServiceConfig::poisson(200, 400);
        let r = cfg.simulation(MachineConfig::new(8), 7).run().unwrap();
        assert_eq!(r.jobs.len(), 200);
        assert_eq!(r.jobs_completed(), 200);
        assert!(r.latency_p50().is_some());
        assert!(r.latency_p99() >= r.latency_p50());
        assert!(r.throughput() > 0.0);
        // Eviction keeps live instances bounded by concurrency, not by
        // the stream length (200 jobs × 2 phases = 400 without eviction).
        assert!(
            r.instances_peak < 400,
            "instances_peak {} must stay below the unevicted total",
            r.instances_peak
        );
    }

    #[test]
    fn zero_gap_stream_matches_the_closed_batch_run() {
        let cfg = ServiceConfig::poisson(12, 0);
        let service = cfg.simulation(MachineConfig::new(4), 7).run().unwrap();
        // Closed reference: same jobs submitted the classic way.
        let mut batch = Simulation::new(
            MachineConfig::new(4).with_admission(AdmissionPolicy::AcceptAll),
            cfg.policy(),
        )
        .with_seed(7);
        for _ in 0..12 {
            batch.add_job(cfg.program());
        }
        let batch = batch.run().unwrap();
        assert_eq!(service.events, batch.events);
        assert_eq!(service.makespan, batch.makespan);
        assert_eq!(service.busy_trace.points(), batch.busy_trace.points());
    }

    #[test]
    fn shed_admission_rejects_beyond_capacity() {
        let cfg = ServiceConfig::poisson(64, 1)
            .with_admission(AdmissionPolicy::Shed { max_in_flight: 2 });
        let r = cfg.simulation(MachineConfig::new(2), 11).run().unwrap();
        assert!(
            r.jobs_rejected > 0,
            "a gap-1 stream must overflow capacity 2"
        );
        assert_eq!(
            r.jobs_completed() + r.jobs_rejected as usize,
            64,
            "every arrival either completes or is shed"
        );
        // Rejected jobs carry no latency.
        assert!(r
            .jobs
            .iter()
            .filter(|j| j.rejected)
            .all(|j| j.latency().is_none()));
    }

    #[test]
    fn grouped_service_splits_the_stream_and_shards_identically() {
        let cfg = ServiceConfig::poisson(30, 300).with_groups(3);
        assert_eq!((0..3).map(|g| cfg.jobs_in_group(g)).sum::<usize>(), 30);
        let base = cfg.simulation(MachineConfig::new(4), 7).run().unwrap();
        let sharded = cfg
            .simulation(MachineConfig::new(4).with_shards(ShardPolicy::new(3)), 7)
            .run()
            .unwrap();
        assert_eq!(base.events, sharded.events);
        assert_eq!(base.makespan, sharded.makespan);
        assert_eq!(
            base.jobs.iter().map(|j| j.finished_at).collect::<Vec<_>>(),
            sharded
                .jobs
                .iter()
                .map(|j| j.finished_at)
                .collect::<Vec<_>>()
        );
    }
}
