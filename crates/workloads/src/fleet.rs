//! Fleet workloads: many machine groups for the sharded engine.
//!
//! The sharded core (`pax_core::shard`) distributes *machine groups* —
//! replicas of one configured machine, each running its own jobs — so a
//! workload has to opt into groups to scale past one shard. This module
//! provides the two canonical fleet shapes the shard-scaling sweeps and
//! the equivalence suite use:
//!
//! * [`FleetConfig::simulation`] with no stage latency — `groups`
//!   independent replicas, all admitted at time zero (an embarrassingly
//!   parallel sweep grid: the best case for sharding);
//! * with [`FleetConfig::stage_latency`] set — a pipeline
//!   `0 → 1 → ... → groups-1` of admission edges, giving the epoch
//!   coordinator real conservative windows to derive from the latency.

use pax_core::mapping::EnablementMapping;
use pax_core::phase::PhaseDef;
use pax_core::policy::{OverlapPolicy, SplitStrategy, TaskSizing};
use pax_core::program::{EnableSpec, Program, ProgramBuilder};
use pax_core::Simulation;
use pax_sim::dist::CostModel;
use pax_sim::machine::MachineConfig;
use pax_sim::time::SimDuration;

/// A fleet of identical machine groups, each running one identity-mapped
/// two-phase rundown job (the shard-scaling workhorse shape).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of machine groups (each a replica of the machine config).
    pub groups: usize,
    /// Granules per phase, per group (each group runs two phases, so a
    /// group executes `2 × granules_per_group` granules).
    pub granules_per_group: u32,
    /// Constant granule cost in ticks.
    pub granule_cost: u64,
    /// Worker-task size in granules.
    pub task_size: u32,
    /// `Some(latency)` chains the groups `0 → 1 → …` with that admission
    /// latency (a staged campaign); `None` admits every group at time
    /// zero (independent fleet).
    pub stage_latency: Option<SimDuration>,
}

impl FleetConfig {
    /// An independent fleet: `groups` replicas, no admission edges.
    pub fn independent(groups: usize, granules_per_group: u32) -> FleetConfig {
        FleetConfig {
            groups,
            granules_per_group,
            granule_cost: 100,
            task_size: 16,
            stage_latency: None,
        }
    }

    /// A staged fleet: groups chained by admission edges of `latency`.
    pub fn staged(groups: usize, granules_per_group: u32, latency: SimDuration) -> FleetConfig {
        FleetConfig {
            stage_latency: Some(latency),
            ..FleetConfig::independent(groups, granules_per_group)
        }
    }

    /// Total granules executed across the fleet.
    pub fn total_granules(&self) -> u64 {
        2 * self.groups as u64 * self.granules_per_group as u64
    }

    /// One group's program: two identity-mapped phases, overlapping
    /// through the rundown exactly like the bench identity scenario.
    pub fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new(
            "fleet-a",
            self.granules_per_group,
            CostModel::constant(self.granule_cost),
        ));
        let z = b.phase(PhaseDef::new(
            "fleet-z",
            self.granules_per_group,
            CostModel::constant(self.granule_cost),
        ));
        b.dispatch_enable(
            a,
            vec![EnableSpec {
                successor: z,
                mapping: EnablementMapping::Identity,
            }],
        );
        b.dispatch(z);
        b.build().expect("fleet program is statically valid")
    }

    /// The overlap policy the fleet runs under (demand splitting at the
    /// configured task size).
    pub fn policy(&self) -> OverlapPolicy {
        OverlapPolicy::overlap()
            .with_sizing(TaskSizing::Fixed(self.task_size))
            .with_split_strategy(SplitStrategy::DemandSplit)
    }

    /// Assemble the full multi-group simulation on `machine` (whose
    /// `shards` policy decides how the groups are distributed).
    pub fn simulation(&self, machine: MachineConfig, seed: u64) -> Simulation {
        assert!(self.groups >= 1, "a fleet needs at least one group");
        let mut sim = Simulation::new(machine, self.policy()).with_seed(seed);
        let program = self.program();
        for g in 0..self.groups {
            sim.add_job_in_group(program.clone(), g);
        }
        if let Some(latency) = self.stage_latency {
            for g in 1..self.groups {
                sim.link_groups(g - 1, g, latency);
            }
        }
        sim
    }
}

/// The canonical degraded-fleet fault plan used by the bench sweep and
/// chaos tests: exponential time-to-failure with a mean a little under
/// half a sweep fleet's group makespan (so every group sees a handful of
/// crashes per run) and a constant repair span, under the default
/// reissue-at-front retry policy. Per-processor fault streams derive
/// from the group seed, so the plan is bit-identical at every shard
/// count.
pub fn degraded_fault_plan() -> pax_sim::FaultPlan {
    pax_sim::FaultPlan::random(
        pax_sim::dist::DurationDist::exponential(40_000),
        pax_sim::dist::DurationDist::constant(7_500),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_sim::ShardPolicy;

    #[test]
    fn independent_fleet_runs_and_scales_shard_free() {
        let cfg = FleetConfig::independent(3, 64);
        assert_eq!(cfg.total_granules(), 384);
        let base = cfg.simulation(MachineConfig::new(4), 7).run().unwrap();
        assert_eq!(base.jobs.len(), 3);
        assert_eq!(base.processors, 12);
        let sharded = cfg
            .simulation(MachineConfig::new(4).with_shards(ShardPolicy::new(2)), 7)
            .run()
            .unwrap();
        assert_eq!(base.events, sharded.events);
        assert_eq!(base.makespan, sharded.makespan);
    }

    #[test]
    fn staged_fleet_serializes_group_starts() {
        let cfg = FleetConfig::staged(3, 32, SimDuration(25));
        let r = cfg.simulation(MachineConfig::new(4), 7).run().unwrap();
        // Each stage starts strictly after the previous one finished.
        for g in 1..3 {
            assert!(r.jobs[g].started_at > r.jobs[g - 1].finished_at.unwrap());
        }
    }
}
