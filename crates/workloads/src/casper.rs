//! A synthetic stand-in for CASPER, the paper's parallel Navier–Stokes
//! solver.
//!
//! CASPER itself (NASA TP-2418) is not available; what the paper publishes
//! about it is a *census*: 22 parallel computational phases totalling 1188
//! parallel lines, whose successor-enablement mappings break down as
//! 6 universal / 9 identity / 4 null / 2 reverse-indirect /
//! 1 forward-indirect, with both indirect occurrences using dynamically
//! generated information-selection maps, and nulls caused by serial
//! actions and decisions between phases. This module builds a pipeline
//! with **exactly that census** and a plausible aero-structural narrative
//! (the paper names "the change over from power of compression
//! computations to interpolator matrix generation" as a universal
//! transition), so every experiment that sweeps "CASPER" runs against the
//! published phase statistics.

use pax_analyze::ir::{Access, ArrayProgram, IndexExpr, LoopPhase};
use pax_core::mapping::{EnablementMapping, ForwardMap, MappingKind, ReverseMap};
use pax_core::phase::PhaseDef;
use pax_core::program::{BranchTest, EnableSpec, Program, ProgramBuilder, Step};
use pax_sim::dist::{CostModel, DurationDist};
use rand::Rng;
use std::sync::Arc;

/// The 22 phases: `(name, mapping-to-successor, parallel lines)`.
/// Mapping counts: 9 identity, 6 universal, 4 null, 2 reverse, 1 forward.
/// Line sums: identity 551, universal 266, null 262, reverse 78,
/// forward 31 — total 1188.
pub const CASPER_PHASES: [(&str, MappingKind, u32); 22] = [
    ("metric-generation", MappingKind::Identity, 62),
    ("power-of-compression", MappingKind::Universal, 45),
    ("interpolator-matrix-gen", MappingKind::Identity, 61),
    ("interpolator-apply", MappingKind::ReverseIndirect, 39),
    ("flux-assembly", MappingKind::Identity, 61),
    ("flux-smooth", MappingKind::Universal, 44),
    ("pressure-predictor", MappingKind::Identity, 61),
    ("boundary-conditions", MappingKind::Null, 66),
    ("momentum-x", MappingKind::Identity, 61),
    ("momentum-y", MappingKind::Identity, 61),
    ("momentum-z", MappingKind::Universal, 44),
    ("energy-update", MappingKind::Null, 65),
    ("turbulence-model", MappingKind::Identity, 61),
    ("structural-load-map", MappingKind::ForwardIndirect, 31),
    ("structural-dynamics", MappingKind::Identity, 61),
    ("aero-structural-couple", MappingKind::ReverseIndirect, 39),
    ("grid-deformation", MappingKind::Universal, 44),
    ("residual-reduce", MappingKind::Null, 65),
    ("timestep-select", MappingKind::Universal, 44),
    ("solution-update", MappingKind::Identity, 62),
    ("output-sampling", MappingKind::Universal, 45),
    ("convergence-check", MappingKind::Null, 66),
];

/// Configuration of the synthetic pipeline.
#[derive(Debug, Clone)]
pub struct CasperConfig {
    /// Granules per phase (one size across phases; identity transitions
    /// require it).
    pub granules: u32,
    /// Number of outer (time-step) iterations of the 22-phase loop.
    pub iterations: u32,
    /// Mean granule execution time in ticks.
    pub mean_cost: u64,
    /// Probability that a granule is conditionally skipped ("whether or
    /// not the computation was even to be carried out ... was a
    /// conditional part of the algorithm").
    pub skip_probability: f64,
    /// Serial-gap length before null-successor phases, in ticks.
    pub serial_ticks: u64,
    /// Fan-in of the reverse information-selection maps — the paper's
    /// fragment gathers with `J=1,10`.
    pub reverse_fan: u32,
    /// RNG seed for the dynamically generated maps.
    pub seed: u64,
}

impl Default for CasperConfig {
    fn default() -> CasperConfig {
        CasperConfig {
            granules: 240,
            iterations: 1,
            mean_cost: 100,
            skip_probability: 0.1,
            serial_ticks: 200,
            reverse_fan: 10,
            seed: 0xCA5BE7,
        }
    }
}

impl CasperConfig {
    /// Cost model shared by the phases: unpredictable, unrepeatable times
    /// with conditional skipping, per the paper's description.
    fn cost(&self) -> CostModel {
        CostModel::new(DurationDist::Uniform {
            lo: pax_sim::SimDuration(self.mean_cost / 2),
            hi: pax_sim::SimDuration(self.mean_cost * 3 / 2),
        })
        .with_skip(self.skip_probability, (self.mean_cost / 20).max(1))
    }

    /// A dynamically generated reverse map: each successor granule gathers
    /// `reverse_fan` random current granules (`IRAND` in the paper's
    /// fragment).
    fn reverse_map<R: Rng>(&self, rng: &mut R) -> ReverseMap {
        let n = self.granules;
        let requires: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..self.reverse_fan).map(|_| rng.gen_range(0..n)).collect())
            .collect();
        ReverseMap::new(requires, n)
    }

    /// A dynamically generated forward map (`IMAP(I)=IRAND()`).
    fn forward_map<R: Rng>(&self, rng: &mut R) -> ForwardMap {
        let n = self.granules;
        let targets: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        ForwardMap::new(targets, n)
    }

    /// Build the executable simulation program: the 22 phases in a loop of
    /// `iterations` time steps, with `ENABLE` declarations per the census
    /// (omitted entirely when `with_enables` is false, giving the strict
    /// baseline the same workload).
    pub fn build(&self, with_enables: bool) -> Program {
        let mut rng = pax_sim::seeded_rng(self.seed);
        let mut b = ProgramBuilder::new();
        let ids: Vec<pax_core::ids::PhaseId> = CASPER_PHASES
            .iter()
            .map(|(name, _, lines)| {
                b.phase(PhaseDef::new(*name, self.granules, self.cost()).with_lines(*lines))
            })
            .collect();
        let iter_counter = b.counter();
        let loop_top = b.next_index();
        for (i, (_, kind, _)) in CASPER_PHASES.iter().enumerate() {
            let succ_idx = (i + 1) % CASPER_PHASES.len();
            let succ = ids[succ_idx];
            let is_last = i + 1 == CASPER_PHASES.len();
            let mapping = match kind {
                MappingKind::Universal => Some(EnablementMapping::Universal),
                MappingKind::Identity => Some(EnablementMapping::Identity),
                MappingKind::ReverseIndirect => Some(EnablementMapping::ReverseIndirect(Arc::new(
                    self.reverse_map(&mut rng),
                ))),
                MappingKind::ForwardIndirect => Some(EnablementMapping::ForwardIndirect(Arc::new(
                    self.forward_map(&mut rng),
                ))),
                MappingKind::Null | MappingKind::Seam => None,
            };
            match (with_enables, mapping) {
                (true, Some(m)) if !is_last => {
                    b.dispatch_enable(
                        ids[i],
                        vec![EnableSpec {
                            successor: succ,
                            mapping: m,
                        }],
                    );
                }
                (true, Some(m)) if is_last => {
                    // loop back-edge: overlap into the next iteration's
                    // first phase (the branch below is counter-only, so it
                    // is preprocessable)
                    b.dispatch_enable_branch_independent(
                        ids[i],
                        vec![EnableSpec {
                            successor: succ,
                            mapping: m,
                        }],
                    );
                }
                _ => {
                    b.dispatch(ids[i]);
                }
            }
            if matches!(kind, MappingKind::Null) {
                // "serial actions and decisions had to occur between the
                // phases"
                b.serial(
                    self.serial_ticks,
                    format!("serial-after-{}", CASPER_PHASES[i].0),
                );
            }
        }
        b.incr(iter_counter, 1);
        let after = b.next_index() + 1;
        b.step(Step::Branch {
            test: BranchTest::CounterLt(iter_counter, self.iterations as i64),
            on_true: loop_top,
            on_false: after,
        });
        b.build().expect("CASPER program is structurally valid")
    }

    /// Build the array-IR model of the same pipeline, suitable for
    /// `pax_analyze::classify_program`. The classifier must recover the
    /// published census from the access patterns alone (experiment E2).
    ///
    /// The model has 23 phases: the 22 CASPER phases plus the next
    /// iteration's first phase, so all 22 transitions are classifiable.
    pub fn array_model(&self) -> ArrayProgram {
        let mut rng = pax_sim::seeded_rng(self.seed);
        let n = self.granules;
        let mut p = ArrayProgram::new();
        // one output array per phase + one private input per universal
        // successor (so universal pairs share nothing)
        let phase_count = CASPER_PHASES.len() + 1;
        let outputs: Vec<_> = (0..phase_count)
            .map(|i| p.array(format!("OUT{i}"), n))
            .collect();
        let fresh: Vec<_> = (0..phase_count)
            .map(|i| p.array(format!("IN{i}"), n))
            .collect();

        for i in 0..phase_count {
            let kind_of_prev = if i == 0 {
                None
            } else {
                Some(CASPER_PHASES[(i - 1) % CASPER_PHASES.len()].1)
            };
            let (name, _, lines) = CASPER_PHASES[i % CASPER_PHASES.len()];
            // reads depend on how the *previous* phase enables us
            let reads: Vec<Access> = match kind_of_prev {
                None => vec![Access::new(fresh[i], IndexExpr::Identity)],
                Some(MappingKind::Universal) => {
                    // character change: fresh input, nothing shared
                    vec![Access::new(fresh[i], IndexExpr::Identity)]
                }
                Some(MappingKind::Identity) | Some(MappingKind::Null) => {
                    // null transitions still share data (the cause was the
                    // serial gap, not independence)
                    vec![Access::new(outputs[i - 1], IndexExpr::Identity)]
                }
                Some(MappingKind::ReverseIndirect) => {
                    let rmap = self.reverse_map(&mut rng);
                    let m = p.map(format!("RMAP{i}"), rmap.requires.clone(), true);
                    vec![Access::new(outputs[i - 1], IndexExpr::GatherMany(m))]
                }
                Some(MappingKind::ForwardIndirect) => {
                    // the *writer* carried the map; we read our own index
                    vec![Access::new(outputs[i - 1], IndexExpr::Identity)]
                }
                Some(MappingKind::Seam) => unreachable!("no seam in CASPER"),
            };
            // writes depend on how *we* enable the next phase
            let kind_to_next = CASPER_PHASES[i % CASPER_PHASES.len()].1;
            let writes: Vec<Access> = match kind_to_next {
                MappingKind::ForwardIndirect => {
                    let fmap = self.forward_map(&mut rng);
                    let lists: Vec<Vec<u32>> = fmap.targets.iter().map(|&t| vec![t]).collect();
                    let m = p.map(format!("FMAP{i}"), lists, true);
                    vec![Access::new(outputs[i], IndexExpr::Gather(m))]
                }
                _ => vec![Access::new(outputs[i], IndexExpr::Identity)],
            };
            p.parallel(LoopPhase {
                name: name.into(),
                granules: n,
                writes,
                reads,
                lines,
            });
            if matches!(kind_to_next, MappingKind::Null) && i < phase_count - 1 {
                p.serial(format!("serial-after-{name}"), 4);
            }
        }
        p
    }
}

/// The census the pipeline is constructed to match, straight from the
/// table above (useful without running the classifier).
pub fn casper_declared_census() -> pax_analyze::census::Census {
    pax_analyze::census::Census::from_counts(
        CASPER_PHASES.iter().map(|&(_, kind, lines)| (kind, lines)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_analyze::classify_program;

    #[test]
    fn census_counts_match_paper() {
        let c = casper_declared_census();
        assert_eq!(c.total_phases(), 22);
        assert_eq!(c.total_lines(), 1188);
        assert_eq!(c.row(MappingKind::Universal).phases, 6);
        assert_eq!(c.row(MappingKind::Identity).phases, 9);
        assert_eq!(c.row(MappingKind::Null).phases, 4);
        assert_eq!(c.row(MappingKind::ReverseIndirect).phases, 2);
        assert_eq!(c.row(MappingKind::ForwardIndirect).phases, 1);
        assert_eq!(c.row(MappingKind::Universal).lines, 266);
        assert_eq!(c.row(MappingKind::Identity).lines, 551);
        assert_eq!(c.row(MappingKind::Null).lines, 262);
        assert_eq!(c.row(MappingKind::ReverseIndirect).lines, 78);
        assert_eq!(c.row(MappingKind::ForwardIndirect).lines, 31);
    }

    #[test]
    fn classifier_recovers_census_from_array_model() {
        let cfg = CasperConfig {
            granules: 48, // smaller for test speed
            ..CasperConfig::default()
        };
        let model = cfg.array_model();
        let classes = classify_program(&model);
        assert_eq!(classes.len(), 22);
        for (i, (_, _, cl)) in classes.iter().enumerate() {
            assert_eq!(
                cl.kind, CASPER_PHASES[i].1,
                "transition {i} ({}) misclassified",
                CASPER_PHASES[i].0
            );
        }
    }

    #[test]
    fn program_builds_and_validates() {
        let cfg = CasperConfig {
            granules: 32,
            iterations: 2,
            ..CasperConfig::default()
        };
        let p = cfg.build(true);
        assert!(p.validate().is_ok());
        assert_eq!(p.phases.len(), 22);
        let strict = cfg.build(false);
        assert!(strict.validate().is_ok());
    }

    #[test]
    fn pipeline_runs_to_completion_both_modes() {
        use pax_core::engine::Simulation;
        use pax_core::policy::OverlapPolicy;
        use pax_sim::machine::MachineConfig;
        let cfg = CasperConfig {
            granules: 40,
            iterations: 1,
            mean_cost: 20,
            ..CasperConfig::default()
        };
        for overlap in [false, true] {
            let policy = if overlap {
                OverlapPolicy::overlap()
            } else {
                OverlapPolicy::strict()
            };
            let mut sim = Simulation::new(MachineConfig::ideal(8), policy);
            sim.add_job(cfg.build(overlap));
            let r = sim.run().unwrap();
            assert_eq!(r.phases.len(), 22);
            assert!(r.warnings.is_empty(), "warnings: {:?}", r.warnings);
        }
    }

    #[test]
    fn overlap_beats_strict_on_casper() {
        use pax_core::engine::Simulation;
        use pax_core::policy::OverlapPolicy;
        use pax_sim::machine::MachineConfig;
        let cfg = CasperConfig {
            granules: 60,
            iterations: 1,
            mean_cost: 50,
            serial_ticks: 50,
            ..CasperConfig::default()
        };
        let strict = {
            let mut s = Simulation::new(MachineConfig::ideal(16), OverlapPolicy::strict());
            s.add_job(cfg.build(false));
            s.run().unwrap()
        };
        let over = {
            let mut s = Simulation::new(MachineConfig::ideal(16), OverlapPolicy::overlap());
            s.add_job(cfg.build(true));
            s.run().unwrap()
        };
        assert!(
            over.makespan < strict.makespan,
            "overlap {} !< strict {}",
            over.makespan.ticks(),
            strict.makespan.ticks()
        );
        assert!(over.total_overlap_granules() > 0);
    }

    #[test]
    fn multi_iteration_loop_produces_all_instances() {
        use pax_core::engine::Simulation;
        use pax_core::policy::OverlapPolicy;
        use pax_sim::machine::MachineConfig;
        let cfg = CasperConfig {
            granules: 16,
            iterations: 3,
            mean_cost: 10,
            serial_ticks: 5,
            ..CasperConfig::default()
        };
        let mut sim = Simulation::new(MachineConfig::ideal(4), OverlapPolicy::overlap());
        sim.add_job(cfg.build(true));
        let r = sim.run().unwrap();
        assert_eq!(r.phases.len(), 66, "3 iterations × 22 phases");
    }
}
