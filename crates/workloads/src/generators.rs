//! Parameterized synthetic workload generators for the rundown
//! experiments (E3, E4, E6).

use pax_core::mapping::{EnablementMapping, ForwardMap, MappingKind, ReverseMap};
use pax_core::phase::PhaseDef;
use pax_core::program::{EnableSpec, Program, ProgramBuilder};
use pax_sim::dist::{CostModel, DurationDist};
use rand::Rng;
use std::sync::Arc;

/// Shape of granule execution times for generated phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostShape {
    /// All granules take `mean` ticks.
    Constant,
    /// Uniform on `[mean/2, 3·mean/2]`.
    Jittered,
    /// Exponential with the given mean (heavy rundown tails).
    Exponential,
    /// 90% take `mean/2`, 10% take `5·mean` — stragglers.
    Straggler,
}

impl CostShape {
    /// Materialize a cost model with the given mean.
    pub fn model(self, mean: u64) -> CostModel {
        match self {
            CostShape::Constant => CostModel::constant(mean),
            CostShape::Jittered => CostModel::new(DurationDist::uniform(mean / 2, mean * 3 / 2)),
            CostShape::Exponential => CostModel::new(DurationDist::exponential(mean)),
            CostShape::Straggler => {
                CostModel::new(DurationDist::bimodal((mean / 2).max(1), mean * 5, 0.1))
            }
        }
    }
}

/// Configuration for a generated multi-phase workload.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of sequential phases.
    pub phases: usize,
    /// Granules per phase.
    pub granules: u32,
    /// Mean granule cost in ticks.
    pub mean_cost: u64,
    /// Cost shape.
    pub shape: CostShape,
    /// Mapping used on every transition.
    pub mapping: MappingKind,
    /// Fan-in for reverse mappings.
    pub reverse_fan: u32,
    /// RNG seed for generated maps.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            phases: 4,
            granules: 256,
            mean_cost: 100,
            shape: CostShape::Jittered,
            mapping: MappingKind::Identity,
            reverse_fan: 4,
            seed: 0x9E17E,
        }
    }
}

impl GeneratorConfig {
    /// Build the program; `with_enables = false` yields the barrier
    /// baseline over the identical workload.
    pub fn build(&self, with_enables: bool) -> Program {
        assert!(self.phases >= 1);
        let mut rng = pax_sim::seeded_rng(self.seed);
        let mut b = ProgramBuilder::new();
        let ids: Vec<_> = (0..self.phases)
            .map(|i| {
                b.phase(PhaseDef::new(
                    format!("gen-{i}"),
                    self.granules,
                    self.shape.model(self.mean_cost),
                ))
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            if i + 1 == self.phases || !with_enables {
                b.dispatch(id);
                continue;
            }
            let mapping = match self.mapping {
                MappingKind::Universal => EnablementMapping::Universal,
                MappingKind::Identity => EnablementMapping::Identity,
                MappingKind::Null => EnablementMapping::Null,
                MappingKind::ForwardIndirect => {
                    let t: Vec<u32> = (0..self.granules)
                        .map(|_| rng.gen_range(0..self.granules))
                        .collect();
                    EnablementMapping::ForwardIndirect(Arc::new(ForwardMap::new(t, self.granules)))
                }
                MappingKind::ReverseIndirect => {
                    let req: Vec<Vec<u32>> = (0..self.granules)
                        .map(|_| {
                            (0..self.reverse_fan)
                                .map(|_| rng.gen_range(0..self.granules))
                                .collect()
                        })
                        .collect();
                    EnablementMapping::ReverseIndirect(Arc::new(ReverseMap::new(
                        req,
                        self.granules,
                    )))
                }
                MappingKind::Seam => {
                    // 1-D two-neighbor stencil seam
                    let req: Vec<Vec<u32>> = (0..self.granules)
                        .map(|r| vec![r, (r + 1) % self.granules])
                        .collect();
                    EnablementMapping::Seam(Arc::new(pax_core::mapping::SeamMap { requires: req }))
                }
            };
            if matches!(mapping, EnablementMapping::Null) {
                b.dispatch(id);
            } else {
                b.dispatch_enable(
                    id,
                    vec![EnableSpec {
                        successor: ids[i + 1],
                        mapping,
                    }],
                );
            }
        }
        b.build().expect("generated program is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_core::prelude::*;
    use pax_sim::machine::MachineConfig;

    #[test]
    fn all_shapes_and_mappings_run() {
        for shape in [
            CostShape::Constant,
            CostShape::Jittered,
            CostShape::Exponential,
            CostShape::Straggler,
        ] {
            for mapping in [
                MappingKind::Universal,
                MappingKind::Identity,
                MappingKind::ForwardIndirect,
                MappingKind::ReverseIndirect,
                MappingKind::Seam,
                MappingKind::Null,
            ] {
                let cfg = GeneratorConfig {
                    phases: 3,
                    granules: 40,
                    mean_cost: 20,
                    shape,
                    mapping,
                    ..GeneratorConfig::default()
                };
                let mut sim = Simulation::new(MachineConfig::ideal(4), OverlapPolicy::overlap());
                sim.add_job(cfg.build(true));
                let r = sim
                    .run()
                    .unwrap_or_else(|e| panic!("{shape:?}/{mapping:?}: {e}"));
                assert_eq!(r.phases.len(), 3);
            }
        }
    }

    #[test]
    fn cost_shapes_have_expected_means() {
        assert_eq!(CostShape::Constant.model(100).mean_ticks(), 100.0);
        assert_eq!(CostShape::Jittered.model(100).mean_ticks(), 100.0);
        assert_eq!(CostShape::Exponential.model(100).mean_ticks(), 100.0);
        // straggler: 0.9*50 + 0.1*500 = 95
        assert!((CostShape::Straggler.model(100).mean_ticks() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GeneratorConfig {
            mapping: MappingKind::ReverseIndirect,
            granules: 30,
            phases: 3,
            ..GeneratorConfig::default()
        };
        let run = || {
            let mut sim =
                Simulation::new(MachineConfig::ideal(4), OverlapPolicy::overlap()).with_seed(99);
            sim.add_job(cfg.build(true));
            sim.run().unwrap().makespan
        };
        assert_eq!(run(), run());
    }
}
