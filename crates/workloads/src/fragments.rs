//! The paper's four Fortran fragments, as analyzable array programs and
//! as runnable simulation programs.
//!
//! These are the concrete situations the paper uses to introduce each
//! enablement mapping; tests assert the classifier assigns exactly the
//! mapping the paper assigns.

use pax_analyze::ir::{Access, ArrayProgram, IndexExpr, LoopPhase};
use pax_core::mapping::{EnablementMapping, ForwardMap, ReverseMap};
use pax_core::phase::PhaseDef;
use pax_core::program::{EnableSpec, Program, ProgramBuilder};
use pax_sim::dist::CostModel;
use rand::Rng;

/// Fragment 1 — universal mapping:
///
/// ```fortran
/// DO 100 I=1,N
///   B(I)=A(I)
/// 100 CONTINUE
/// DO 200 I=1,N
///   D(I)=C(I)
/// 200 CONTINUE
/// ```
pub fn fragment_universal(n: u32) -> ArrayProgram {
    let mut p = ArrayProgram::new();
    let a = p.array("A", n);
    let b = p.array("B", n);
    let c = p.array("C", n);
    let d = p.array("D", n);
    p.parallel(LoopPhase {
        name: "B(I)=A(I)".into(),
        granules: n,
        writes: vec![Access::new(b, IndexExpr::Identity)],
        reads: vec![Access::new(a, IndexExpr::Identity)],
        lines: 3,
    });
    p.parallel(LoopPhase {
        name: "D(I)=C(I)".into(),
        granules: n,
        writes: vec![Access::new(d, IndexExpr::Identity)],
        reads: vec![Access::new(c, IndexExpr::Identity)],
        lines: 3,
    });
    p
}

/// Fragment 2 — identity (direct) mapping:
///
/// ```fortran
/// DO 100 I=1,N
///   B(I)=A(I)
/// 100 CONTINUE
/// DO 200 I=1,N
///   C(I)=B(I)
/// 200 CONTINUE
/// ```
pub fn fragment_identity(n: u32) -> ArrayProgram {
    let mut p = ArrayProgram::new();
    let a = p.array("A", n);
    let b = p.array("B", n);
    let c = p.array("C", n);
    p.parallel(LoopPhase {
        name: "B(I)=A(I)".into(),
        granules: n,
        writes: vec![Access::new(b, IndexExpr::Identity)],
        reads: vec![Access::new(a, IndexExpr::Identity)],
        lines: 3,
    });
    p.parallel(LoopPhase {
        name: "C(I)=B(I)".into(),
        granules: n,
        writes: vec![Access::new(c, IndexExpr::Identity)],
        reads: vec![Access::new(b, IndexExpr::Identity)],
        lines: 3,
    });
    p
}

/// Fragment 3 — reverse indirect mapping:
///
/// ```fortran
/// DO 10 I=1,N
///   DO 10 J=1,10
///     IMAP(J,I)=IRAND()      ! dynamically generated
/// 10 CONTINUE
/// DO 100 I=1,N
///   A(I)=FUNC(I)             ! first phase
/// 100 CONTINUE
/// DO 200 I=1,N
///   DO 200 J=1,10
///     B(I)=B(I)+A(IMAP(J,I)) ! second phase gathers
/// 200 CONTINUE
/// ```
///
/// Returns the program plus the generated map (so simulations can bind
/// the same map).
pub fn fragment_reverse(n: u32, fan: u32, seed: u64) -> (ArrayProgram, ReverseMap) {
    let mut rng = pax_sim::seeded_rng(seed);
    let lists: Vec<Vec<u32>> = (0..n)
        .map(|_| (0..fan).map(|_| rng.gen_range(0..n)).collect())
        .collect();
    let rmap = ReverseMap::new(lists.clone(), n);
    let mut p = ArrayProgram::new();
    let a = p.array("A", n);
    let b = p.array("B", n);
    let m = p.map("IMAP", lists, true);
    p.parallel(LoopPhase {
        name: "A(I)=FUNC(I)".into(),
        granules: n,
        writes: vec![Access::new(a, IndexExpr::Identity)],
        reads: vec![],
        lines: 3,
    });
    p.parallel(LoopPhase {
        name: "B(I)=SUM A(IMAP(J,I))".into(),
        granules: n,
        writes: vec![Access::new(b, IndexExpr::Identity)],
        reads: vec![Access::new(a, IndexExpr::GatherMany(m))],
        lines: 4,
    });
    (p, rmap)
}

/// Fragment 4 — forward indirect mapping:
///
/// ```fortran
/// DO 10 I=1,M
///   IMAP(I)=IRAND()          ! generate forward map
/// 10 CONTINUE
/// DO 100 I=1,M
///   B(IMAP(I))=A(IMAP(I))    ! operate on a subset
/// 100 CONTINUE
/// DO 200 I=1,N
///   C(I)=B(I)                ! operate on the whole array
/// 200 CONTINUE
/// ```
pub fn fragment_forward(m_granules: u32, n: u32, seed: u64) -> (ArrayProgram, ForwardMap) {
    assert!(m_granules <= n);
    let mut rng = pax_sim::seeded_rng(seed);
    let targets: Vec<u32> = (0..m_granules).map(|_| rng.gen_range(0..n)).collect();
    let fmap = ForwardMap::new(targets.clone(), n);
    let mut p = ArrayProgram::new();
    let a = p.array("A", n);
    let b = p.array("B", n);
    let c = p.array("C", n);
    let m = p.map("IMAP", targets.iter().map(|&t| vec![t]).collect(), true);
    p.parallel(LoopPhase {
        name: "B(IMAP(I))=A(IMAP(I))".into(),
        granules: m_granules,
        writes: vec![Access::new(b, IndexExpr::Gather(m))],
        reads: vec![Access::new(a, IndexExpr::Gather(m))],
        lines: 3,
    });
    p.parallel(LoopPhase {
        name: "C(I)=B(I)".into(),
        granules: n,
        writes: vec![Access::new(c, IndexExpr::Identity)],
        reads: vec![Access::new(b, IndexExpr::Identity)],
        lines: 3,
    });
    (p, fmap)
}

/// Build a runnable two-phase simulation program for any fragment:
/// classification output feeds straight into the executive.
pub fn fragment_simulation(program: &ArrayProgram, cost: CostModel, with_enable: bool) -> Program {
    let phases: Vec<&LoopPhase> = program.parallel_phases().map(|(_, p)| p).collect();
    assert_eq!(phases.len(), 2, "fragments have exactly two phases");
    let serial = false; // fragments have no serial gaps
    let cl = pax_analyze::classify(program, phases[0], phases[1], serial);
    let mut b = ProgramBuilder::new();
    let p1 = b.phase(
        PhaseDef::new(&phases[0].name, phases[0].granules, cost.clone())
            .with_lines(phases[0].lines),
    );
    let p2 = b.phase(
        PhaseDef::new(&phases[1].name, phases[1].granules, cost).with_lines(phases[1].lines),
    );
    if with_enable && !matches!(cl.mapping, EnablementMapping::Null) {
        b.dispatch_enable(
            p1,
            vec![EnableSpec {
                successor: p2,
                mapping: cl.mapping,
            }],
        );
    } else {
        b.dispatch(p1);
    }
    b.dispatch(p2);
    b.build().expect("fragment program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_analyze::{classify, classify_program};
    use pax_core::mapping::MappingKind;
    use pax_core::prelude::*;
    use pax_sim::machine::MachineConfig;

    #[test]
    fn fragment1_classifies_universal() {
        let p = fragment_universal(32);
        let cls = classify_program(&p);
        assert_eq!(cls.len(), 1);
        assert_eq!(cls[0].2.kind, MappingKind::Universal);
    }

    #[test]
    fn fragment2_classifies_identity() {
        let p = fragment_identity(32);
        let cls = classify_program(&p);
        assert_eq!(cls[0].2.kind, MappingKind::Identity);
    }

    #[test]
    fn fragment3_classifies_reverse() {
        let (p, rmap) = fragment_reverse(24, 10, 7);
        let cls = classify_program(&p);
        assert_eq!(cls[0].2.kind, MappingKind::ReverseIndirect);
        // the classifier's requirement lists equal the generated map's
        // (deduped, sorted)
        for (r, deps) in cls[0].2.requires.iter().enumerate() {
            let mut expect = rmap.requires[r].clone();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(deps, &expect);
        }
    }

    #[test]
    fn fragment4_classifies_forward() {
        let (p, _) = fragment_forward(16, 40, 7);
        let cls = classify_program(&p);
        assert_eq!(cls[0].2.kind, MappingKind::ForwardIndirect);
    }

    #[test]
    fn fragments_run_with_overlap_and_match_strict_totals() {
        for (name, prog) in [
            ("universal", fragment_universal(30)),
            ("identity", fragment_identity(30)),
            ("reverse", fragment_reverse(30, 5, 3).0),
            ("forward", fragment_forward(30, 30, 3).0),
        ] {
            let sim_prog = fragment_simulation(&prog, CostModel::constant(10), true);
            let strict_prog = fragment_simulation(&prog, CostModel::constant(10), false);
            let run = |p: Program, overlap: bool| {
                let policy = if overlap {
                    OverlapPolicy::overlap().with_sizing(TaskSizing::Fixed(1))
                } else {
                    OverlapPolicy::strict().with_sizing(TaskSizing::Fixed(1))
                };
                let mut s = Simulation::new(MachineConfig::ideal(4), policy);
                s.add_job(p);
                s.run().unwrap()
            };
            let over = run(sim_prog, true);
            let strict = run(strict_prog, false);
            assert_eq!(
                over.compute_time, strict.compute_time,
                "{name}: work not conserved"
            );
            assert!(
                over.makespan <= strict.makespan,
                "{name}: overlap {} > strict {}",
                over.makespan.ticks(),
                strict.makespan.ticks()
            );
        }
    }

    #[test]
    fn classification_respects_parallel_predicate() {
        // PARALLEL(q, r) must hold between any unfinished current granule
        // q and any enabled successor granule r under the derived mapping:
        // check for the identity fragment that granule r of phase 2
        // conflicts only with granule r of phase 1.
        let p = fragment_identity(16);
        let phases: Vec<&pax_analyze::ir::LoopPhase> =
            p.parallel_phases().map(|(_, ph)| ph).collect();
        let cl = classify(&p, phases[0], phases[1], false);
        for (r, deps) in cl.requires.iter().enumerate() {
            for q in 0..16u32 {
                let par = pax_analyze::parallel(&p, phases[0], q, phases[1], r as u32);
                let required = deps.contains(&q);
                assert_eq!(par, !required, "granule q={q}, r={r}");
            }
        }
    }
}
