//! A miniature *numeric* CASPER: the paper's phase-character change made
//! runnable.
//!
//! The paper names one concrete transition when describing universal
//! mappings: "the change over from **power of compression** computations
//! to **interpolator matrix generation** is one such character change",
//! and both of its indirect mappings "involved a dynamically generated
//! information selection map". This module distils that structure into a
//! small real computation over `f64` state so the executors (simulated
//! and threaded) can be validated on CASPER-*shaped* dataflow, not just
//! synthetic spins:
//!
//! | # | phase | reads → writes | mapping to next |
//! |---|-------|----------------|-----------------|
//! | 1 | `power` — power of compression | `u[i]` → `p[i]` | reverse indirect (phase 2 gathers `p[IMAP(j,i)]`) |
//! | 2 | `interp` — interpolator row | `p[IMAP(j,i)]` → `m[i]` | identity (phase 3 reads `m[i]`) |
//! | 3 | `apply` — relax the field | `u[i], m[i]` → `u[i]` | universal (phase 4 shares nothing) |
//! | 4 | `structural` — load table | `s[i]` → `s[i]` | universal (next step's `power` shares nothing with `s`) |
//!
//! Every `serial_every` timesteps a serial convergence decision separates
//! step boundaries — the paper's null mapping ("serial actions and
//! decisions had to occur between the phases").
//!
//! All kernels are per-cell pure functions of already-gated inputs, so
//! any schedule the executive produces — barriers, overlap, work
//! stealing — must yield **bitwise identical** state to the sequential
//! reference ([`MiniCasper::reference`]). That equality is asserted in
//! the cross-crate tests and experiment E9.

use crate::generators::CostShape;
use pax_core::mapping::{EnablementMapping, ReverseMap};
use pax_core::phase::PhaseDef;
use pax_core::program::{EnableSpec, Program, ProgramBuilder};
use rand::Rng;
use std::sync::Arc;

/// Configuration of the mini-CASPER pipeline.
#[derive(Debug, Clone)]
pub struct MiniCasper {
    /// Cells (granules per phase).
    pub n: u32,
    /// Gather fan of the information-selection map (`IMAP(J,I), J=1..fan`).
    pub fan: usize,
    /// Timesteps to run.
    pub timesteps: usize,
    /// A serial convergence decision after every this many timesteps
    /// (0 = never) — the source of null mappings.
    pub serial_every: usize,
    /// Seed for the dynamically generated `IMAP`.
    pub seed: u64,
    /// The dynamically generated information-selection map:
    /// `imap[i]` = the `fan` cells whose compression powers feed cell
    /// `i`'s interpolator row.
    pub imap: Vec<Vec<u32>>,
}

impl MiniCasper {
    /// Build a spec with a seeded dynamic `IMAP` ("IRAND produces an
    /// integer in the range 1 to N").
    pub fn new(n: u32, fan: usize, timesteps: usize, serial_every: usize, seed: u64) -> MiniCasper {
        assert!(n > 0 && fan > 0 && timesteps > 0);
        let mut rng = pax_sim::seeded_rng(seed);
        let imap: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..fan).map(|_| rng.gen_range(0..n)).collect())
            .collect();
        MiniCasper {
            n,
            fan,
            timesteps,
            serial_every,
            seed,
            imap,
        }
    }

    /// Initial aerodynamic field.
    pub fn initial_u(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| 1.0 + (i as f64 * 0.37).sin() * 0.25)
            .collect()
    }

    /// Initial structural load table.
    pub fn initial_s(&self) -> Vec<f64> {
        (0..self.n).map(|i| (i as f64 * 0.11).cos()).collect()
    }

    // ------------------------------------------------------------------
    // per-cell kernels (pure; schedule-independent by construction)
    // ------------------------------------------------------------------

    /// Phase 1: power of compression for one cell.
    #[inline]
    pub fn power_kernel(u_i: f64) -> f64 {
        // smooth, monotone, cheap: p = u·(1 + u²)^0.2
        u_i * (1.0 + u_i * u_i).powf(0.2)
    }

    /// Phase 2: one interpolator row from the gathered powers. The gather
    /// order is the `IMAP` order, so the sum is deterministic.
    #[inline]
    pub fn interp_kernel(gathered: impl Iterator<Item = f64>) -> f64 {
        let mut acc = 0.0f64;
        let mut w = 1.0f64;
        for p in gathered {
            acc += w * p;
            w *= 0.5;
        }
        acc
    }

    /// Phase 3: relax the field toward the interpolated value.
    #[inline]
    pub fn apply_kernel(u_i: f64, m_i: f64) -> f64 {
        u_i + 0.3 * (m_i / 2.0 - u_i)
    }

    /// Phase 4: advance the structural load table (self-contained).
    #[inline]
    pub fn structural_kernel(s_i: f64, i: u32) -> f64 {
        0.99 * s_i + 0.01 * ((i as f64) * 0.017).sin()
    }

    /// Sequential reference: final `(u, s)` after all timesteps.
    pub fn reference(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.n as usize;
        let mut u = self.initial_u();
        let mut s = self.initial_s();
        let mut p = vec![0.0f64; n];
        let mut m = vec![0.0f64; n];
        for _ in 0..self.timesteps {
            for i in 0..n {
                p[i] = Self::power_kernel(u[i]);
            }
            for (i, mi) in m.iter_mut().enumerate() {
                *mi = Self::interp_kernel(self.imap[i].iter().map(|&j| p[j as usize]));
            }
            for i in 0..n {
                u[i] = Self::apply_kernel(u[i], m[i]);
            }
            for (i, v) in s.iter_mut().enumerate() {
                *v = Self::structural_kernel(*v, i as u32);
            }
        }
        (u, s)
    }

    /// The reverse information-selection map of the `power → interp`
    /// transition, ready for the executive.
    pub fn reverse_map(&self) -> ReverseMap {
        ReverseMap::new(self.imap.clone(), self.n)
    }

    /// The per-timestep mapping sequence `(name, mapping-to-next)`,
    /// where the last entry maps into the *next* timestep's first phase.
    pub fn mappings(&self) -> Vec<(&'static str, EnablementMapping)> {
        vec![
            (
                "power",
                EnablementMapping::ReverseIndirect(Arc::new(self.reverse_map())),
            ),
            ("interp", EnablementMapping::Identity),
            ("apply", EnablementMapping::Universal),
            ("structural", EnablementMapping::Universal),
        ]
    }

    /// The pipeline as an analyzable array program: the classifier should
    /// recover every mapping in [`MiniCasper::mappings`] from the access
    /// patterns alone (reverse-indirect through the dynamic `IMAP`,
    /// identity through `m`, universal across the character changes, null
    /// at serial decisions).
    pub fn array_model(&self) -> pax_analyze::ir::ArrayProgram {
        use pax_analyze::ir::{Access, ArrayProgram, IndexExpr, LoopPhase};
        let n = self.n;
        let mut prog = ArrayProgram::new();
        let u = prog.array("U", n);
        let p = prog.array("P", n);
        let m = prog.array("M", n);
        let s = prog.array("S", n);
        let imap = prog.map("IMAP", self.imap.clone(), true);
        let phase = |name: &str, writes, reads| LoopPhase {
            name: name.into(),
            granules: n,
            writes,
            reads,
            lines: 10,
        };
        for t in 0..self.timesteps {
            if self.serial_every > 0 && t > 0 && t % self.serial_every == 0 {
                prog.serial("convergence decision", 3);
            }
            prog.parallel(phase(
                &format!("power-{t}"),
                vec![Access::new(p, IndexExpr::Identity)],
                vec![Access::new(u, IndexExpr::Identity)],
            ));
            prog.parallel(phase(
                &format!("interp-{t}"),
                vec![Access::new(m, IndexExpr::Identity)],
                vec![Access::new(p, IndexExpr::GatherMany(imap))],
            ));
            prog.parallel(phase(
                &format!("apply-{t}"),
                vec![Access::new(u, IndexExpr::Identity)],
                vec![
                    Access::new(u, IndexExpr::Identity),
                    Access::new(m, IndexExpr::Identity),
                ],
            ));
            prog.parallel(phase(
                &format!("structural-{t}"),
                vec![Access::new(s, IndexExpr::Identity)],
                vec![Access::new(s, IndexExpr::Identity)],
            ));
        }
        prog
    }

    /// Simulation program: the unrolled timestep chain with the table's
    /// mappings and the periodic serial convergence decision.
    pub fn sim_program(&self, mean_cost: u64, shape: CostShape) -> Program {
        let mut b = ProgramBuilder::new();
        let names = ["power", "interp", "apply", "structural"];
        // one definition per phase kind, reused across timesteps
        let ids: Vec<_> = names
            .iter()
            .map(|name| b.phase(PhaseDef::new(*name, self.n, shape.model(mean_cost))))
            .collect();
        let maps = self.mappings();
        for t in 0..self.timesteps {
            let serial_here = self.serial_every > 0 && t > 0 && t % self.serial_every == 0;
            if serial_here {
                b.serial(mean_cost * 4, "convergence decision");
            }
            for (k, &id) in ids.iter().enumerate() {
                let last_phase_of_last_step = t + 1 == self.timesteps && k + 1 == ids.len();
                let serial_next =
                    self.serial_every > 0 && k + 1 == ids.len() && (t + 1) % self.serial_every == 0;
                if last_phase_of_last_step || serial_next {
                    // null mapping: no ENABLE across a serial decision
                    b.dispatch(id);
                } else {
                    let succ = ids[(k + 1) % ids.len()];
                    b.dispatch_enable(
                        id,
                        vec![EnableSpec {
                            successor: succ,
                            mapping: maps[k].1.clone(),
                        }],
                    );
                }
            }
        }
        b.build().expect("mini-CASPER program is well-formed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_core::prelude::*;
    use pax_sim::machine::MachineConfig;

    #[test]
    fn imap_is_in_range_and_seeded() {
        let a = MiniCasper::new(64, 4, 2, 0, 7);
        let b = MiniCasper::new(64, 4, 2, 0, 7);
        assert_eq!(a.imap, b.imap, "same seed, same map");
        assert!(a.imap.iter().flatten().all(|&j| j < 64));
        let c = MiniCasper::new(64, 4, 2, 0, 8);
        assert_ne!(a.imap, c.imap, "different seed, different map");
    }

    #[test]
    fn reference_is_deterministic_and_finite() {
        let spec = MiniCasper::new(128, 4, 5, 2, 11);
        let (u1, s1) = spec.reference();
        let (u2, s2) = spec.reference();
        assert_eq!(u1, u2);
        assert_eq!(s1, s2);
        assert!(u1.iter().all(|v| v.is_finite()));
        assert!(s1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relaxation_converges_toward_interpolated_field() {
        // many timesteps shrink the per-step field movement
        let short = MiniCasper::new(64, 4, 2, 0, 3);
        let long = MiniCasper::new(64, 4, 40, 0, 3);
        let (u_short, _) = short.reference();
        let (u_long, _) = long.reference();
        let (u0_vals, _) = (short.initial_u(), ());
        let delta =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        // the field keeps moving early; later steps move less
        let d_early = delta(&u_short, &u0_vals);
        assert!(d_early > 0.0);
        assert!(u_long.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sim_program_validates_and_runs_both_modes() {
        let spec = MiniCasper::new(48, 4, 3, 2, 5);
        let program = spec.sim_program(20, CostShape::Jittered);
        assert!(program.validate().is_ok());
        for policy in [OverlapPolicy::strict(), OverlapPolicy::overlap()] {
            let mut sim = Simulation::new(MachineConfig::ideal(4), policy);
            sim.add_job(program.clone());
            let r = sim.run().expect("run");
            // 3 timesteps × 4 phases
            assert_eq!(r.phases.len(), 12);
            for ph in &r.phases {
                assert_eq!(ph.stats.executed_granules, 48);
            }
        }
    }

    #[test]
    fn overlap_beats_strict_on_mini_casper_sim() {
        let spec = MiniCasper::new(256, 4, 4, 0, 5);
        let program = spec.sim_program(50, CostShape::Jittered);
        let run = |policy: OverlapPolicy| {
            let mut sim = Simulation::new(MachineConfig::ideal(16), policy);
            sim.add_job(program.clone());
            sim.run().unwrap()
        };
        let strict = run(OverlapPolicy::strict());
        let overlap = run(OverlapPolicy::overlap());
        assert!(
            overlap.makespan < strict.makespan,
            "overlap {} !< strict {}",
            overlap.makespan,
            strict.makespan
        );
        assert!(overlap.total_overlap_granules() > 0);
    }

    #[test]
    fn serial_decisions_produce_null_transitions() {
        // with serial_every=1 every timestep boundary is serial: the last
        // phase of each step must carry no ENABLE
        let spec = MiniCasper::new(16, 2, 3, 1, 1);
        let program = spec.sim_program(10, CostShape::Constant);
        let mut enables_across_steps = 0;
        let mut serials = 0;
        for s in &program.steps {
            match s {
                pax_core::program::Step::Serial { .. } => serials += 1,
                pax_core::program::Step::Dispatch { enables, .. } => {
                    enables_across_steps += enables.len();
                }
                _ => {}
            }
        }
        assert_eq!(serials, 2, "serial decision between each of 3 steps");
        // within a step: 3 enables (power→interp→apply→structural);
        // across steps: none
        assert_eq!(enables_across_steps, 3 * 3);
    }

    #[test]
    fn classifier_recovers_the_pipeline_structure() {
        use pax_core::mapping::MappingKind;
        // 3 timesteps, serial decision before step 2 (serial_every = 2)
        let spec = MiniCasper::new(64, 4, 3, 2, 17);
        let model = spec.array_model();
        let classes = pax_analyze::classify_program(&model);
        // 12 phases → 11 transitions
        assert_eq!(classes.len(), 11);
        let kinds: Vec<MappingKind> = classes.iter().map(|(_, _, c)| c.kind).collect();
        let expect_step = [
            MappingKind::ReverseIndirect, // power → interp (dynamic IMAP)
            MappingKind::Identity,        // interp → apply
            MappingKind::Universal,       // apply → structural
        ];
        // step boundaries: 0→1 open (universal), 1→2 serial (null)
        let expected = vec![
            expect_step[0],
            expect_step[1],
            expect_step[2],
            MappingKind::Universal, // structural-0 → power-1
            expect_step[0],
            expect_step[1],
            expect_step[2],
            MappingKind::Null, // serial decision before step 2
            expect_step[0],
            expect_step[1],
            expect_step[2],
        ];
        assert_eq!(kinds, expected);
        // the recovered reverse map must agree with the spec's IMAP
        let rev = &classes[0].2;
        for (r, deps) in rev.requires.iter().enumerate() {
            let mut want: Vec<u32> = spec.imap[r].clone();
            want.sort_unstable();
            want.dedup();
            assert_eq!(deps, &want, "successor granule {r}");
        }
    }

    #[test]
    fn mappings_match_the_documented_table() {
        let spec = MiniCasper::new(32, 4, 2, 0, 9);
        let maps = spec.mappings();
        assert_eq!(
            maps[0].1.kind(),
            pax_core::mapping::MappingKind::ReverseIndirect
        );
        assert_eq!(maps[1].1.kind(), pax_core::mapping::MappingKind::Identity);
        assert_eq!(maps[2].1.kind(), pax_core::mapping::MappingKind::Universal);
        assert_eq!(maps[3].1.kind(), pax_core::mapping::MappingKind::Universal);
    }
}
