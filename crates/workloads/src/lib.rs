//! # pax-workloads — the workloads of NASA TM-87349
//!
//! * [`checkerboard`] — the checkerboard SOR potential-field problem (the
//!   paper's running example), with grid geometry, seam-map construction,
//!   the exact 1024²/1000-processor arithmetic, and a real `f64` red–black
//!   SOR kernel.
//! * [`casper`] — a synthetic pipeline matching CASPER's published census
//!   (22 phases, 1188 parallel lines, 6/9/4/2/1 mapping breakdown) with
//!   dynamically generated information-selection maps.
//! * [`fleet`] — multi-machine-group fleets (independent or staged by
//!   admission edges) for the sharded engine's scaling sweeps.
//! * [`fragmentation`] — a strided-release workload that keeps the
//!   executive's granule-run sets maximally fragmented (the run-storage
//!   backend stress shape).
//! * [`fragments`] — the paper's four Fortran fragments as analyzable
//!   array programs and runnable simulations.
//! * [`generators`] — parameterized synthetic workloads for the rundown
//!   sweeps.
//! * [`mini_casper`] — a miniature *numeric* CASPER: the paper's
//!   "power of compression → interpolator matrix generation" pipeline as
//!   real `f64` kernels with a dynamic `IMAP`, for validating executors
//!   on CASPER-shaped dataflow.
//! * [`scenario`] — declarative scenario files: heterogeneous machines
//!   (speed classes, resource pools, faults, admission) and workloads
//!   loaded from JSON with line-accurate [`scenario::ScenarioError`]
//!   diagnostics. Format spec in `docs/SCENARIO_FORMAT.md`.

#![warn(missing_docs)]

pub mod casper;
pub mod checkerboard;
pub mod fleet;
pub mod fragmentation;
pub mod fragments;
pub mod generators;
pub mod mini_casper;
pub mod scenario;
pub mod service;

pub use casper::{casper_declared_census, CasperConfig, CASPER_PHASES};
pub use checkerboard::{checkerboard_program, Checkerboard, Color, RedBlackGrid};
pub use fleet::{degraded_fault_plan, FleetConfig};
pub use fragmentation::{
    fragmented_rundown, interleaved_stripes, stripe_churn_ranges, FragmentationConfig,
};
pub use fragments::{
    fragment_forward, fragment_identity, fragment_reverse, fragment_simulation, fragment_universal,
};
pub use generators::{CostShape, GeneratorConfig};
pub use mini_casper::MiniCasper;
pub use scenario::{Scenario, ScenarioError, ScenarioErrorKind};
pub use service::ServiceConfig;
