//! Fragmentation-heavy rundown workload: strided release order that
//! keeps the executive's granule-run sets maximally fragmented.
//!
//! The dense workloads (identity, universal) complete and release
//! granules almost in index order, so the executive's `RangeSet`s stay
//! at one or two runs and every merge is an O(1) hinted extend. Real
//! irregular phases are not so kind: when the enablement mapping scatters
//! releases across the index space, the released/completed sets shatter
//! into thousands of short runs and every merge becomes a *bridging or
//! disjoint insert into the middle of a fragmented run list* — the shape
//! the contiguous-Vec run storage is worst at (each such insert shifts
//! the whole tail) and the chunked backend exists for.
//!
//! The workload here manufactures that shape deterministically. Phase
//! `frag-a` completes its granules in index order (constant costs); its
//! forward-indirect enablement map sends completion `g` to successor
//! granule [`interleaved_stripes`]`[g]` — all even-numbered stripes of
//! width `stripe` front to back, then all odd-numbered stripes. The
//! successor's *released* set therefore first accretes one disjoint run
//! per even stripe (half the stripe count), then every odd stripe is
//! carved into the middle: a disjoint mid-list insert, `stripe − 2`
//! hinted extends, and a bridging insert closing the gap — sustained,
//! front-to-back fragmentation churn for the whole second half of the
//! phase, on both the `released` and (as those granules execute in
//! release order) the `completed` set. This is the access pattern of the
//! `rangeset_churn` microbench embedded in a full simulation.
//!
//! Run it under `CompositeBuild::Immediate` (as the `pax-bench`
//! `fragmented_*` scenarios do): with the default background build the
//! decrements all defer until the composite map is ready, and any
//! releases before that point arrive as one coalesced batch instead of
//! the per-completion strided singletons this workload exists to
//! produce.

use pax_core::mapping::EnablementMapping;
use pax_core::mapping::ForwardMap;
use pax_core::phase::PhaseDef;
use pax_core::program::{EnableSpec, Program, ProgramBuilder};
use pax_sim::dist::CostModel;
use std::sync::Arc;

/// The strided release order: all even-numbered stripes of width
/// `stripe` in index order, then all odd-numbered stripes. A permutation
/// of `0..granules` (`stripe` < 1 is clamped to 1; the last stripe may
/// be short when `stripe` does not divide `granules`).
///
/// Inserting ranges into a `RangeSet` in this order holds the set at
/// ⌈stripes/2⌉ disjoint runs for the whole first half, then forces a
/// disjoint middle insert plus a bridging insert per odd stripe — the
/// adversarial pattern for contiguous run storage.
pub fn interleaved_stripes(granules: u32, stripe: u32) -> Vec<u32> {
    let stripe = stripe.max(1);
    let mut order = Vec::with_capacity(granules as usize);
    for parity in 0..2u32 {
        let mut lo = parity.saturating_mul(stripe);
        while lo < granules {
            let hi = lo.saturating_add(stripe).min(granules);
            order.extend(lo..hi);
            match lo.checked_add(2 * stripe) {
                Some(next) => lo = next,
                None => break,
            }
        }
    }
    order
}

/// The stripe-churn insert sequence as whole-stripe ranges: every
/// even-numbered stripe of width `stripe` front to back, then every
/// odd-numbered stripe (`stripe` < 1 clamps to 1; the last stripe may
/// be short). Feeding these ranges to `RangeSet::insert` makes each
/// odd-stripe insert bridge its two even neighbours after the set
/// peaked at ⌈stripes/2⌉ runs — the canonical adversarial pattern for
/// contiguous run storage. This is the single definition the
/// `storage_scaling` structure rows and the `rangeset_storage`
/// microbench both drive, so every churn measurement uses the
/// identical insert sequence.
pub fn stripe_churn_ranges(granules: u32, stripe: u32) -> Vec<pax_core::ids::GranuleRange> {
    let stripe = stripe.max(1);
    let mut out = Vec::with_capacity(granules.div_ceil(stripe) as usize);
    for parity in 0..2u32 {
        let mut lo = parity.saturating_mul(stripe);
        while lo < granules {
            out.push(pax_core::ids::GranuleRange::new(
                lo,
                lo.saturating_add(stripe).min(granules),
            ));
            match lo.checked_add(2 * stripe) {
                Some(next) => lo = next,
                None => break,
            }
        }
    }
    out
}

/// Configuration of the fragmentation workload.
#[derive(Debug, Clone)]
pub struct FragmentationConfig {
    /// Granules per phase.
    pub granules: u32,
    /// Stripe width of the interleaved release order. Smaller stripes
    /// mean more simultaneous runs (⌈granules/stripe⌉/2 at peak).
    pub stripe: u32,
    /// Constant granule cost in ticks (constant costs keep the
    /// completion order equal to the dispatch order, which is what makes
    /// the fragmentation deterministic).
    pub cost: u64,
}

impl Default for FragmentationConfig {
    fn default() -> FragmentationConfig {
        FragmentationConfig {
            granules: 4096,
            stripe: 8,
            cost: 100,
        }
    }
}

impl FragmentationConfig {
    /// Build the two-phase program: `frag-a` enables `frag-b` through
    /// the strided forward map.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let cost = CostModel::constant(self.cost);
        let pa = b.phase(PhaseDef::new("frag-a", self.granules, cost.clone()));
        let pb = b.phase(PhaseDef::new("frag-b", self.granules, cost));
        let targets = interleaved_stripes(self.granules, self.stripe);
        b.dispatch_enable(
            pa,
            vec![EnableSpec {
                successor: pb,
                mapping: EnablementMapping::ForwardIndirect(Arc::new(ForwardMap::new(
                    targets,
                    self.granules,
                ))),
            }],
        );
        b.dispatch(pb);
        b.build().expect("fragmentation program is valid")
    }
}

/// Convenience constructor: the fragmentation program at the given size
/// with the default stripe width and cost.
pub fn fragmented_rundown(granules: u32) -> Program {
    FragmentationConfig {
        granules,
        ..FragmentationConfig::default()
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_core::prelude::*;
    use pax_sim::machine::{MachineConfig, RunStorageKind};

    #[test]
    fn interleaved_stripes_is_a_permutation() {
        for (n, s) in [(64u32, 8u32), (100, 8), (17, 4), (5, 1), (9, 16), (256, 3)] {
            let mut order = interleaved_stripes(n, s);
            assert_eq!(order.len(), n as usize, "n={n} s={s}");
            order.sort_unstable();
            assert!(
                order.iter().enumerate().all(|(i, &g)| g == i as u32),
                "not a permutation for n={n} s={s}"
            );
        }
        // degenerate widths clamp to single-granule stripes (even
        // indices first, then odd) instead of panicking
        assert_eq!(interleaved_stripes(4, 0), vec![0, 2, 1, 3]);
    }

    #[test]
    fn stripe_order_interleaves_even_then_odd() {
        let order = interleaved_stripes(32, 8);
        assert_eq!(&order[0..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(&order[8..16], &[16, 17, 18, 19, 20, 21, 22, 23]);
        assert_eq!(&order[16..24], &[8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(&order[24..32], &[24, 25, 26, 27, 28, 29, 30, 31]);
    }

    #[test]
    fn stripe_inserts_hold_the_rangeset_fragmented() {
        // The workload's whole point: inserting single granules in this
        // order keeps the run list at ~stripes/2 runs for the first half
        // (every even stripe is its own run) before the odd stripes
        // bridge them back together.
        use pax_core::rangeset::RangeSet;
        let (n, stripe) = (1024u32, 8u32);
        let mut s = RangeSet::new();
        let mut peak = 0;
        for &g in &interleaved_stripes(n, stripe) {
            s.insert(GranuleRange::new(g, g + 1));
            peak = peak.max(s.run_count());
        }
        let stripes = n.div_ceil(stripe) as usize;
        assert!(
            peak >= stripes / 2,
            "peak fragmentation {peak} < {} runs",
            stripes / 2
        );
        assert_eq!(s.run_count(), 1, "odd stripes must bridge everything");
        assert_eq!(s.len(), u64::from(n));
    }

    #[test]
    fn stripe_churn_ranges_tile_the_index_space() {
        use pax_core::rangeset::RangeSet;
        for (n, s) in [(1024u32, 8u32), (100, 8), (17, 4), (5, 1)] {
            let ranges = stripe_churn_ranges(n, s);
            assert_eq!(ranges.len() as u32, n.div_ceil(s.max(1)), "n={n} s={s}");
            let mut set = RangeSet::new();
            let mut peak = 0;
            for &r in &ranges {
                set.insert(r);
                peak = peak.max(set.run_count());
            }
            assert_eq!(set.len(), u64::from(n), "must cover every granule");
            assert_eq!(set.run_count(), 1, "odd stripes must bridge everything");
            assert!(peak as u32 >= n.div_ceil(s.max(1)) / 2, "n={n} s={s}");
        }
    }

    #[test]
    fn workload_runs_and_overlaps_on_both_storage_backends() {
        // 500 granules on 8 processors leaves a 4-task final wave — the
        // rundown the strided releases overlap into.
        let program = FragmentationConfig {
            granules: 500,
            stripe: 8,
            cost: 20,
        }
        .build();
        let run = |storage| {
            let cfg = MachineConfig::new(8).with_run_storage(storage);
            let policy = OverlapPolicy::overlap()
                .with_sizing(TaskSizing::Fixed(1))
                .with_composite_build(CompositeBuild::Immediate);
            let mut sim = Simulation::new(cfg, policy).with_seed(7);
            sim.add_job(program.clone());
            sim.run().expect("fragmentation workload deadlocked")
        };
        let vec = run(RunStorageKind::VecRuns);
        assert_eq!(vec.phases.len(), 2);
        for p in &vec.phases {
            assert_eq!(p.stats.executed_granules, 500);
        }
        assert!(
            vec.phases[1].stats.overlap_granules > 0,
            "strided release must still overlap the rundown"
        );
        // result-identical on the chunked backend (the storage this
        // workload exists to stress)
        let chunked = run(RunStorageKind::chunked());
        assert_eq!(chunked.makespan, vec.makespan);
        assert_eq!(chunked.events, vec.events);
        assert_eq!(chunked.tasks_dispatched, vec.tasks_dispatched);
        assert_eq!(chunked.splits, vec.splits);
    }
}
