//! Declarative scenario files: heterogeneous machines and workloads
//! from JSON, with line-accurate diagnostics.
//!
//! A *scenario* is a single JSON document that describes a complete
//! experiment — the machine (processor count, speed classes,
//! secondary-resource pools, calendar, admission, faults, shards), the
//! workload (named linear programs with per-phase granules, cost
//! models, enablement mappings, and resource requirements), an optional
//! open-system arrival stream, and the overlap policy. The full format
//! is specified in `docs/SCENARIO_FORMAT.md`, and the cookbook files
//! under `examples/scenarios/` are each loaded by a test.
//!
//! The loader is deliberately serde-free: a small hand-rolled JSON
//! reader tracks the line of every value so that every error — a syntax
//! slip, a missing field, a wrong type, an unknown key, a reference to
//! an undeclared resource pool — surfaces as a typed [`ScenarioError`]
//! carrying the offending line and a dotted field path
//! (`machine.classes[1].count`), not a panic or a bare string.
//!
//! ```
//! use pax_workloads::scenario::Scenario;
//!
//! let text = r#"{
//!     "machine": { "processors": 4 },
//!     "workload": [ {
//!         "name": "sweep",
//!         "phases": [ { "name": "p0", "granules": 32,
//!                       "cost": { "dist": "constant", "ticks": 10 } } ]
//!     } ]
//! }"#;
//! let scenario = Scenario::parse(text).unwrap();
//! let report = scenario.build().unwrap().run().unwrap();
//! assert_eq!(report.phases.len(), 1);
//! ```

use pax_core::prelude::*;
use pax_sim::calendar::CalendarKind;
use pax_sim::faults::ScriptedFault;
use std::fmt;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// What went wrong while reading a scenario document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioErrorKind {
    /// The text is not well-formed JSON.
    Syntax(String),
    /// A required field is absent from an object.
    MissingField(String),
    /// A value has the wrong JSON type.
    WrongType {
        /// The type the field requires.
        expected: &'static str,
        /// The type actually found.
        found: &'static str,
    },
    /// An object contains a key the format does not define (typo guard).
    UnknownField(String),
    /// The value parses but is semantically invalid (bad enum tag, count
    /// mismatch, reference to an undeclared name, ...).
    Invalid(String),
    /// The scenario file could not be read from disk.
    Io(String),
}

/// A scenario loading error: the line it occurred on, the dotted path of
/// the offending field (`machine.classes[0].count`), and the kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line in the source text (0 when no location applies,
    /// e.g. I/O errors or validation of a hand-built [`Scenario`]).
    pub line: usize,
    /// Dotted path of the field, rooted at the document (`machine.processors`).
    pub path: String,
    /// The failure itself.
    pub kind: ScenarioErrorKind,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}: ", self.line, self.path)?;
        match &self.kind {
            ScenarioErrorKind::Syntax(msg) => write!(f, "syntax error: {msg}"),
            ScenarioErrorKind::MissingField(k) => write!(f, "missing required field '{k}'"),
            ScenarioErrorKind::WrongType { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ScenarioErrorKind::UnknownField(k) => write!(f, "unknown field '{k}'"),
            ScenarioErrorKind::Invalid(msg) => write!(f, "{msg}"),
            ScenarioErrorKind::Io(msg) => write!(f, "cannot read scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, path: impl Into<String>, kind: ScenarioErrorKind) -> ScenarioError {
    ScenarioError {
        line,
        path: path.into(),
        kind,
    }
}

// ---------------------------------------------------------------------------
// Minimal line-tracking JSON reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Node>),
    Obj(Vec<(String, Node)>),
}

#[derive(Debug, Clone)]
struct Node {
    line: usize,
    v: Json,
}

impl Node {
    fn type_name(&self) -> &'static str {
        match self.v {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn wrong(&self, path: &str, expected: &'static str) -> ScenarioError {
        err(
            self.line,
            path,
            ScenarioErrorKind::WrongType {
                expected,
                found: self.type_name(),
            },
        )
    }

    fn obj(&self, path: &str) -> Result<&[(String, Node)], ScenarioError> {
        match &self.v {
            Json::Obj(fields) => Ok(fields),
            _ => Err(self.wrong(path, "object")),
        }
    }

    fn arr(&self, path: &str) -> Result<&[Node], ScenarioError> {
        match &self.v {
            Json::Arr(items) => Ok(items),
            _ => Err(self.wrong(path, "array")),
        }
    }

    fn str_(&self, path: &str) -> Result<&str, ScenarioError> {
        match &self.v {
            Json::Str(s) => Ok(s),
            _ => Err(self.wrong(path, "string")),
        }
    }

    fn bool_(&self, path: &str) -> Result<bool, ScenarioError> {
        match &self.v {
            Json::Bool(b) => Ok(*b),
            _ => Err(self.wrong(path, "boolean")),
        }
    }

    fn f64_(&self, path: &str) -> Result<f64, ScenarioError> {
        match &self.v {
            Json::Num(n) => Ok(*n),
            _ => Err(self.wrong(path, "number")),
        }
    }

    fn u64_(&self, path: &str) -> Result<u64, ScenarioError> {
        let n = self.f64_(path)?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return Err(err(
                self.line,
                path,
                ScenarioErrorKind::Invalid(format!("expected a non-negative integer, found {n}")),
            ));
        }
        Ok(n as u64)
    }

    fn u32_(&self, path: &str) -> Result<u32, ScenarioError> {
        let n = self.u64_(path)?;
        u32::try_from(n).map_err(|_| {
            err(
                self.line,
                path,
                ScenarioErrorKind::Invalid(format!("{n} does not fit in 32 bits")),
            )
        })
    }

    fn usize_(&self, path: &str) -> Result<usize, ScenarioError> {
        Ok(self.u64_(path)? as usize)
    }
}

/// Field access over a parsed object with missing/unknown-key diagnostics.
struct Obj<'a> {
    line: usize,
    fields: &'a [(String, Node)],
}

impl<'a> Obj<'a> {
    fn of(node: &'a Node, path: &str) -> Result<Obj<'a>, ScenarioError> {
        Ok(Obj {
            line: node.line,
            fields: node.obj(path)?,
        })
    }

    fn get(&self, key: &str) -> Option<&'a Node> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn req(&self, key: &str, path: &str) -> Result<&'a Node, ScenarioError> {
        self.get(key).ok_or_else(|| {
            err(
                self.line,
                format!("{path}.{key}"),
                ScenarioErrorKind::MissingField(key.into()),
            )
        })
    }

    fn check_keys(&self, allowed: &[&str], path: &str) -> Result<(), ScenarioError> {
        for (k, v) in self.fields {
            if !allowed.contains(&k.as_str()) {
                return Err(err(
                    v.line,
                    format!("{path}.{k}"),
                    ScenarioErrorKind::UnknownField(k.clone()),
                ));
            }
        }
        Ok(())
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Reader<'a> {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn syntax(&self, msg: impl Into<String>) -> ScenarioError {
        err(self.line, "$", ScenarioErrorKind::Syntax(msg.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ScenarioError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.syntax(format!("expected '{}', found '{}'", b as char, got as char)))
            }
            None => Err(self.syntax(format!("expected '{}', found end of input", b as char))),
        }
    }

    fn parse_document(&mut self) -> Result<Node, ScenarioError> {
        let root = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.syntax("trailing characters after the document"));
        }
        Ok(root)
    }

    fn parse_value(&mut self) -> Result<Node, ScenarioError> {
        self.skip_ws();
        let line = self.line;
        match self.peek() {
            Some(b'{') => self.parse_obj(line),
            Some(b'[') => self.parse_arr(line),
            Some(b'"') => {
                let s = self.parse_string()?;
                Ok(Node {
                    line,
                    v: Json::Str(s),
                })
            }
            Some(b't') => self.parse_word("true", line, Json::Bool(true)),
            Some(b'f') => self.parse_word("false", line, Json::Bool(false)),
            Some(b'n') => self.parse_word("null", line, Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(line),
            Some(c) => Err(self.syntax(format!("unexpected character '{}'", c as char))),
            None => Err(self.syntax("unexpected end of input")),
        }
    }

    fn parse_word(&mut self, word: &str, line: usize, v: Json) -> Result<Node, ScenarioError> {
        for &b in word.as_bytes() {
            self.expect(b)?;
        }
        Ok(Node { line, v })
    }

    fn parse_number(&mut self, line: usize) -> Result<Node, ScenarioError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.bump();
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| self.syntax(format!("malformed number '{text}'")))?;
        Ok(Node {
            line,
            v: Json::Num(n),
        })
    }

    fn parse_string(&mut self) -> Result<String, ScenarioError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.syntax("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or_else(|| self.syntax("malformed \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.syntax("\\u escape is not a scalar value"))?,
                        );
                    }
                    _ => return Err(self.syntax("unknown escape sequence")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.syntax("unescaped control character in string"))
                }
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-assemble the UTF-8 sequence the byte starts.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.syntax("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_obj(&mut self, line: usize) -> Result<Node, ScenarioError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Node {
                line,
                v: Json::Obj(fields),
            });
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => {
                    return Ok(Node {
                        line,
                        v: Json::Obj(fields),
                    })
                }
                _ => return Err(self.syntax("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_arr(&mut self, line: usize) -> Result<Node, ScenarioError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Node {
                line,
                v: Json::Arr(items),
            });
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => {
                    return Ok(Node {
                        line,
                        v: Json::Arr(items),
                    })
                }
                _ => return Err(self.syntax("expected ',' or ']' in array")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The scenario document model
// ---------------------------------------------------------------------------

/// A parsed scenario: the declarative content of one scenario file.
///
/// Obtain one with [`Scenario::parse`] (or [`Scenario::load_path`]), turn
/// it into a runnable [`Simulation`] with [`Scenario::build`], or write
/// it back out with [`Scenario::to_json`] — `parse(to_json(s)) == s` for
/// every valid scenario (the round-trip property the loader tests hold).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (optional in the file, default `""`).
    pub name: String,
    /// Master seed for every derived RNG stream (default 0).
    pub seed: u64,
    /// The machine block.
    pub machine: MachineDoc,
    /// Named programs, each added `count` times at `t = 0`.
    pub workload: Vec<ProgramDoc>,
    /// Optional open-system arrival stream of one named program.
    pub stream: Option<StreamDoc>,
    /// Overlap policy selection.
    pub policy: PolicyDoc,
}

/// The `machine` block of a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDoc {
    /// Worker processor count.
    pub processors: usize,
    /// `true` selects the idealized machine (zero management costs);
    /// `false` (default) the costed UNIVAC-style machine.
    pub ideal: bool,
    /// Executive service lanes (`None` keeps the config default).
    pub lanes: Option<usize>,
    /// Future-event calendar implementation.
    pub calendar: CalendarDoc,
    /// Machine-group shard count (`None` keeps single).
    pub shards: Option<usize>,
    /// Heterogeneous speed classes (empty = homogeneous machine).
    pub classes: Vec<ClassDoc>,
    /// Secondary-resource token pools (empty = processors only).
    pub resources: Vec<PoolDoc>,
    /// Admission policy for arrivals.
    pub admission: AdmissionDoc,
    /// Optional fault-injection plan.
    pub faults: Option<FaultDoc>,
}

/// Calendar selection (`machine.calendar`): a bare string (`"heap"`,
/// `"wheel"`, `"hier"`, `"auto"`) for the default geometries, or an
/// object `{ "kind": "hier", "slots": …, "bucket_ticks": …, "levels": … }`
/// to tune the hierarchical wheel's rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalendarDoc {
    /// The binary-heap event list (default).
    #[default]
    Heap,
    /// The bucketed time wheel with default geometry.
    Wheel,
    /// The hierarchical timer wheel; `None` fields keep the crate
    /// defaults (`DEFAULT_HIER_SLOTS` slots, 1-tick level-0 buckets,
    /// `DEFAULT_HIER_LEVELS` rings).
    Hier {
        /// Slots per ring (`None` keeps the default).
        slots: Option<usize>,
        /// Ticks per level-0 bucket (`None` keeps the default).
        bucket_ticks: Option<u64>,
        /// Ring count (`None` keeps the default; 0 is rejected at
        /// config validation).
        levels: Option<usize>,
    },
    /// The self-tuning calendar: starts on the heap and re-picks the
    /// backend from the observed event-spacing distribution.
    Auto,
}

/// One `machine.classes[i]` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDoc {
    /// Class name (report label).
    pub name: String,
    /// Workers in the class.
    pub count: usize,
    /// Speed relative to nominal, percent (100 = nominal, 200 = double).
    pub speed_percent: u32,
    /// Queue-segment affinity.
    pub affinity: AffinityDoc,
}

/// Queue affinity of a processor class (`machine.classes[i].affinity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AffinityDoc {
    /// Serve either queue segment (default).
    #[default]
    Any,
    /// Serve only elevated conflict-released work.
    ElevatedOnly,
    /// Serve only normal phase work.
    NormalOnly,
}

/// One `machine.resources[i]` entry: a named token pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolDoc {
    /// Pool name, referenced by phase `requires` lists.
    pub name: String,
    /// Concurrent tokens available.
    pub tokens: u32,
}

/// Admission policy (`machine.admission`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionDoc {
    /// Admit everything immediately (default).
    #[default]
    AcceptAll,
    /// Defer arrivals beyond the in-flight bound.
    BoundedDefer(usize),
    /// Reject arrivals beyond the in-flight bound.
    Shed(usize),
}

/// Fault-injection plan (`machine.faults`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultDoc {
    /// Crash/repair generation model.
    pub model: FaultModelDoc,
    /// Disposition of work lost to crashes.
    pub retry: RetryDoc,
}

/// Crash/repair model (`machine.faults.model`).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultModelDoc {
    /// Independent up/down spans per processor.
    Random {
        /// Distribution of up spans.
        time_to_failure: DistDoc,
        /// Distribution of down spans.
        time_to_repair: DistDoc,
    },
    /// Explicit scripted crash events.
    Scripted(Vec<FaultEventDoc>),
}

/// One scripted crash (`machine.faults.events[i]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEventDoc {
    /// Worker processor index.
    pub processor: usize,
    /// Crash instant in local ticks.
    pub crash_at: u64,
    /// Down span; `None` is permanent.
    pub repair_after: Option<u64>,
}

/// Retry policy for lost work (`machine.faults.retry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryDoc {
    /// Reissue lost ranges at the queue front, unbounded (default).
    #[default]
    ReissueFront,
    /// Abort the job at the first lost range.
    Abandon,
    /// Reissue up to the given number of attempts, then abort.
    Bounded(u32),
}

/// A duration distribution (phase costs, fault spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistDoc {
    /// Always zero ticks.
    Zero,
    /// Every sample is exactly this many ticks.
    Constant(u64),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Smallest sample.
        lo: u64,
        /// Largest sample.
        hi: u64,
    },
    /// Exponential with this mean, truncated to ≥ 1 tick.
    Exponential(u64),
}

/// One `workload[i]` entry: a named linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramDoc {
    /// Program name (stream references resolve against it).
    pub name: String,
    /// Copies added at `t = 0` (default 1; 0 = stream-only shape).
    pub count: usize,
    /// The phase chain, in execution order.
    pub phases: Vec<PhaseDoc>,
}

/// One phase of a scenario program (`workload[i].phases[j]`).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDoc {
    /// Phase name.
    pub name: String,
    /// Granules dispatched per execution.
    pub granules: u32,
    /// Per-granule cost distribution.
    pub cost: DistDoc,
    /// Census line weight (default 0).
    pub lines: u32,
    /// Secondary-resource pools a task must hold one token from.
    pub requires: Vec<String>,
    /// Enablement mapping into the *next* phase (ignored on the last).
    pub mapping: MappingDoc,
}

/// Enablement mapping between consecutive phases
/// (`workload[i].phases[j].mapping`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingDoc {
    /// Serial actions intervene; no overlap possible (default).
    #[default]
    Null,
    /// Granule `i` enables successor granule `i` (equal counts).
    Identity,
    /// Any completion enables every successor granule.
    Universal,
}

/// The `stream` block: an open-system arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDoc {
    /// Name of the workload program to instantiate.
    pub program: String,
    /// Jobs to admit.
    pub count: usize,
    /// The arrival process.
    pub arrivals: ArrivalDoc,
}

/// Arrival process of a stream (`stream.arrivals`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalDoc {
    /// Exponential inter-arrival gaps with this mean.
    Poisson {
        /// Mean gap in ticks.
        mean_gap: u64,
    },
    /// Explicit admission instants.
    Trace(Vec<u64>),
}

/// The `policy` block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyDoc {
    /// `true` enables phase overlap (the paper's treatment machine).
    pub overlap: bool,
    /// Optional task-sizing override.
    pub sizing: Option<SizingDoc>,
}

/// Task sizing override (`policy.sizing`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizingDoc {
    /// Fixed granules per task.
    Fixed(u32),
    /// Size tasks for this many tasks per processor.
    PerProcessor(f64),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

impl Scenario {
    /// Parse and validate a scenario document.
    ///
    /// Validation covers both shape (types, required fields, unknown
    /// keys) and semantics (machine-config consistency, resource-pool
    /// references, identity-mapping granule counts, stream program
    /// names), each reported at the offending line.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let root = Reader::new(text).parse_document()?;
        let doc = Obj::of(&root, "$")?;
        doc.check_keys(
            &["name", "seed", "machine", "workload", "stream", "policy"],
            "$",
        )?;
        let name = match doc.get("name") {
            Some(n) => n.str_("name")?.to_string(),
            None => String::new(),
        };
        let seed = match doc.get("seed") {
            Some(n) => n.u64_("seed")?,
            None => 0,
        };
        let machine_node = doc.req("machine", "$")?;
        let machine = parse_machine(machine_node)?;
        let workload_node = doc.req("workload", "$")?;
        let items = workload_node.arr("workload")?;
        if items.is_empty() {
            return Err(err(
                workload_node.line,
                "workload",
                ScenarioErrorKind::Invalid("workload must declare at least one program".into()),
            ));
        }
        let mut workload = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            workload.push(parse_program(item, &format!("workload[{i}]"))?);
        }
        let stream = match doc.get("stream") {
            Some(n) => Some(parse_stream(n)?),
            None => None,
        };
        let policy = match doc.get("policy") {
            Some(n) => parse_policy(n)?,
            None => PolicyDoc::default(),
        };
        let scenario = Scenario {
            name,
            seed,
            machine,
            workload,
            stream,
            policy,
        };
        scenario.validate_semantics(&root, machine_node)?;
        Ok(scenario)
    }

    /// Read and parse a scenario file from disk.
    pub fn load_path(path: impl AsRef<std::path::Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            err(
                0,
                path.display().to_string(),
                ScenarioErrorKind::Io(e.to_string()),
            )
        })?;
        Scenario::parse(&text)
    }

    /// Cross-reference checks that need the whole document, with line
    /// diagnostics recovered from the parse tree.
    fn validate_semantics(&self, root: &Node, machine_node: &Node) -> Result<(), ScenarioError> {
        // Machine-config consistency (class counts, pool names, ...).
        self.machine_config().map_err(|mut e| {
            if e.line == 0 {
                e.line = machine_node.line;
            }
            e
        })?;
        let doc = Obj::of(root, "$").expect("validated");
        // Duplicate program names make stream references ambiguous.
        let workload_items = doc
            .req("workload", "$")
            .expect("validated")
            .arr("workload")
            .expect("validated");
        for (i, p) in self.workload.iter().enumerate() {
            if self.workload[..i].iter().any(|q| q.name == p.name) {
                return Err(err(
                    workload_items[i].line,
                    format!("workload[{i}].name"),
                    ScenarioErrorKind::Invalid(format!("duplicate program name '{}'", p.name)),
                ));
            }
            let phases = Obj::of(&workload_items[i], "")
                .expect("validated")
                .req("phases", "")
                .expect("validated")
                .arr("")
                .expect("validated");
            for (j, ph) in p.phases.iter().enumerate() {
                let ph_path = format!("workload[{i}].phases[{j}]");
                // Identity mappings need equal granule counts.
                if ph.mapping == MappingDoc::Identity {
                    match p.phases.get(j + 1) {
                        Some(next) if next.granules != ph.granules => {
                            return Err(err(
                                phases[j].line,
                                format!("{ph_path}.mapping"),
                                ScenarioErrorKind::Invalid(format!(
                                    "identity mapping requires equal granule counts \
                                     ({} vs {} in '{}')",
                                    ph.granules, next.granules, next.name
                                )),
                            ))
                        }
                        _ => {}
                    }
                }
                // Resource references must name declared pools.
                for (r, req) in ph.requires.iter().enumerate() {
                    if !self.machine.resources.iter().any(|p| &p.name == req) {
                        return Err(err(
                            phases[j].line,
                            format!("{ph_path}.requires[{r}]"),
                            ScenarioErrorKind::Invalid(format!(
                                "phase requires undeclared resource pool '{req}'"
                            )),
                        ));
                    }
                }
            }
            // The builder itself enforces the rest (non-empty chains...).
            build_program(p).map_err(|msg| {
                err(
                    workload_items[i].line,
                    format!("workload[{i}]"),
                    ScenarioErrorKind::Invalid(msg),
                )
            })?;
        }
        if let Some(stream) = &self.stream {
            if !self.workload.iter().any(|p| p.name == stream.program) {
                let node = doc.req("stream", "$").expect("validated");
                return Err(err(
                    node.line,
                    "stream.program",
                    ScenarioErrorKind::Invalid(format!(
                        "stream references unknown program '{}'",
                        stream.program
                    )),
                ));
            }
        }
        Ok(())
    }
}

fn parse_machine(node: &Node) -> Result<MachineDoc, ScenarioError> {
    let path = "machine";
    let m = Obj::of(node, path)?;
    m.check_keys(
        &[
            "processors",
            "ideal",
            "lanes",
            "calendar",
            "shards",
            "classes",
            "resources",
            "admission",
            "faults",
        ],
        path,
    )?;
    let processors = m.req("processors", path)?.usize_("machine.processors")?;
    let ideal = match m.get("ideal") {
        Some(n) => n.bool_("machine.ideal")?,
        None => false,
    };
    let lanes = match m.get("lanes") {
        Some(n) => Some(n.usize_("machine.lanes")?),
        None => None,
    };
    let calendar = match m.get("calendar") {
        Some(n) => parse_calendar(n)?,
        None => CalendarDoc::Heap,
    };
    let shards = match m.get("shards") {
        Some(n) => Some(n.usize_("machine.shards")?),
        None => None,
    };
    let mut classes = Vec::new();
    if let Some(n) = m.get("classes") {
        for (i, c) in n.arr("machine.classes")?.iter().enumerate() {
            classes.push(parse_class(c, &format!("machine.classes[{i}]"))?);
        }
    }
    let mut resources = Vec::new();
    if let Some(n) = m.get("resources") {
        for (i, p) in n.arr("machine.resources")?.iter().enumerate() {
            resources.push(parse_pool(p, &format!("machine.resources[{i}]"))?);
        }
    }
    let admission = match m.get("admission") {
        Some(n) => parse_admission(n)?,
        None => AdmissionDoc::AcceptAll,
    };
    let faults = match m.get("faults") {
        Some(n) => Some(parse_faults(n)?),
        None => None,
    };
    Ok(MachineDoc {
        processors,
        ideal,
        lanes,
        calendar,
        shards,
        classes,
        resources,
        admission,
        faults,
    })
}

fn parse_class(node: &Node, path: &str) -> Result<ClassDoc, ScenarioError> {
    let c = Obj::of(node, path)?;
    c.check_keys(&["name", "count", "speed_percent", "affinity"], path)?;
    let name = c.req("name", path)?.str_(&format!("{path}.name"))?.into();
    let count = c.req("count", path)?.usize_(&format!("{path}.count"))?;
    let speed_percent = match c.get("speed_percent") {
        Some(n) => n.u32_(&format!("{path}.speed_percent"))?,
        None => 100,
    };
    let affinity = match c.get("affinity") {
        Some(n) => {
            let p = format!("{path}.affinity");
            match n.str_(&p)? {
                "any" => AffinityDoc::Any,
                "elevated_only" => AffinityDoc::ElevatedOnly,
                "normal_only" => AffinityDoc::NormalOnly,
                other => {
                    return Err(err(
                        n.line,
                        p,
                        ScenarioErrorKind::Invalid(format!(
                            "unknown affinity '{other}' \
                             (expected 'any', 'elevated_only', or 'normal_only')"
                        )),
                    ))
                }
            }
        }
        None => AffinityDoc::Any,
    };
    Ok(ClassDoc {
        name,
        count,
        speed_percent,
        affinity,
    })
}

fn parse_pool(node: &Node, path: &str) -> Result<PoolDoc, ScenarioError> {
    let p = Obj::of(node, path)?;
    p.check_keys(&["name", "tokens"], path)?;
    Ok(PoolDoc {
        name: p.req("name", path)?.str_(&format!("{path}.name"))?.into(),
        tokens: p.req("tokens", path)?.u32_(&format!("{path}.tokens"))?,
    })
}

fn parse_calendar(node: &Node) -> Result<CalendarDoc, ScenarioError> {
    let path = "machine.calendar";
    let named = |name: &str, line: usize| match name {
        "heap" => Ok(CalendarDoc::Heap),
        "wheel" => Ok(CalendarDoc::Wheel),
        "hier" => Ok(CalendarDoc::Hier {
            slots: None,
            bucket_ticks: None,
            levels: None,
        }),
        "auto" => Ok(CalendarDoc::Auto),
        other => Err(err(
            line,
            path,
            ScenarioErrorKind::Invalid(format!(
                "unknown calendar '{other}' (expected 'heap', 'wheel', 'hier', or 'auto')"
            )),
        )),
    };
    if matches!(node.v, Json::Str(_)) {
        return named(node.str_(path)?, node.line);
    }
    let c = Obj::of(node, path)?;
    c.check_keys(&["kind", "slots", "bucket_ticks", "levels"], path)?;
    let kind_node = c.req("kind", path)?;
    let kind = named(kind_node.str_(&format!("{path}.kind"))?, kind_node.line)?;
    let geometry = ["slots", "bucket_ticks", "levels"]
        .iter()
        .find_map(|k| c.get(k).map(|n| (*k, n.line)));
    match kind {
        CalendarDoc::Hier { .. } => Ok(CalendarDoc::Hier {
            slots: match c.get("slots") {
                Some(n) => Some(n.usize_(&format!("{path}.slots"))?),
                None => None,
            },
            bucket_ticks: match c.get("bucket_ticks") {
                Some(n) => Some(n.u64_(&format!("{path}.bucket_ticks"))?),
                None => None,
            },
            levels: match c.get("levels") {
                Some(n) => Some(n.usize_(&format!("{path}.levels"))?),
                None => None,
            },
        }),
        flat => match geometry {
            Some((key, line)) => Err(err(
                line,
                format!("{path}.{key}"),
                ScenarioErrorKind::Invalid(format!("'{key}' applies only to calendar kind 'hier'")),
            )),
            None => Ok(flat),
        },
    }
}

fn parse_admission(node: &Node) -> Result<AdmissionDoc, ScenarioError> {
    let path = "machine.admission";
    let a = Obj::of(node, path)?;
    a.check_keys(&["policy", "max_in_flight"], path)?;
    let policy_node = a.req("policy", path)?;
    let policy = policy_node.str_(&format!("{path}.policy"))?;
    let bound = || -> Result<usize, ScenarioError> {
        a.req("max_in_flight", path)?
            .usize_(&format!("{path}.max_in_flight"))
    };
    match policy {
        "accept_all" => Ok(AdmissionDoc::AcceptAll),
        "bounded_defer" => Ok(AdmissionDoc::BoundedDefer(bound()?)),
        "shed" => Ok(AdmissionDoc::Shed(bound()?)),
        other => Err(err(
            policy_node.line,
            format!("{path}.policy"),
            ScenarioErrorKind::Invalid(format!(
                "unknown admission policy '{other}' \
                 (expected 'accept_all', 'bounded_defer', or 'shed')"
            )),
        )),
    }
}

fn parse_faults(node: &Node) -> Result<FaultDoc, ScenarioError> {
    let path = "machine.faults";
    let f = Obj::of(node, path)?;
    f.check_keys(
        &[
            "model",
            "time_to_failure",
            "time_to_repair",
            "events",
            "retry",
        ],
        path,
    )?;
    let model_node = f.req("model", path)?;
    let model = match model_node.str_(&format!("{path}.model"))? {
        "random" => FaultModelDoc::Random {
            time_to_failure: parse_dist(
                f.req("time_to_failure", path)?,
                &format!("{path}.time_to_failure"),
            )?,
            time_to_repair: parse_dist(
                f.req("time_to_repair", path)?,
                &format!("{path}.time_to_repair"),
            )?,
        },
        "scripted" => {
            let events_node = f.req("events", path)?;
            let mut events = Vec::new();
            for (i, e) in events_node
                .arr(&format!("{path}.events"))?
                .iter()
                .enumerate()
            {
                let p = format!("{path}.events[{i}]");
                let o = Obj::of(e, &p)?;
                o.check_keys(&["processor", "crash_at", "repair_after"], &p)?;
                let repair_after = match o.get("repair_after") {
                    None => None,
                    Some(n) if matches!(n.v, Json::Null) => None,
                    Some(n) => Some(n.u64_(&format!("{p}.repair_after"))?),
                };
                events.push(FaultEventDoc {
                    processor: o.req("processor", &p)?.usize_(&format!("{p}.processor"))?,
                    crash_at: o.req("crash_at", &p)?.u64_(&format!("{p}.crash_at"))?,
                    repair_after,
                });
            }
            FaultModelDoc::Scripted(events)
        }
        other => {
            return Err(err(
                model_node.line,
                format!("{path}.model"),
                ScenarioErrorKind::Invalid(format!(
                    "unknown fault model '{other}' (expected 'random' or 'scripted')"
                )),
            ))
        }
    };
    let retry = match f.get("retry") {
        None => RetryDoc::ReissueFront,
        Some(n) => {
            let p = format!("{path}.retry");
            match &n.v {
                Json::Str(s) => match s.as_str() {
                    "reissue_front" => RetryDoc::ReissueFront,
                    "abandon" => RetryDoc::Abandon,
                    other => {
                        return Err(err(
                            n.line,
                            p,
                            ScenarioErrorKind::Invalid(format!(
                                "unknown retry policy '{other}' (expected 'reissue_front', \
                                 'abandon', or {{\"bounded\": N}})"
                            )),
                        ))
                    }
                },
                Json::Obj(_) => {
                    let o = Obj::of(n, &p)?;
                    o.check_keys(&["bounded"], &p)?;
                    RetryDoc::Bounded(o.req("bounded", &p)?.u32_(&format!("{p}.bounded"))?)
                }
                _ => return Err(n.wrong(&p, "string or object")),
            }
        }
    };
    Ok(FaultDoc { model, retry })
}

fn parse_dist(node: &Node, path: &str) -> Result<DistDoc, ScenarioError> {
    let d = Obj::of(node, path)?;
    d.check_keys(&["dist", "ticks", "lo", "hi", "mean"], path)?;
    let tag_node = d.req("dist", path)?;
    match tag_node.str_(&format!("{path}.dist"))? {
        "zero" => Ok(DistDoc::Zero),
        "constant" => Ok(DistDoc::Constant(
            d.req("ticks", path)?.u64_(&format!("{path}.ticks"))?,
        )),
        "uniform" => Ok(DistDoc::Uniform {
            lo: d.req("lo", path)?.u64_(&format!("{path}.lo"))?,
            hi: d.req("hi", path)?.u64_(&format!("{path}.hi"))?,
        }),
        "exponential" => Ok(DistDoc::Exponential(
            d.req("mean", path)?.u64_(&format!("{path}.mean"))?,
        )),
        other => Err(err(
            tag_node.line,
            format!("{path}.dist"),
            ScenarioErrorKind::Invalid(format!(
                "unknown distribution '{other}' \
                 (expected 'zero', 'constant', 'uniform', or 'exponential')"
            )),
        )),
    }
}

fn parse_program(node: &Node, path: &str) -> Result<ProgramDoc, ScenarioError> {
    let p = Obj::of(node, path)?;
    p.check_keys(&["name", "count", "phases"], path)?;
    let name = p.req("name", path)?.str_(&format!("{path}.name"))?.into();
    let count = match p.get("count") {
        Some(n) => n.usize_(&format!("{path}.count"))?,
        None => 1,
    };
    let phases_node = p.req("phases", path)?;
    let items = phases_node.arr(&format!("{path}.phases"))?;
    if items.is_empty() {
        return Err(err(
            phases_node.line,
            format!("{path}.phases"),
            ScenarioErrorKind::Invalid("a program needs at least one phase".into()),
        ));
    }
    let mut phases = Vec::with_capacity(items.len());
    for (j, item) in items.iter().enumerate() {
        phases.push(parse_phase(item, &format!("{path}.phases[{j}]"))?);
    }
    Ok(ProgramDoc {
        name,
        count,
        phases,
    })
}

fn parse_phase(node: &Node, path: &str) -> Result<PhaseDoc, ScenarioError> {
    let p = Obj::of(node, path)?;
    p.check_keys(
        &["name", "granules", "cost", "lines", "requires", "mapping"],
        path,
    )?;
    let name = p.req("name", path)?.str_(&format!("{path}.name"))?.into();
    let granules = p.req("granules", path)?.u32_(&format!("{path}.granules"))?;
    let cost = parse_dist(p.req("cost", path)?, &format!("{path}.cost"))?;
    let lines = match p.get("lines") {
        Some(n) => n.u32_(&format!("{path}.lines"))?,
        None => 0,
    };
    let mut requires = Vec::new();
    if let Some(n) = p.get("requires") {
        for (r, item) in n.arr(&format!("{path}.requires"))?.iter().enumerate() {
            requires.push(item.str_(&format!("{path}.requires[{r}]"))?.to_string());
        }
    }
    let mapping = match p.get("mapping") {
        Some(n) => {
            let mp = format!("{path}.mapping");
            match n.str_(&mp)? {
                "null" => MappingDoc::Null,
                "identity" => MappingDoc::Identity,
                "universal" => MappingDoc::Universal,
                other => {
                    return Err(err(
                        n.line,
                        mp,
                        ScenarioErrorKind::Invalid(format!(
                            "unknown mapping '{other}' \
                             (expected 'null', 'identity', or 'universal')"
                        )),
                    ))
                }
            }
        }
        None => MappingDoc::Null,
    };
    Ok(PhaseDoc {
        name,
        granules,
        cost,
        lines,
        requires,
        mapping,
    })
}

fn parse_stream(node: &Node) -> Result<StreamDoc, ScenarioError> {
    let path = "stream";
    let s = Obj::of(node, path)?;
    s.check_keys(&["program", "count", "arrivals"], path)?;
    let program = s.req("program", path)?.str_("stream.program")?.to_string();
    let count = s.req("count", path)?.usize_("stream.count")?;
    let arrivals_node = s.req("arrivals", path)?;
    let a = Obj::of(arrivals_node, "stream.arrivals")?;
    a.check_keys(&["process", "mean_gap", "instants"], "stream.arrivals")?;
    let process_node = a.req("process", "stream.arrivals")?;
    let arrivals = match process_node.str_("stream.arrivals.process")? {
        "poisson" => ArrivalDoc::Poisson {
            mean_gap: a
                .req("mean_gap", "stream.arrivals")?
                .u64_("stream.arrivals.mean_gap")?,
        },
        "trace" => {
            let instants_node = a.req("instants", "stream.arrivals")?;
            let mut instants = Vec::new();
            for (i, t) in instants_node
                .arr("stream.arrivals.instants")?
                .iter()
                .enumerate()
            {
                instants.push(t.u64_(&format!("stream.arrivals.instants[{i}]"))?);
            }
            ArrivalDoc::Trace(instants)
        }
        other => {
            return Err(err(
                process_node.line,
                "stream.arrivals.process",
                ScenarioErrorKind::Invalid(format!(
                    "unknown arrival process '{other}' (expected 'poisson' or 'trace')"
                )),
            ))
        }
    };
    Ok(StreamDoc {
        program,
        count,
        arrivals,
    })
}

fn parse_policy(node: &Node) -> Result<PolicyDoc, ScenarioError> {
    let path = "policy";
    let p = Obj::of(node, path)?;
    p.check_keys(&["overlap", "sizing"], path)?;
    let overlap = match p.get("overlap") {
        Some(n) => n.bool_("policy.overlap")?,
        None => false,
    };
    let sizing = match p.get("sizing") {
        None => None,
        Some(n) => {
            let sp = "policy.sizing";
            let s = Obj::of(n, sp)?;
            s.check_keys(&["fixed", "per_processor"], sp)?;
            match (s.get("fixed"), s.get("per_processor")) {
                (Some(f), None) => Some(SizingDoc::Fixed(f.u32_("policy.sizing.fixed")?)),
                (None, Some(r)) => Some(SizingDoc::PerProcessor(
                    r.f64_("policy.sizing.per_processor")?,
                )),
                _ => {
                    return Err(err(
                        n.line,
                        sp,
                        ScenarioErrorKind::Invalid(
                            "sizing takes exactly one of 'fixed' or 'per_processor'".into(),
                        ),
                    ))
                }
            }
        }
    };
    Ok(PolicyDoc { overlap, sizing })
}

// ---------------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------------

impl DistDoc {
    fn to_dist(self) -> DurationDist {
        match self {
            DistDoc::Zero => DurationDist::Zero,
            DistDoc::Constant(t) => DurationDist::constant(t),
            DistDoc::Uniform { lo, hi } => DurationDist::Uniform {
                lo: SimDuration(lo),
                hi: SimDuration(hi),
            },
            DistDoc::Exponential(mean) => DurationDist::exponential(mean),
        }
    }
}

impl MachineDoc {
    /// Translate the machine block into a (not yet validated)
    /// [`MachineConfig`].
    pub fn to_config(&self) -> MachineConfig {
        let mut cfg = if self.ideal {
            MachineConfig::ideal(self.processors)
        } else {
            MachineConfig::new(self.processors)
        };
        if let Some(lanes) = self.lanes {
            cfg = cfg.with_executive_lanes(lanes);
        }
        cfg = match self.calendar {
            CalendarDoc::Heap => cfg,
            CalendarDoc::Wheel => cfg.with_calendar(CalendarKind::time_wheel()),
            CalendarDoc::Hier {
                slots,
                bucket_ticks,
                levels,
            } => cfg.with_calendar(CalendarKind::HierWheel {
                slots: slots.unwrap_or(pax_sim::calendar::DEFAULT_HIER_SLOTS),
                bucket_ticks: bucket_ticks.unwrap_or(1),
                levels: levels.unwrap_or(pax_sim::calendar::DEFAULT_HIER_LEVELS),
            }),
            CalendarDoc::Auto => cfg.with_calendar(CalendarKind::Auto),
        };
        if let Some(shards) = self.shards {
            cfg = cfg.with_shards(ShardPolicy::new(shards));
        }
        if !self.classes.is_empty() {
            cfg = cfg.with_classes(
                self.classes
                    .iter()
                    .map(|c| {
                        ProcessorClass::new(c.name.clone(), c.count, c.speed_percent).with_affinity(
                            match c.affinity {
                                AffinityDoc::Any => ClassAffinity::Any,
                                AffinityDoc::ElevatedOnly => ClassAffinity::ElevatedOnly,
                                AffinityDoc::NormalOnly => ClassAffinity::NormalOnly,
                            },
                        )
                    })
                    .collect(),
            );
        }
        if !self.resources.is_empty() {
            cfg = cfg.with_resources(
                self.resources
                    .iter()
                    .map(|p| ResourcePool::new(p.name.clone(), p.tokens))
                    .collect(),
            );
        }
        cfg = cfg.with_admission(match self.admission {
            AdmissionDoc::AcceptAll => AdmissionPolicy::AcceptAll,
            AdmissionDoc::BoundedDefer(max_in_flight) => {
                AdmissionPolicy::BoundedDefer { max_in_flight }
            }
            AdmissionDoc::Shed(max_in_flight) => AdmissionPolicy::Shed { max_in_flight },
        });
        if let Some(faults) = &self.faults {
            let model = match &faults.model {
                FaultModelDoc::Random {
                    time_to_failure,
                    time_to_repair,
                } => FaultModel::Random {
                    time_to_failure: time_to_failure.to_dist(),
                    time_to_repair: time_to_repair.to_dist(),
                },
                FaultModelDoc::Scripted(events) => FaultModel::Scripted(
                    events
                        .iter()
                        .map(|e| ScriptedFault {
                            processor: e.processor,
                            crash_at: e.crash_at,
                            repair_after: e.repair_after,
                        })
                        .collect(),
                ),
            };
            let retry = match faults.retry {
                RetryDoc::ReissueFront => RetryPolicy::ReissueFront,
                RetryDoc::Abandon => RetryPolicy::Abandon,
                RetryDoc::Bounded(max_attempts) => RetryPolicy::Bounded { max_attempts },
            };
            cfg = cfg.with_faults(FaultPlan { model, retry });
        }
        cfg
    }
}

fn build_program(doc: &ProgramDoc) -> Result<Program, String> {
    let mut b = ProgramBuilder::new();
    let ids: Vec<PhaseId> = doc
        .phases
        .iter()
        .map(|ph| {
            b.phase(
                PhaseDef::new(
                    ph.name.clone(),
                    ph.granules,
                    CostModel::new(ph.cost.to_dist()),
                )
                .with_lines(ph.lines)
                .with_requires(ph.requires.clone()),
            )
        })
        .collect();
    for (j, &id) in ids.iter().enumerate() {
        match (doc.phases[j].mapping, ids.get(j + 1)) {
            (mapping, Some(&next)) => {
                b.dispatch_enable(
                    id,
                    vec![EnableSpec {
                        successor: next,
                        mapping: match mapping {
                            MappingDoc::Null => EnablementMapping::Null,
                            MappingDoc::Identity => EnablementMapping::Identity,
                            MappingDoc::Universal => EnablementMapping::Universal,
                        },
                    }],
                );
            }
            (_, None) => {
                b.dispatch(id);
            }
        }
    }
    b.build()
}

impl Scenario {
    /// The validated machine configuration of the scenario.
    pub fn machine_config(&self) -> Result<MachineConfig, ScenarioError> {
        let cfg = self.machine.to_config();
        cfg.validate()
            .map_err(|e| err(0, "machine", ScenarioErrorKind::Invalid(e.to_string())))?;
        Ok(cfg)
    }

    /// Assemble the runnable [`Simulation`]: the machine, every workload
    /// program `count` times at `t = 0`, and the arrival stream if any.
    pub fn build(&self) -> Result<Simulation, ScenarioError> {
        let cfg = self.machine_config()?;
        let mut policy = if self.policy.overlap {
            OverlapPolicy::overlap()
        } else {
            OverlapPolicy::strict()
        };
        if let Some(sizing) = self.policy.sizing {
            policy = policy.with_sizing(match sizing {
                SizingDoc::Fixed(n) => TaskSizing::Fixed(n),
                SizingDoc::PerProcessor(r) => TaskSizing::TasksPerProcessor(r),
            });
        }
        let mut sim = Simulation::new(cfg, policy).with_seed(self.seed);
        for (i, doc) in self.workload.iter().enumerate() {
            let program = build_program(doc)
                .map_err(|msg| err(0, format!("workload[{i}]"), ScenarioErrorKind::Invalid(msg)))?;
            for _ in 0..doc.count {
                sim.add_job(program.clone());
            }
        }
        if let Some(stream) = &self.stream {
            let (i, doc) = self
                .workload
                .iter()
                .enumerate()
                .find(|(_, p)| p.name == stream.program)
                .ok_or_else(|| {
                    err(
                        0,
                        "stream.program",
                        ScenarioErrorKind::Invalid(format!(
                            "stream references unknown program '{}'",
                            stream.program
                        )),
                    )
                })?;
            let program = build_program(doc)
                .map_err(|msg| err(0, format!("workload[{i}]"), ScenarioErrorKind::Invalid(msg)))?;
            let process = match &stream.arrivals {
                ArrivalDoc::Poisson { mean_gap } => ArrivalProcess::poisson(*mean_gap),
                ArrivalDoc::Trace(instants) => {
                    ArrivalProcess::trace(instants.iter().map(|&t| SimTime(t)).collect())
                }
            };
            sim.add_job_stream(program, process, stream.count);
        }
        Ok(sim)
    }
}

// ---------------------------------------------------------------------------
// Emitting
// ---------------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit_dist(out: &mut String, d: &DistDoc) {
    match d {
        DistDoc::Zero => out.push_str(r#"{ "dist": "zero" }"#),
        DistDoc::Constant(t) => out.push_str(&format!(r#"{{ "dist": "constant", "ticks": {t} }}"#)),
        DistDoc::Uniform { lo, hi } => out.push_str(&format!(
            r#"{{ "dist": "uniform", "lo": {lo}, "hi": {hi} }}"#
        )),
        DistDoc::Exponential(mean) => {
            out.push_str(&format!(r#"{{ "dist": "exponential", "mean": {mean} }}"#))
        }
    }
}

impl Scenario {
    /// Serialize back to the scenario format.
    ///
    /// The emitted text is canonical (stable key order and layout) and
    /// re-parses to an equal [`Scenario`]: `parse(to_json(s)) == s`.
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        o.push_str("  \"name\": ");
        push_escaped(&mut o, &self.name);
        o.push_str(",\n");
        o.push_str(&format!("  \"seed\": {},\n", self.seed));
        // --- machine ---
        let m = &self.machine;
        o.push_str("  \"machine\": {\n");
        o.push_str(&format!("    \"processors\": {},\n", m.processors));
        o.push_str(&format!("    \"ideal\": {},\n", m.ideal));
        if let Some(lanes) = m.lanes {
            o.push_str(&format!("    \"lanes\": {lanes},\n"));
        }
        match m.calendar {
            CalendarDoc::Heap => o.push_str("    \"calendar\": \"heap\",\n"),
            CalendarDoc::Wheel => o.push_str("    \"calendar\": \"wheel\",\n"),
            CalendarDoc::Auto => o.push_str("    \"calendar\": \"auto\",\n"),
            CalendarDoc::Hier {
                slots: None,
                bucket_ticks: None,
                levels: None,
            } => o.push_str("    \"calendar\": \"hier\",\n"),
            CalendarDoc::Hier {
                slots,
                bucket_ticks,
                levels,
            } => {
                o.push_str("    \"calendar\": { \"kind\": \"hier\"");
                if let Some(s) = slots {
                    o.push_str(&format!(", \"slots\": {s}"));
                }
                if let Some(b) = bucket_ticks {
                    o.push_str(&format!(", \"bucket_ticks\": {b}"));
                }
                if let Some(l) = levels {
                    o.push_str(&format!(", \"levels\": {l}"));
                }
                o.push_str(" },\n");
            }
        }
        if let Some(shards) = m.shards {
            o.push_str(&format!("    \"shards\": {shards},\n"));
        }
        o.push_str("    \"classes\": [");
        for (i, c) in m.classes.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n      { \"name\": ");
            push_escaped(&mut o, &c.name);
            o.push_str(&format!(
                ", \"count\": {}, \"speed_percent\": {}, \"affinity\": \"{}\" }}",
                c.count,
                c.speed_percent,
                match c.affinity {
                    AffinityDoc::Any => "any",
                    AffinityDoc::ElevatedOnly => "elevated_only",
                    AffinityDoc::NormalOnly => "normal_only",
                }
            ));
        }
        if !m.classes.is_empty() {
            o.push_str("\n    ");
        }
        o.push_str("],\n");
        o.push_str("    \"resources\": [");
        for (i, p) in m.resources.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n      { \"name\": ");
            push_escaped(&mut o, &p.name);
            o.push_str(&format!(", \"tokens\": {} }}", p.tokens));
        }
        if !m.resources.is_empty() {
            o.push_str("\n    ");
        }
        o.push_str("],\n");
        o.push_str("    \"admission\": ");
        match m.admission {
            AdmissionDoc::AcceptAll => o.push_str(r#"{ "policy": "accept_all" }"#),
            AdmissionDoc::BoundedDefer(n) => o.push_str(&format!(
                r#"{{ "policy": "bounded_defer", "max_in_flight": {n} }}"#
            )),
            AdmissionDoc::Shed(n) => {
                o.push_str(&format!(r#"{{ "policy": "shed", "max_in_flight": {n} }}"#))
            }
        }
        if let Some(f) = &m.faults {
            o.push_str(",\n    \"faults\": {\n");
            match &f.model {
                FaultModelDoc::Random {
                    time_to_failure,
                    time_to_repair,
                } => {
                    o.push_str("      \"model\": \"random\",\n");
                    o.push_str("      \"time_to_failure\": ");
                    emit_dist(&mut o, time_to_failure);
                    o.push_str(",\n      \"time_to_repair\": ");
                    emit_dist(&mut o, time_to_repair);
                    o.push_str(",\n");
                }
                FaultModelDoc::Scripted(events) => {
                    o.push_str("      \"model\": \"scripted\",\n");
                    o.push_str("      \"events\": [");
                    for (i, e) in events.iter().enumerate() {
                        if i > 0 {
                            o.push(',');
                        }
                        o.push_str(&format!(
                            "\n        {{ \"processor\": {}, \"crash_at\": {}, \"repair_after\": {} }}",
                            e.processor,
                            e.crash_at,
                            match e.repair_after {
                                Some(t) => t.to_string(),
                                None => "null".into(),
                            }
                        ));
                    }
                    if !events.is_empty() {
                        o.push_str("\n      ");
                    }
                    o.push_str("],\n");
                }
            }
            o.push_str("      \"retry\": ");
            match f.retry {
                RetryDoc::ReissueFront => o.push_str("\"reissue_front\""),
                RetryDoc::Abandon => o.push_str("\"abandon\""),
                RetryDoc::Bounded(n) => o.push_str(&format!(r#"{{ "bounded": {n} }}"#)),
            }
            o.push_str("\n    }");
        }
        o.push_str("\n  },\n");
        // --- workload ---
        o.push_str("  \"workload\": [");
        for (i, p) in self.workload.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    {\n      \"name\": ");
            push_escaped(&mut o, &p.name);
            o.push_str(&format!(",\n      \"count\": {},\n", p.count));
            o.push_str("      \"phases\": [");
            for (j, ph) in p.phases.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str("\n        { \"name\": ");
                push_escaped(&mut o, &ph.name);
                o.push_str(&format!(", \"granules\": {}, \"cost\": ", ph.granules));
                emit_dist(&mut o, &ph.cost);
                o.push_str(&format!(", \"lines\": {}", ph.lines));
                o.push_str(", \"requires\": [");
                for (r, req) in ph.requires.iter().enumerate() {
                    if r > 0 {
                        o.push_str(", ");
                    }
                    push_escaped(&mut o, req);
                }
                o.push(']');
                o.push_str(&format!(
                    ", \"mapping\": \"{}\" }}",
                    match ph.mapping {
                        MappingDoc::Null => "null",
                        MappingDoc::Identity => "identity",
                        MappingDoc::Universal => "universal",
                    }
                ));
            }
            o.push_str("\n      ]\n    }");
        }
        o.push_str("\n  ]");
        // --- stream ---
        if let Some(s) = &self.stream {
            o.push_str(",\n  \"stream\": {\n    \"program\": ");
            push_escaped(&mut o, &s.program);
            o.push_str(&format!(",\n    \"count\": {},\n", s.count));
            o.push_str("    \"arrivals\": ");
            match &s.arrivals {
                ArrivalDoc::Poisson { mean_gap } => o.push_str(&format!(
                    r#"{{ "process": "poisson", "mean_gap": {mean_gap} }}"#
                )),
                ArrivalDoc::Trace(instants) => {
                    o.push_str(r#"{ "process": "trace", "instants": ["#);
                    for (i, t) in instants.iter().enumerate() {
                        if i > 0 {
                            o.push_str(", ");
                        }
                        o.push_str(&t.to_string());
                    }
                    o.push_str("] }");
                }
            }
            o.push_str("\n  }");
        }
        // --- policy ---
        o.push_str(",\n  \"policy\": {\n");
        o.push_str(&format!("    \"overlap\": {}", self.policy.overlap));
        if let Some(sizing) = self.policy.sizing {
            o.push_str(",\n    \"sizing\": ");
            match sizing {
                SizingDoc::Fixed(n) => o.push_str(&format!(r#"{{ "fixed": {n} }}"#)),
                SizingDoc::PerProcessor(r) => o.push_str(&format!(r#"{{ "per_processor": {r} }}"#)),
            }
        }
        o.push_str("\n  }\n}\n");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "machine": { "processors": 4 },
        "workload": [ {
            "name": "sweep",
            "phases": [ { "name": "p0", "granules": 32,
                          "cost": { "dist": "constant", "ticks": 10 } } ]
        } ]
    }"#;

    #[test]
    fn minimal_scenario_parses_and_runs() {
        let s = Scenario::parse(MINIMAL).unwrap();
        assert_eq!(s.machine.processors, 4);
        assert_eq!(s.workload.len(), 1);
        assert_eq!(s.workload[0].count, 1);
        let report = s.build().unwrap().run().unwrap();
        assert_eq!(report.phases[0].stats.executed_granules, 32);
    }

    #[test]
    fn missing_processors_reports_line_and_path() {
        let text = "{\n  \"machine\": {},\n  \"workload\": []\n}";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.path, "machine.processors");
        assert_eq!(e.line, 2);
        assert_eq!(e.kind, ScenarioErrorKind::MissingField("processors".into()));
    }

    #[test]
    fn wrong_type_reports_expected_and_found() {
        let text = r#"{
            "machine": { "processors": "four" },
            "workload": []
        }"#;
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.path, "machine.processors");
        assert_eq!(e.line, 2);
        assert_eq!(
            e.kind,
            ScenarioErrorKind::WrongType {
                expected: "number",
                found: "string"
            }
        );
    }

    #[test]
    fn unknown_field_is_rejected_with_its_line() {
        let text = "{\n  \"machine\": {\n    \"processors\": 4,\n    \"procesors\": 8\n  },\n  \"workload\": []\n}";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert_eq!(e.path, "machine.procesors");
        assert_eq!(e.kind, ScenarioErrorKind::UnknownField("procesors".into()));
    }

    #[test]
    fn undeclared_pool_reference_is_an_error() {
        let text = r#"{
            "machine": { "processors": 2 },
            "workload": [ {
                "name": "w",
                "phases": [ { "name": "p", "granules": 4,
                              "cost": { "dist": "constant", "ticks": 1 },
                              "requires": ["operator"] } ]
            } ]
        }"#;
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.path, "workload[0].phases[0].requires[0]");
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(ref m) if m.contains("operator")));
    }

    #[test]
    fn class_count_mismatch_surfaces_at_machine_block() {
        let text = r#"{
            "machine": {
                "processors": 4,
                "classes": [ { "name": "fast", "count": 1 } ]
            },
            "workload": [ {
                "name": "w",
                "phases": [ { "name": "p", "granules": 4,
                              "cost": { "dist": "constant", "ticks": 1 } } ]
            } ]
        }"#;
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.path, "machine");
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(_)));
    }

    #[test]
    fn identity_mapping_granule_mismatch_is_caught() {
        let text = r#"{
            "machine": { "processors": 2 },
            "workload": [ {
                "name": "w",
                "phases": [
                    { "name": "a", "granules": 4,
                      "cost": { "dist": "constant", "ticks": 1 },
                      "mapping": "identity" },
                    { "name": "b", "granules": 8,
                      "cost": { "dist": "constant", "ticks": 1 } }
                ]
            } ]
        }"#;
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.path, "workload[0].phases[0].mapping");
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(_)));
    }

    #[test]
    fn stream_must_reference_a_declared_program() {
        let text = r#"{
            "machine": { "processors": 2 },
            "workload": [ {
                "name": "w", "count": 0,
                "phases": [ { "name": "p", "granules": 4,
                              "cost": { "dist": "constant", "ticks": 1 } } ]
            } ],
            "stream": { "program": "nope", "count": 3,
                        "arrivals": { "process": "poisson", "mean_gap": 100 } }
        }"#;
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.path, "stream.program");
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(ref m) if m.contains("nope")));
    }

    #[test]
    fn syntax_errors_carry_the_line() {
        let e = Scenario::parse("{\n  \"machine\": {\n").unwrap_err();
        assert!(matches!(e.kind, ScenarioErrorKind::Syntax(_)));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn full_featured_scenario_round_trips() {
        let s = Scenario {
            name: "kitchen sink".into(),
            seed: 42,
            machine: MachineDoc {
                processors: 8,
                ideal: true,
                lanes: Some(2),
                calendar: CalendarDoc::Wheel,
                shards: Some(4),
                classes: vec![
                    ClassDoc {
                        name: "fast".into(),
                        count: 2,
                        speed_percent: 200,
                        affinity: AffinityDoc::Any,
                    },
                    ClassDoc {
                        name: "base".into(),
                        count: 6,
                        speed_percent: 100,
                        affinity: AffinityDoc::NormalOnly,
                    },
                ],
                resources: vec![PoolDoc {
                    name: "operator".into(),
                    tokens: 2,
                }],
                admission: AdmissionDoc::BoundedDefer(4),
                faults: Some(FaultDoc {
                    model: FaultModelDoc::Scripted(vec![FaultEventDoc {
                        processor: 0,
                        crash_at: 100,
                        repair_after: None,
                    }]),
                    retry: RetryDoc::Bounded(3),
                }),
            },
            workload: vec![ProgramDoc {
                name: "sweep".into(),
                count: 2,
                phases: vec![
                    PhaseDoc {
                        name: "a".into(),
                        granules: 16,
                        cost: DistDoc::Uniform { lo: 5, hi: 15 },
                        lines: 37,
                        requires: vec!["operator".into()],
                        mapping: MappingDoc::Identity,
                    },
                    PhaseDoc {
                        name: "b".into(),
                        granules: 16,
                        cost: DistDoc::Exponential(10),
                        lines: 0,
                        requires: vec![],
                        mapping: MappingDoc::Null,
                    },
                ],
            }],
            stream: Some(StreamDoc {
                program: "sweep".into(),
                count: 5,
                arrivals: ArrivalDoc::Poisson { mean_gap: 500 },
            }),
            policy: PolicyDoc {
                overlap: true,
                sizing: Some(SizingDoc::Fixed(2)),
            },
        };
        let text = s.to_json();
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn calendar_forms_parse_build_and_round_trip() {
        let base = |cal: &str| {
            format!(
                r#"{{
            "machine": {{ "processors": 2, "calendar": {cal} }},
            "workload": [ {{
                "name": "w",
                "phases": [ {{ "name": "p", "granules": 4,
                              "cost": {{ "dist": "constant", "ticks": 1 }} }} ]
            }} ]
        }}"#
            )
        };
        let parse = |cal: &str| Scenario::parse(&base(cal)).unwrap();
        assert_eq!(
            parse(r#""hier""#).machine.calendar,
            CalendarDoc::Hier {
                slots: None,
                bucket_ticks: None,
                levels: None
            }
        );
        assert_eq!(parse(r#""auto""#).machine.calendar, CalendarDoc::Auto);
        // The object spelling works for the flat kinds too.
        assert_eq!(
            parse(r#"{ "kind": "wheel" }"#).machine.calendar,
            CalendarDoc::Wheel
        );
        // Partial hier geometry: absent keys keep the crate defaults.
        let tuned = parse(r#"{ "kind": "hier", "slots": 64, "levels": 3 }"#);
        assert_eq!(
            tuned.machine.calendar,
            CalendarDoc::Hier {
                slots: Some(64),
                bucket_ticks: None,
                levels: Some(3)
            }
        );
        assert_eq!(
            tuned.machine.to_config().calendar,
            CalendarKind::HierWheel {
                slots: 64,
                bucket_ticks: 1,
                levels: 3
            }
        );
        assert_eq!(
            parse(r#""hier""#).machine.to_config().calendar,
            CalendarKind::hier_wheel()
        );
        assert_eq!(
            parse(r#""auto""#).machine.to_config().calendar,
            CalendarKind::Auto
        );
        // Every spelling survives a to_json → parse round trip.
        for cal in [
            r#""hier""#,
            r#""auto""#,
            r#"{ "kind": "hier", "slots": 64, "levels": 3 }"#,
            r#"{ "kind": "hier", "bucket_ticks": 8 }"#,
        ] {
            let s = parse(cal);
            assert_eq!(Scenario::parse(&s.to_json()).unwrap(), s);
        }
    }

    #[test]
    fn calendar_diagnostics_carry_line_and_path() {
        let base = |cal: &str| {
            format!(
                "{{\n  \"machine\": {{ \"processors\": 2,\n    \"calendar\": {cal} }},\n  \
                 \"workload\": [ {{ \"name\": \"w\",\n    \"phases\": [ {{ \"name\": \"p\", \
                 \"granules\": 4, \"cost\": {{ \"dist\": \"constant\", \"ticks\": 1 }} }} ] }} ]\n}}"
            )
        };
        let e = Scenario::parse(&base("\"tree\"")).unwrap_err();
        assert_eq!(e.path, "machine.calendar");
        assert_eq!(e.line, 3);
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(ref m) if m.contains("'tree'")));
        let e = Scenario::parse(&base("{ \"kind\": \"tree\" }")).unwrap_err();
        assert_eq!(e.path, "machine.calendar");
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(ref m) if m.contains("'tree'")));
        // Geometry keys are hier-only.
        let e = Scenario::parse(&base("{ \"kind\": \"wheel\", \"slots\": 4 }")).unwrap_err();
        assert_eq!(e.path, "machine.calendar.slots");
        assert_eq!(e.line, 3);
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(ref m) if m.contains("hier")));
        // Unknown geometry keys are caught by the object key check.
        let e = Scenario::parse(&base("{ \"kind\": \"hier\", \"rings\": 4 }")).unwrap_err();
        assert_eq!(e.path, "machine.calendar.rings");
        assert!(matches!(e.kind, ScenarioErrorKind::UnknownField(_)));
        // levels: 0 is caught by the config validation run at parse
        // time, attributed to the machine block.
        let e = Scenario::parse(&base("{ \"kind\": \"hier\", \"levels\": 0 }")).unwrap_err();
        assert_eq!(e.path, "machine");
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ScenarioErrorKind::Invalid(ref m) if m.contains("level")));
    }

    #[test]
    fn classes_affect_the_built_run() {
        let text = r#"{
            "machine": {
                "processors": 1,
                "ideal": true,
                "classes": [ { "name": "slow", "count": 1, "speed_percent": 50 } ]
            },
            "workload": [ {
                "name": "w",
                "phases": [ { "name": "p", "granules": 8,
                              "cost": { "dist": "constant", "ticks": 10 } } ]
            } ],
            "policy": { "sizing": { "fixed": 1 } }
        }"#;
        let r = Scenario::parse(text)
            .unwrap()
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.makespan.ticks(), 160);
        assert_eq!(r.class_reports[0].tasks, 8);
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let text = r#"{
            "seed": 7,
            "machine": { "processors": 4, "ideal": true },
            "workload": [ {
                "name": "w", "count": 0,
                "phases": [ { "name": "p", "granules": 16,
                              "cost": { "dist": "exponential", "mean": 20 } } ]
            } ],
            "stream": { "program": "w", "count": 6,
                        "arrivals": { "process": "poisson", "mean_gap": 200 } }
        }"#;
        let a = Scenario::parse(text)
            .unwrap()
            .build()
            .unwrap()
            .run()
            .unwrap();
        let b = Scenario::parse(text)
            .unwrap()
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.compute_time, b.compute_time);
    }
}
