//! Optional textual event log for debugging simulation runs.
//!
//! Disabled by default; when enabled it records `(time, message)` pairs
//! that executives and tests can dump on failure. Messages are formatted
//! lazily only when the log is enabled.

use crate::time::SimTime;
use std::fmt;

/// A cheap, optionally-enabled event log.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: Vec<(SimTime, String)>,
    enabled: bool,
    limit: usize,
}

impl TraceLog {
    /// A log that drops everything.
    pub fn disabled() -> TraceLog {
        TraceLog {
            entries: Vec::new(),
            enabled: false,
            limit: 0,
        }
    }

    /// A recording log capped at `limit` entries (0 = unlimited).
    pub fn enabled(limit: usize) -> TraceLog {
        TraceLog {
            entries: Vec::new(),
            enabled: true,
            limit,
        }
    }

    /// Whether entries are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a message produced by `f` at time `at`. `f` is only invoked
    /// when the log is enabled.
    #[inline]
    pub fn log<F: FnOnce() -> String>(&mut self, at: SimTime, f: F) {
        if self.enabled && (self.limit == 0 || self.entries.len() < self.limit) {
            self.entries.push((at, f()));
        }
    }

    /// Recorded entries in order.
    pub fn entries(&self) -> &[(SimTime, String)] {
        &self.entries
    }

    /// Number of entries kept.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, msg) in &self.entries {
            writeln!(f, "[{t}] {msg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_skips_formatting() {
        let mut log = TraceLog::disabled();
        let mut called = false;
        log.log(SimTime(1), || {
            called = true;
            String::from("x")
        });
        assert!(!called);
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::enabled(0);
        log.log(SimTime(1), || "first".into());
        log.log(SimTime(2), || "second".into());
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[0].1, "first");
        let text = log.to_string();
        assert!(text.contains("[t=1] first"));
        assert!(text.contains("[t=2] second"));
    }

    #[test]
    fn limit_caps_entries() {
        let mut log = TraceLog::enabled(2);
        for i in 0..5 {
            log.log(SimTime(i), || format!("e{i}"));
        }
        assert_eq!(log.len(), 2);
    }
}
