//! Virtual time for the discrete-event simulator.
//!
//! Time is measured in integer **ticks**. One tick nominally represents one
//! microsecond of machine time, but nothing in the simulator depends on the
//! physical interpretation: all of the paper's claims are about *ratios*
//! (computation-to-management ≈ 200, tasks-per-processor ≥ 2), which integer
//! ticks reproduce exactly and deterministically.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in ticks since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that metric code can be written without ordering checks.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from a tick count.
    #[inline]
    pub const fn from_ticks(t: u64) -> SimDuration {
        SimDuration(t)
    }

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// True when the duration is zero ticks.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Fractional ratio of `self` to `denom`; 0.0 when `denom` is zero.
    /// Used by reports (e.g. utilization = busy / capacity).
    #[inline]
    pub fn ratio_to(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime(10) + SimDuration(5);
        assert_eq!(t, SimTime(15));
    }

    #[test]
    fn subtract_times_gives_duration() {
        assert_eq!(SimTime(15) - SimTime(10), SimDuration(5));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(3).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10).since(SimTime(3)), SimDuration(7));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(SimDuration(5).ratio_to(SimDuration::ZERO), 0.0);
        assert!((SimDuration(1).ratio_to(SimDuration(4)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration(6) * 3 / 2;
        assert_eq!(d, SimDuration(9));
        let mut acc = SimDuration::ZERO;
        acc += SimDuration(4);
        acc -= SimDuration(1);
        assert_eq!(acc, SimDuration(3));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [SimDuration(1), SimDuration(2), SimDuration(3)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration(6));
    }

    #[test]
    fn min_max() {
        assert_eq!(SimTime(3).max(SimTime(9)), SimTime(9));
        assert_eq!(SimTime(3).min(SimTime(9)), SimTime(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime(42).to_string(), "t=42");
        assert_eq!(SimDuration(7).to_string(), "7t");
    }
}
