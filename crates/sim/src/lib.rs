//! # pax-sim — discrete-event simulation substrate
//!
//! This crate is the machine-level substrate for reproducing
//! *Increasing Processor Utilization During Parallel Computation Rundown*
//! (W. H. Jones, NASA TM-87349, ICPP 1986). The paper's executive, PAX, ran
//! on a UNIVAC 1100 testbed we obviously cannot use; everything the paper
//! claims, however, concerns *scheduling structure* — which processor is
//! busy when — and that is exactly what a deterministic discrete-event
//! simulation reproduces.
//!
//! Provided here:
//!
//! * [`time`] — integer-tick virtual time ([`SimTime`], [`SimDuration`]).
//! * [`event`] — a deterministic future-event list ([`event::EventQueue`])
//!   with insertion-order tie-breaking, so runs are bit-for-bit
//!   reproducible.
//! * [`calendar`] — an indexed event calendar ([`calendar::TimeWheel`]):
//!   a bucketed time wheel with a binary-heap overflow rail, pop-for-pop
//!   identical to [`event::EventQueue`] but amortized `O(1)` for the
//!   near-future scheduling that dominates executive traffic. Selected
//!   per machine via [`machine::MachineConfig`].
//! * [`dist`] — granule execution-time distributions, including the
//!   conditional-skip behaviour the paper reports from CASPER.
//! * [`faults`] — processor crash/repair plans ([`faults::FaultPlan`])
//!   and retry policies for work lost to a crash, attached per machine
//!   via [`machine::MachineConfig::with_faults`].
//! * [`machine`] — processor pools, executive placement
//!   (worker-stealing à la UNIVAC 1100 vs dedicated), itemized
//!   management costs, heterogeneous speed classes
//!   ([`machine::ProcessorClass`]) and secondary-resource token pools
//!   ([`machine::ResourcePool`]).
//! * [`locality`] — clustered-memory model (data homes, remote-access
//!   stalls) behind the paper's "data-proximity work assignment" strategy.
//! * [`metrics`] — busy-processor step traces, per-worker Gantt traces,
//!   and statistics used by every experiment.
//! * [`trace`] — an optional textual debug log.
//!
//! The scheduling logic itself (phases, enablement mappings, the waiting
//! computation queue, overlap control) lives in `pax-core`, layered on top
//! of this crate.

#![warn(missing_docs)]

pub mod calendar;
pub mod dist;
pub mod event;
pub mod faults;
pub mod locality;
pub mod machine;
pub mod metrics;
pub mod time;
pub mod trace;

pub use calendar::{Calendar, CalendarKind, HierWheel, SpacingStats, TimeWheel};
pub use dist::{ArrivalProcess, CostModel, DurationDist};
pub use event::EventQueue;
pub use faults::{FaultModel, FaultPlan, RetryPolicy, ScriptedFault};
pub use locality::{DataLayout, LocalityModel};
pub use machine::{
    AdmissionPolicy, BatchPolicy, ClassAffinity, ConfigError, ExecutivePlacement, MachineConfig,
    ManagementCosts, ProcessorClass, ResourcePool, RunStorageKind, ShardPolicy,
};
pub use metrics::{Activity, BusyCounter, GanttTrace, Span, StepTrace, Welford};
pub use time::{SimDuration, SimTime};
pub use trace::TraceLog;

/// Construct the deterministic RNG used across the workspace.
///
/// All stochastic behaviour in the reproduction flows from explicitly
/// seeded generators so that every experiment re-runs identically.
pub fn seeded_rng(seed: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}
