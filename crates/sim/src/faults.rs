//! Processor fault injection: crash/repair plans and retry policies.
//!
//! The paper's machine never loses a processor, but degraded capacity is
//! exactly where rundown utilization gets interesting: a crash preempts
//! the in-flight task (its granule range is lost and re-enters dispatch),
//! the worker pool shrinks until the repair lands, and the executive's
//! ability to keep the *surviving* processors busy is what the
//! degraded-capacity report fields measure.
//!
//! A [`FaultPlan`] is pure configuration — attached to a machine through
//! `MachineConfig::with_faults` — and is interpreted by the engine in
//! `pax-core`. Two models are provided:
//!
//! * [`FaultModel::Random`]: per-processor alternating up/down spans drawn
//!   from [`DurationDist`]s. The engine samples them from a **dedicated
//!   fault RNG** split deterministically from the scenario seed, so a run
//!   with faults disabled consumes zero extra random draws (the golden
//!   fingerprints stay bit-identical) and a run with faults enabled is
//!   bit-identical across shard counts and shard drivers.
//! * [`FaultModel::Scripted`]: explicit crash instants for tests — "break
//!   processor 2 at tick 500, repair it 40 ticks later".
//!
//! What happens to the preempted work is the [`RetryPolicy`]: reissue the
//! lost range at the front of the waiting queue (the default, and the
//! natural reading of the paper's waiting-computation queue), abandon the
//! job at the first loss, or reissue a bounded number of times before
//! escalating to a structured `EngineError::JobAborted`.

use crate::dist::DurationDist;

/// What the engine does with a granule range lost to a processor crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryPolicy {
    /// Re-enqueue the lost range at the front of its queue class, without
    /// bound — the run completes whenever enough capacity survives. The
    /// default.
    #[default]
    ReissueFront,
    /// Give up on the whole job at the first lost range (the job can
    /// never complete once granules are dropped): the run fails with
    /// `EngineError::JobAborted`.
    Abandon,
    /// Reissue a lost descriptor up to `max_attempts` times; one more
    /// crash of the same descriptor escalates to
    /// `EngineError::JobAborted`.
    Bounded {
        /// Reissues allowed per descriptor before the job is aborted.
        max_attempts: u32,
    },
}

/// How crash/repair instants are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultModel {
    /// Every processor alternates up/down spans drawn independently from
    /// the two distributions (spans are clamped to ≥ 1 tick so a
    /// degenerate distribution cannot freeze virtual time). Sampled from
    /// a dedicated fault RNG derived from the scenario seed.
    Random {
        /// Distribution of up spans (time to failure).
        time_to_failure: DurationDist,
        /// Distribution of down spans (time to repair).
        time_to_repair: DurationDist,
    },
    /// Explicit fault events, for deterministic tests. Events whose
    /// `processor` is out of range for the machine are ignored.
    Scripted(Vec<ScriptedFault>),
}

/// One scripted crash: processor `processor` goes down at local tick
/// `crash_at` and comes back `repair_after` ticks later (never, when
/// `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Worker processor index.
    pub processor: usize,
    /// Crash instant, in the machine's local virtual time.
    pub crash_at: u64,
    /// Down span in ticks; `None` is a permanent loss.
    pub repair_after: Option<u64>,
}

/// A complete fault-injection plan: the crash/repair model plus the
/// retry policy for preempted work.
///
/// ```
/// use pax_sim::dist::DurationDist;
/// use pax_sim::faults::{FaultPlan, RetryPolicy, ScriptedFault};
///
/// // Random crashes: exponential up spans, constant repair, with a
/// // bounded reissue budget instead of the default retry-forever.
/// let random = FaultPlan::random(
///     DurationDist::exponential(5_000),
///     DurationDist::constant(400),
/// )
/// .with_retry(RetryPolicy::Bounded { max_attempts: 3 });
/// assert_eq!(random.retry, RetryPolicy::Bounded { max_attempts: 3 });
///
/// // Scripted crashes for deterministic tests: processor 0 goes down at
/// // tick 500 for 40 ticks; processor 2 is lost for good at tick 900.
/// let scripted = FaultPlan::scripted(vec![
///     ScriptedFault { processor: 0, crash_at: 500, repair_after: Some(40) },
///     ScriptedFault { processor: 2, crash_at: 900, repair_after: None },
/// ]);
/// assert_eq!(scripted.retry, RetryPolicy::ReissueFront);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Crash/repair generation model.
    pub model: FaultModel,
    /// Disposition of granule ranges lost to crashes.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// A random plan: every processor alternates up spans from
    /// `time_to_failure` and down spans from `time_to_repair`, under the
    /// default [`RetryPolicy::ReissueFront`].
    pub fn random(time_to_failure: DurationDist, time_to_repair: DurationDist) -> FaultPlan {
        FaultPlan {
            model: FaultModel::Random {
                time_to_failure,
                time_to_repair,
            },
            retry: RetryPolicy::default(),
        }
    }

    /// A scripted plan from explicit crash events, under the default
    /// [`RetryPolicy::ReissueFront`].
    pub fn scripted(faults: Vec<ScriptedFault>) -> FaultPlan {
        FaultPlan {
            model: FaultModel::Scripted(faults),
            retry: RetryPolicy::default(),
        }
    }

    /// Builder-style: set the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> FaultPlan {
        self.retry = retry;
        self
    }
}

/// Deterministic seed for the dedicated fault RNG of a machine whose
/// engine runs with scenario (or per-group) seed `seed`.
///
/// The fault stream must never share the engine's task-sampling RNG:
/// with a shared stream, merely enabling faults would perturb every
/// sampled task time, and a faults-disabled run could not be guaranteed
/// to consume zero extra draws. A splitmix64 finalizer over a
/// domain-separated seed gives an independent, reproducible stream.
pub fn fault_seed(seed: u64) -> u64 {
    let mut z = seed ^ 0x000F_A017_5EED_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let p = FaultPlan::random(DurationDist::exponential(1_000), DurationDist::constant(50))
            .with_retry(RetryPolicy::Bounded { max_attempts: 3 });
        assert_eq!(p.retry, RetryPolicy::Bounded { max_attempts: 3 });
        assert!(matches!(p.model, FaultModel::Random { .. }));

        let s = FaultPlan::scripted(vec![ScriptedFault {
            processor: 1,
            crash_at: 500,
            repair_after: Some(40),
        }]);
        assert_eq!(s.retry, RetryPolicy::ReissueFront);
        match &s.model {
            FaultModel::Scripted(evs) => assert_eq!(evs.len(), 1),
            other => panic!("expected scripted model, got {other:?}"),
        }
    }

    #[test]
    fn default_retry_is_reissue_front() {
        assert_eq!(RetryPolicy::default(), RetryPolicy::ReissueFront);
    }

    #[test]
    fn fault_seed_is_deterministic_and_domain_separated() {
        assert_eq!(fault_seed(7), fault_seed(7));
        assert_ne!(fault_seed(7), 7);
        assert_ne!(fault_seed(7), fault_seed(8));
    }
}
