//! Per-processor execution traces (Gantt charts).
//!
//! Every dispatched task can be recorded as an interval on its worker's
//! timeline, labelled with the phase and granule range it executed. The
//! correctness tests use these traces to check the paper's overlap
//! invariant — no successor granule may start before its enabling
//! current-phase granules complete — and the examples render them as ASCII
//! charts.

use crate::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// What a worker was doing during one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Executing granules `lo..hi` of phase `phase` (phase ids are opaque
    /// here; `pax-core` assigns them).
    Compute {
        /// Phase (instance) identifier.
        phase: u32,
        /// First granule of the task.
        lo: u32,
        /// One past the last granule of the task.
        hi: u32,
    },
    /// Performing management work on behalf of the executive.
    Management,
    /// Waiting for the executive to service a request.
    ExecutiveWait,
}

/// One interval on a worker's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Worker index.
    pub worker: u32,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// What was happening.
    pub activity: Activity,
}

impl Span {
    /// Interval length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Collected spans for a whole run.
#[derive(Debug, Clone, Default)]
pub struct GanttTrace {
    spans: Vec<Span>,
    enabled: bool,
}

impl GanttTrace {
    /// A trace that records nothing (zero overhead beyond the branch).
    pub fn disabled() -> GanttTrace {
        GanttTrace {
            spans: Vec::new(),
            enabled: false,
        }
    }

    /// A recording trace.
    pub fn enabled() -> GanttTrace {
        GanttTrace {
            spans: Vec::new(),
            enabled: true,
        }
    }

    /// Whether spans are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one interval (no-op when disabled).
    #[inline]
    pub fn push(&mut self, span: Span) {
        if self.enabled {
            debug_assert!(span.start <= span.end);
            self.spans.push(span);
        }
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Compute spans only, filtered to a given phase.
    pub fn compute_spans_of_phase(&self, phase: u32) -> impl Iterator<Item = &Span> {
        self.spans
            .iter()
            .filter(move |s| matches!(s.activity, Activity::Compute { phase: p, .. } if p == phase))
    }

    /// Earliest start among compute spans of `phase`, if any.
    pub fn phase_first_start(&self, phase: u32) -> Option<SimTime> {
        self.compute_spans_of_phase(phase).map(|s| s.start).min()
    }

    /// Latest end among compute spans of `phase`, if any.
    pub fn phase_last_end(&self, phase: u32) -> Option<SimTime> {
        self.compute_spans_of_phase(phase).map(|s| s.end).max()
    }

    /// The completion time of granule `g` in phase `phase`: the end of the
    /// compute span covering it. `None` if it never ran.
    pub fn granule_completion(&self, phase: u32, g: u32) -> Option<SimTime> {
        self.compute_spans_of_phase(phase)
            .filter(|s| match s.activity {
                Activity::Compute { lo, hi, .. } => g >= lo && g < hi,
                _ => false,
            })
            .map(|s| s.end)
            .min()
    }

    /// The start time of granule `g` in phase `phase`.
    pub fn granule_start(&self, phase: u32, g: u32) -> Option<SimTime> {
        self.compute_spans_of_phase(phase)
            .filter(|s| match s.activity {
                Activity::Compute { lo, hi, .. } => g >= lo && g < hi,
                _ => false,
            })
            .map(|s| s.start)
            .min()
    }

    /// Render a coarse ASCII Gantt chart, `width` characters across,
    /// one row per worker. `#` = compute, `m` = management, `.` = waiting
    /// for executive, space = idle.
    pub fn render_ascii(&self, workers: usize, width: usize) -> String {
        let mut out = String::new();
        let end = self
            .spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        if end == SimTime::ZERO || width == 0 {
            return out;
        }
        let span_ticks = end.ticks().max(1);
        for w in 0..workers {
            let mut row = vec![' '; width];
            for s in self.spans.iter().filter(|s| s.worker == w as u32) {
                let a = (s.start.ticks() * width as u64 / span_ticks) as usize;
                let b = ((s.end.ticks() * width as u64).div_ceil(span_ticks) as usize).min(width);
                let ch = match s.activity {
                    Activity::Compute { .. } => '#',
                    Activity::Management => 'm',
                    Activity::ExecutiveWait => '.',
                };
                for c in row.iter_mut().take(b).skip(a) {
                    // compute wins over management wins over waiting
                    let rank = |x: char| match x {
                        '#' => 3,
                        'm' => 2,
                        '.' => 1,
                        _ => 0,
                    };
                    if rank(ch) > rank(*c) {
                        *c = ch;
                    }
                }
            }
            let _ = writeln!(out, "P{:02} |{}|", w, row.iter().collect::<String>());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(worker: u32, start: u64, end: u64, phase: u32, lo: u32, hi: u32) -> Span {
        Span {
            worker,
            start: SimTime(start),
            end: SimTime(end),
            activity: Activity::Compute { phase, lo, hi },
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut g = GanttTrace::disabled();
        g.push(span(0, 0, 10, 0, 0, 1));
        assert!(g.spans().is_empty());
    }

    #[test]
    fn phase_bounds() {
        let mut g = GanttTrace::enabled();
        g.push(span(0, 5, 10, 1, 0, 4));
        g.push(span(1, 2, 8, 1, 4, 8));
        g.push(span(0, 12, 20, 2, 0, 4));
        assert_eq!(g.phase_first_start(1), Some(SimTime(2)));
        assert_eq!(g.phase_last_end(1), Some(SimTime(10)));
        assert_eq!(g.phase_first_start(2), Some(SimTime(12)));
        assert_eq!(g.phase_first_start(9), None);
    }

    #[test]
    fn granule_lookup() {
        let mut g = GanttTrace::enabled();
        g.push(span(0, 0, 10, 0, 0, 5));
        g.push(span(1, 3, 9, 0, 5, 10));
        assert_eq!(g.granule_completion(0, 2), Some(SimTime(10)));
        assert_eq!(g.granule_completion(0, 7), Some(SimTime(9)));
        assert_eq!(g.granule_start(0, 7), Some(SimTime(3)));
        assert_eq!(g.granule_completion(0, 99), None);
    }

    #[test]
    fn ascii_rendering_has_one_row_per_worker() {
        let mut g = GanttTrace::enabled();
        g.push(span(0, 0, 50, 0, 0, 1));
        g.push(Span {
            worker: 1,
            start: SimTime(50),
            end: SimTime(100),
            activity: Activity::Management,
        });
        let art = g.render_ascii(2, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('m'));
    }
}
