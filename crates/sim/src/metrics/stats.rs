//! Small statistics helpers: online mean/variance and percentiles.

/// Welford online accumulator for mean and variance.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0.0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free: +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Percentile of a slice using linear interpolation between closest ranks.
/// `q` is in `[0, 100]`. Returns 0.0 on an empty slice. The input need not
/// be sorted; a sorted copy is made internally.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-bucket histogram over `u64` observations, for task-size and
/// queue-depth distributions in reports.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    total: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram with `buckets` buckets of width `bucket_width`; values
    /// beyond the last bucket are counted in `overflow`.
    pub fn new(bucket_width: u64, buckets: usize) -> Histogram {
        assert!(bucket_width > 0, "bucket width must be positive");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            total: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        let idx = (value / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i` (covering `[i*w, (i+1)*w)`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Observations beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterator of `(bucket_low_edge, count)` for non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // population variance is 4.0; sample variance = 32/7
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_empty() {
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3);
        for v in [0, 5, 9, 10, 25, 29, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 3);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 8);
        let nz: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(nz, vec![(0, 3), (10, 1), (20, 2)]);
    }
}
