//! Measurement instruments for simulation runs.
//!
//! * [`step`] — busy-processor step traces, utilization and rundown math.
//! * [`gantt`] — per-worker interval traces for invariant checking and
//!   ASCII charts.
//! * [`stats`] — Welford accumulators, percentiles, histograms.

pub mod export;
pub mod gantt;
pub mod stats;
pub mod step;

pub use export::{gantt_csv, step_trace_csv, step_traces_csv};
pub use gantt::{Activity, GanttTrace, Span};
pub use stats::{percentile, Histogram, Welford};
pub use step::{BusyAccumulator, BusyCounter, StepTrace};
