//! Step-function time series: the number of busy processors over time.
//!
//! This is the primary instrument for every utilization figure in the
//! reproduction: a piecewise-constant function recorded as change points,
//! integrable over arbitrary windows, and queryable for "final wave" and
//! rundown statistics.

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant, integer-valued function of simulated time,
/// recorded as `(time, new_value)` change points.
///
/// Values are recorded with [`StepTrace::record`]; repeated values at the
/// same instant collapse to the latest one, keeping traces compact even
/// when thousands of events land on one tick.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    points: Vec<(SimTime, u32)>,
}

impl StepTrace {
    /// Empty trace (value is implicitly 0 before the first point).
    pub fn new() -> StepTrace {
        StepTrace { points: Vec::new() }
    }

    /// Record that the value became `value` at time `at`. Times must be
    /// non-decreasing across calls.
    pub fn record(&mut self, at: SimTime, value: u32) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            debug_assert!(at >= last_t, "StepTrace must be recorded in time order");
            if last_t == at {
                *last_v = value;
                // Collapse no-op transitions: if the previous point now has
                // the same value, the new point was redundant.
                if self.points.len() >= 2 {
                    let prev = self.points[self.points.len() - 2].1;
                    if prev == value {
                        self.points.pop();
                    }
                }
                return;
            }
            if *last_v == value {
                return; // no change
            }
        }
        self.points.push((at, value));
    }

    /// The value at time `at` (0 before the first change point).
    pub fn value_at(&self, at: SimTime) -> u32 {
        match self.points.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Integral of the function over `[from, to)`, in value·ticks.
    /// Used as "busy processor-time".
    pub fn integral(&self, from: SimTime, to: SimTime) -> u64 {
        if to <= from || self.points.is_empty() {
            return 0;
        }
        let mut acc: u64 = 0;
        let mut cur_t = from;
        let mut cur_v = self.value_at(from);
        let start = match self.points.binary_search_by(|&(t, _)| t.cmp(&from)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        for &(t, v) in &self.points[start..] {
            if t >= to {
                break;
            }
            acc += (t - cur_t).ticks() * cur_v as u64;
            cur_t = t;
            cur_v = v;
        }
        acc += (to - cur_t).ticks() * cur_v as u64;
        acc
    }

    /// Mean value over `[from, to)`.
    pub fn mean_over(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.integral(from, to) as f64 / (to - from).ticks() as f64
    }

    /// Utilization over `[from, to)` relative to a capacity of `capacity`
    /// processors: integral / (capacity × window).
    pub fn utilization(&self, capacity: usize, from: SimTime, to: SimTime) -> f64 {
        if capacity == 0 || to <= from {
            return 0.0;
        }
        self.integral(from, to) as f64 / (capacity as u64 * (to - from).ticks()) as f64
    }

    /// Idle processor-time over `[from, to)` against `capacity`:
    /// capacity × window − integral.
    pub fn idle_time(&self, capacity: usize, from: SimTime, to: SimTime) -> u64 {
        if to <= from {
            return 0;
        }
        let cap = capacity as u64 * (to - from).ticks();
        cap.saturating_sub(self.integral(from, to))
    }

    /// The last instant, scanning backward from `end`, at which the value
    /// was at least `threshold`; the "rundown onset" detector. Returns the
    /// time the trace *dropped below* `threshold` for the final time before
    /// `end`, or `None` if it never reached the threshold.
    pub fn rundown_onset(&self, threshold: u32, end: SimTime) -> Option<SimTime> {
        let mut onset = None;
        let mut prev_v = 0u32;
        for &(t, v) in &self.points {
            if t > end {
                break;
            }
            if prev_v >= threshold && v < threshold {
                onset = Some(t);
            }
            if v >= threshold {
                onset = None; // recovered; rundown restarts later
            }
            prev_v = v;
        }
        onset
    }

    /// Maximum value attained in `[from, to)`.
    pub fn max_over(&self, from: SimTime, to: SimTime) -> u32 {
        let mut m = self.value_at(from);
        let start = match self.points.binary_search_by(|&(t, _)| t.cmp(&from)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        for &(t, v) in &self.points[start..] {
            if t >= to {
                break;
            }
            m = m.max(v);
        }
        m
    }

    /// Raw change points, for plotting/export.
    pub fn points(&self) -> &[(SimTime, u32)] {
        &self.points
    }

    /// Resample the trace at `n` evenly spaced instants across `[from, to]`
    /// — convenient for printing figure-style series.
    pub fn resample(&self, from: SimTime, to: SimTime, n: usize) -> Vec<(SimTime, u32)> {
        if n == 0 || to < from {
            return Vec::new();
        }
        let span = (to - from).ticks();
        (0..n)
            .map(|i| {
                let t = SimTime(from.ticks() + span * i as u64 / (n.max(2) - 1).max(1) as u64);
                (t, self.value_at(t))
            })
            .collect()
    }
}

/// A counter that mirrors increments/decrements into a [`StepTrace`].
/// Engine code calls [`BusyCounter::inc`]/[`BusyCounter::dec`] as workers
/// start and stop; the trace is extracted at the end of the run.
#[derive(Debug, Clone, Default)]
pub struct BusyCounter {
    value: u32,
    trace: StepTrace,
}

impl BusyCounter {
    /// New counter at zero.
    pub fn new() -> BusyCounter {
        BusyCounter::default()
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Increment at time `at`.
    #[inline]
    pub fn inc(&mut self, at: SimTime) {
        self.value += 1;
        self.trace.record(at, self.value);
    }

    /// Decrement at time `at`.
    #[inline]
    pub fn dec(&mut self, at: SimTime) {
        debug_assert!(self.value > 0, "BusyCounter underflow");
        self.value -= 1;
        self.trace.record(at, self.value);
    }

    /// Consume the counter, yielding its trace.
    pub fn into_trace(self) -> StepTrace {
        self.trace
    }

    /// Borrow the trace so far.
    pub fn trace(&self) -> &StepTrace {
        &self.trace
    }
}

/// Busy time integrated per processor from explicit intervals; cheap
/// alternative when only totals are needed.
#[derive(Debug, Clone, Default)]
pub struct BusyAccumulator {
    total: SimDuration,
}

impl BusyAccumulator {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a busy interval.
    #[inline]
    pub fn add(&mut self, d: SimDuration) {
        self.total += d;
    }

    /// Total accumulated busy time.
    #[inline]
    pub fn total(&self) -> SimDuration {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime(x)
    }

    #[test]
    fn value_at_steps() {
        let mut s = StepTrace::new();
        s.record(t(10), 1);
        s.record(t(20), 3);
        s.record(t(30), 0);
        assert_eq!(s.value_at(t(0)), 0);
        assert_eq!(s.value_at(t(10)), 1);
        assert_eq!(s.value_at(t(15)), 1);
        assert_eq!(s.value_at(t(20)), 3);
        assert_eq!(s.value_at(t(29)), 3);
        assert_eq!(s.value_at(t(30)), 0);
        assert_eq!(s.value_at(t(1000)), 0);
    }

    #[test]
    fn integral_simple() {
        let mut s = StepTrace::new();
        s.record(t(0), 2);
        s.record(t(10), 4);
        s.record(t(20), 0);
        // [0,10): 2*10=20, [10,20): 4*10=40
        assert_eq!(s.integral(t(0), t(20)), 60);
        assert_eq!(s.integral(t(5), t(15)), 2 * 5 + 4 * 5);
        assert_eq!(s.integral(t(20), t(100)), 0);
        assert_eq!(s.integral(t(10), t(10)), 0);
    }

    #[test]
    fn collapses_same_instant_updates() {
        let mut s = StepTrace::new();
        s.record(t(5), 1);
        s.record(t(5), 2);
        s.record(t(5), 3);
        assert_eq!(s.points().len(), 1);
        assert_eq!(s.value_at(t(5)), 3);
    }

    #[test]
    fn collapses_noop_transitions() {
        let mut s = StepTrace::new();
        s.record(t(1), 2);
        s.record(t(2), 3);
        s.record(t(2), 2); // back to 2 at same instant -> redundant point
        assert_eq!(s.value_at(t(3)), 2);
        assert_eq!(s.points().len(), 1);
        s.record(t(5), 2); // no change, ignored
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn utilization_and_idle() {
        let mut s = StepTrace::new();
        s.record(t(0), 4);
        s.record(t(50), 2);
        s.record(t(100), 0);
        // capacity 4 over [0,100): busy = 4*50 + 2*50 = 300, cap = 400
        assert!((s.utilization(4, t(0), t(100)) - 0.75).abs() < 1e-12);
        assert_eq!(s.idle_time(4, t(0), t(100)), 100);
    }

    #[test]
    fn rundown_onset_found() {
        let mut s = StepTrace::new();
        s.record(t(0), 8);
        s.record(t(60), 5); // drops below full
        s.record(t(70), 8); // recovers
        s.record(t(90), 3); // final drop
        s.record(t(100), 0);
        assert_eq!(s.rundown_onset(8, t(100)), Some(t(90)));
        assert_eq!(s.rundown_onset(100, t(100)), None);
    }

    #[test]
    fn busy_counter_traces() {
        let mut c = BusyCounter::new();
        c.inc(t(0));
        c.inc(t(5));
        c.dec(t(10));
        c.dec(t(20));
        let tr = c.into_trace();
        assert_eq!(tr.value_at(t(7)), 2);
        assert_eq!(tr.integral(t(0), t(20)), 5 + 2 * 5 + 10);
    }

    #[test]
    fn max_over_window() {
        let mut s = StepTrace::new();
        s.record(t(0), 1);
        s.record(t(10), 7);
        s.record(t(20), 2);
        assert_eq!(s.max_over(t(0), t(30)), 7);
        assert_eq!(s.max_over(t(20), t(30)), 2);
        assert_eq!(s.max_over(t(11), t(19)), 7);
    }

    #[test]
    fn resample_endpoints() {
        let mut s = StepTrace::new();
        s.record(t(0), 5);
        s.record(t(100), 0);
        let pts = s.resample(t(0), t(100), 5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (t(0), 5));
        assert_eq!(pts[4], (t(100), 0));
    }
}
