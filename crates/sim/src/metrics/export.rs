//! Plain-text exports of measurement series (CSV), so experiment output
//! can be plotted externally without adding serialization dependencies.

use crate::metrics::gantt::{Activity, GanttTrace};
use crate::metrics::step::StepTrace;
use crate::time::SimTime;
use std::fmt::Write as _;

/// Render a step trace as two-column CSV (`time,value`), with explicit
/// change points only.
pub fn step_trace_csv(trace: &StepTrace) -> String {
    let mut out = String::from("time,value\n");
    for &(t, v) in trace.points() {
        let _ = writeln!(out, "{},{}", t.ticks(), v);
    }
    out
}

/// Render one or more step traces resampled onto a common time grid:
/// `time,<name1>,<name2>,…`. Useful for barrier-vs-overlap figure data.
pub fn step_traces_csv(
    traces: &[(&str, &StepTrace)],
    from: SimTime,
    to: SimTime,
    samples: usize,
) -> String {
    let mut out = String::from("time");
    for (name, _) in traces {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    if samples == 0 || to <= from {
        return out;
    }
    let span = (to - from).ticks();
    let denom = (samples.max(2) - 1) as u64;
    for i in 0..samples {
        let t = SimTime(from.ticks() + span * i as u64 / denom);
        let _ = write!(out, "{}", t.ticks());
        for (_, tr) in traces {
            let _ = write!(out, ",{}", tr.value_at(t));
        }
        out.push('\n');
    }
    out
}

/// Render a Gantt trace as CSV rows `worker,start,end,kind,phase,lo,hi`
/// (management/wait rows have empty phase columns).
pub fn gantt_csv(trace: &GanttTrace) -> String {
    let mut out = String::from("worker,start,end,kind,phase,lo,hi\n");
    for s in trace.spans() {
        match s.activity {
            Activity::Compute { phase, lo, hi } => {
                let _ = writeln!(
                    out,
                    "{},{},{},compute,{},{},{}",
                    s.worker,
                    s.start.ticks(),
                    s.end.ticks(),
                    phase,
                    lo,
                    hi
                );
            }
            Activity::Management => {
                let _ = writeln!(
                    out,
                    "{},{},{},management,,,",
                    s.worker,
                    s.start.ticks(),
                    s.end.ticks()
                );
            }
            Activity::ExecutiveWait => {
                let _ = writeln!(
                    out,
                    "{},{},{},wait,,,",
                    s.worker,
                    s.start.ticks(),
                    s.end.ticks()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::gantt::Span;

    #[test]
    fn step_trace_csv_lists_change_points() {
        let mut tr = StepTrace::new();
        tr.record(SimTime(0), 3);
        tr.record(SimTime(10), 1);
        let csv = step_trace_csv(&tr);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,value");
        assert_eq!(lines[1], "0,3");
        assert_eq!(lines[2], "10,1");
    }

    #[test]
    fn multi_trace_csv_resamples() {
        let mut a = StepTrace::new();
        a.record(SimTime(0), 4);
        a.record(SimTime(100), 0);
        let mut b = StepTrace::new();
        b.record(SimTime(0), 2);
        let csv = step_traces_csv(
            &[("strict", &a), ("overlap", &b)],
            SimTime(0),
            SimTime(100),
            3,
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,strict,overlap");
        assert_eq!(lines[1], "0,4,2");
        assert_eq!(lines[2], "50,4,2");
        assert_eq!(lines[3], "100,0,2");
    }

    #[test]
    fn gantt_csv_rows() {
        let mut g = GanttTrace::enabled();
        g.push(Span {
            worker: 0,
            start: SimTime(0),
            end: SimTime(5),
            activity: Activity::Compute {
                phase: 2,
                lo: 4,
                hi: 8,
            },
        });
        g.push(Span {
            worker: 1,
            start: SimTime(5),
            end: SimTime(7),
            activity: Activity::Management,
        });
        let csv = gantt_csv(&g);
        assert!(csv.contains("0,0,5,compute,2,4,8"));
        assert!(csv.contains("1,5,7,management,,,"));
    }

    #[test]
    fn empty_inputs() {
        let tr = StepTrace::new();
        assert_eq!(step_trace_csv(&tr), "time,value\n");
        let csv = step_traces_csv(&[], SimTime(0), SimTime(0), 0);
        assert_eq!(csv, "time\n");
    }
}
