//! Deterministic event queue.
//!
//! A binary min-heap keyed on `(SimTime, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. The counter breaks ties so
//! that events scheduled for the same instant pop in insertion order, making
//! every simulation run bit-for-bit reproducible regardless of heap
//! internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: payload `E` plus its due time and tie-break
/// sequence. Shared with the calendar module's overflow rail so the
/// `(time, seq)` ordering has exactly one definition.
#[derive(Debug, Clone)]
pub(crate) struct Scheduled<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    // Reversed: BinaryHeap is a max-heap, we need earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list for a discrete-event simulation.
///
/// ```
/// use pax_sim::event::EventQueue;
/// use pax_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime(5), "b");
/// q.schedule(SimTime(3), "a");
/// q.schedule(SimTime(5), "c");
/// assert_eq!(q.pop(), Some((SimTime(3), "a")));
/// assert_eq!(q.pop(), Some((SimTime(5), "b"))); // insertion order at t=5
/// assert_eq!(q.pop(), Some((SimTime(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// An empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `payload` to fire at `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Due time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove up to `max` events sharing the earliest pending due time
    /// (the *coincident group*) and append them to `out`, in exactly the
    /// order repeated [`EventQueue::pop`] calls would return them. `out`
    /// is not cleared. Returns the number of events moved — 0 when the
    /// queue is empty or `max` is 0. This is the multi-lane executive's
    /// batch pop: one call drains a whole service round.
    pub fn pop_coincident_into(&mut self, max: usize, out: &mut Vec<(SimTime, E)>) -> usize {
        let Some(t) = self.peek_time() else { return 0 };
        let mut n = 0;
        while n < max {
            match self.heap.peek() {
                Some(s) if s.at == t => {
                    let s = self.heap.pop().expect("peeked");
                    out.push((s.at, s.payload));
                    n += 1;
                }
                _ => break,
            }
        }
        n
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), "a");
        q.schedule(SimTime(1), "b");
        assert_eq!(q.pop(), Some((SimTime(1), "b")));
        q.schedule(SimTime(2), "c");
        assert_eq!(q.pop(), Some((SimTime(2), "c")));
        assert_eq!(q.pop(), Some((SimTime(5), "a")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(9), ());
        q.schedule(SimTime(4), ());
        assert_eq!(q.peek_time(), Some(SimTime(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(9)));
    }

    #[test]
    fn pop_coincident_takes_only_the_earliest_tick() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), "a");
        q.schedule(SimTime(5), "b");
        q.schedule(SimTime(7), "c");
        q.schedule(SimTime(5), "d");
        let mut out = Vec::new();
        assert_eq!(q.pop_coincident_into(8, &mut out), 3);
        assert_eq!(
            out,
            vec![(SimTime(5), "a"), (SimTime(5), "b"), (SimTime(5), "d")]
        );
        assert_eq!(q.pop(), Some((SimTime(7), "c")));
        assert_eq!(q.pop_coincident_into(4, &mut out), 0);
    }

    #[test]
    fn pop_coincident_respects_max_and_appends() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime(3), i);
        }
        let mut out = vec![(SimTime(0), 99)];
        assert_eq!(q.pop_coincident_into(2, &mut out), 2);
        assert_eq!(
            out,
            vec![(SimTime(0), 99), (SimTime(3), 0), (SimTime(3), 1)]
        );
        assert_eq!(q.pop_coincident_into(0, &mut out), 0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime(3), 2)));
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), ());
        q.schedule(SimTime(2), ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 1);
    }
}
