//! Indexed event calendar: a bucketed time wheel with a binary-heap
//! overflow rail.
//!
//! The future-event list is the other per-event cost center of the
//! simulation (after completion processing itself): every dispatch and
//! completion pays an `O(log n)` heap reshuffle in
//! [`EventQueue`](crate::event::EventQueue). A discrete-event executive,
//! however, schedules almost everything a short, bounded distance into
//! the future (task end times, service completions), which is exactly the
//! access pattern a *calendar queue* serves in `O(1)`: a ring of buckets
//! indexed by `(time / bucket_ticks) % size`. Events beyond the wheel's
//! horizon wait on a conventional binary-heap *overflow rail* and migrate
//! into the wheel as the cursor approaches them.
//!
//! Buckets default to **one tick** of granularity; the `bucket_ticks`
//! knob coarsens them so the same number of slots covers a
//! `slots × bucket_ticks` horizon — the lever for event-sparse
//! long-makespan runs, where a fine-grained cursor scans thousands of
//! empty buckets between events (the failure mode the nightly sweep
//! measured against the heap).
//!
//! # Determinism contract
//!
//! [`TimeWheel`] pops events in exactly the same order as
//! [`EventQueue`](crate::event::EventQueue): ascending time, insertion
//! order within a tick. Every bucket entry carries its global sequence
//! number and each bucket is kept sorted by `(time, seq)`:
//!
//! * with one-tick buckets an insertion lands at the back (earlier
//!   entries of the same tick always carry smaller sequence numbers), so
//!   the sort degenerates to the FIFO push of the classic design;
//! * with coarse buckets the sorted insert is what keeps the several due
//!   times sharing a bucket in calendar order; and
//! * the overflow rail (a `(time, seq)` min-heap) is drained into the
//!   wheel **eagerly on every bucket advance**, and its entries keep
//!   their original sequence numbers, so migrated events order correctly
//!   against directly inserted ones of the same tick.
//!
//! The one contract difference from the heap: events must not be
//! scheduled before the most recently popped time (the executive never
//! does — it schedules at `now` or later). Debug builds assert this;
//! release builds clamp to the cursor.

use crate::event::Scheduled;
use crate::time::SimTime;
use std::collections::{BinaryHeap, VecDeque};

/// Default number of wheel buckets. Past `slots × bucket_ticks` ticks of
/// horizon, events ride the overflow rail until the cursor closes in.
pub const DEFAULT_WHEEL_SLOTS: usize = 4096;

/// A bucketed time wheel, deterministic drop-in for
/// [`EventQueue`](crate::event::EventQueue).
///
/// ```
/// use pax_sim::calendar::TimeWheel;
/// use pax_sim::time::SimTime;
///
/// let mut w = TimeWheel::new(16);
/// w.schedule(SimTime(5), "b");
/// w.schedule(SimTime(3), "a");
/// w.schedule(SimTime(5), "c");
/// w.schedule(SimTime(5_000), "overflow");
/// assert_eq!(w.pop(), Some((SimTime(3), "a")));
/// assert_eq!(w.pop(), Some((SimTime(5), "b"))); // insertion order at t=5
/// assert_eq!(w.pop(), Some((SimTime(5), "c")));
/// assert_eq!(w.pop(), Some((SimTime(5_000), "overflow")));
/// assert_eq!(w.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWheel<E> {
    /// Ring of buckets; bucket `(t / bucket_ticks) & mask` holds events
    /// due in the `bucket_ticks`-wide window containing `t`, for `t`
    /// within the horizon. Entries are `(time, seq, payload)`, ordered
    /// lazily: inserts append, and a bucket whose append broke the
    /// `(time, seq)` order is sorted once when it is next read.
    buckets: Vec<VecDeque<(SimTime, u64, E)>>,
    /// `dirty[i]` marks bucket `i` as needing that deferred sort.
    dirty: Vec<bool>,
    /// `buckets.len() - 1`; the length is a power of two.
    mask: u64,
    /// Ticks covered by one bucket (≥ 1).
    bucket_ticks: u64,
    /// Tick the wheel is currently serving. Only advances.
    cursor: u64,
    /// Events stored in the wheel.
    wheel_len: usize,
    /// Events beyond the horizon, keyed `(time, seq)`.
    overflow: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> TimeWheel<E> {
    /// A wheel with at least `slots` buckets (rounded up to a power of
    /// two) of one-tick granularity.
    pub fn new(slots: usize) -> TimeWheel<E> {
        Self::with_bucket_ticks(slots, 1)
    }

    /// A wheel with at least `slots` buckets of `bucket_ticks` ticks
    /// each (`bucket_ticks` < 1 is clamped to 1), covering a
    /// `slots × bucket_ticks` horizon.
    pub fn with_bucket_ticks(slots: usize, bucket_ticks: u64) -> TimeWheel<E> {
        let n = slots.max(2).next_power_of_two();
        TimeWheel {
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            dirty: vec![false; n],
            mask: (n - 1) as u64,
            bucket_ticks: bucket_ticks.max(1),
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// A wheel with the default horizon and one-tick buckets.
    pub fn with_default_slots() -> TimeWheel<E> {
        Self::new(DEFAULT_WHEEL_SLOTS)
    }

    /// Number of buckets.
    #[inline]
    pub fn slots(&self) -> usize {
        self.buckets.len()
    }

    /// Ticks covered by one bucket.
    #[inline]
    pub fn bucket_ticks(&self) -> u64 {
        self.bucket_ticks
    }

    /// Ring index of the bucket holding tick `t`.
    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.bucket_ticks) & self.mask) as usize
    }

    /// True when tick `t` (≥ cursor) falls inside the wheel's horizon.
    #[inline]
    fn in_window(&self, t: u64) -> bool {
        t / self.bucket_ticks - self.cursor / self.bucket_ticks < self.buckets.len() as u64
    }

    /// Insert into the bucket for `at`. Always an `O(1)` append:
    /// in-order traffic (and every one-tick-bucket insert) extends the
    /// bucket's sorted run, and an out-of-order arrival just flags the
    /// bucket for one deferred sort when the cursor reaches it — dense
    /// coarse buckets never pay a per-insert back-scan.
    fn bucket_insert(&mut self, at: SimTime, seq: u64, payload: E) {
        let idx = self.bucket_of(at.0);
        let bucket = &mut self.buckets[idx];
        if let Some(&(t, s, _)) = bucket.back() {
            if (t, s) > (at, seq) {
                self.dirty[idx] = true;
            }
        }
        bucket.push_back((at, seq, payload));
        self.wheel_len += 1;
    }

    /// Pay bucket `idx`'s deferred sort, if flagged. `(time, seq)` is a
    /// total order (seq is unique), so unstable sorting cannot reorder
    /// equal keys.
    #[inline]
    fn ensure_sorted(&mut self, idx: usize) {
        if self.dirty[idx] {
            self.buckets[idx]
                .make_contiguous()
                .sort_unstable_by_key(|&(t, s, _)| (t, s));
            self.dirty[idx] = false;
        }
    }

    /// Schedule `payload` to fire at `at`. Must not precede the most
    /// recently popped time while events are pending (debug-asserted;
    /// clamped in release). With nothing pending the wheel rewinds freely.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        if at.0 < self.cursor && self.is_empty() {
            self.cursor = at.0;
        }
        debug_assert!(
            at.0 >= self.cursor,
            "time wheel cannot schedule into the past ({} < cursor {})",
            at,
            self.cursor
        );
        let at = SimTime(at.0.max(self.cursor));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        if self.in_window(at.0) {
            self.bucket_insert(at, seq, payload);
        } else {
            self.overflow.push(Scheduled { at, seq, payload });
        }
    }

    /// The cursor's bucket is empty: hop straight to the start of the
    /// next non-empty bucket (every wheel event lies within the
    /// horizon, so the ring scan finds one while `wheel_len > 0`), then
    /// adopt overflow events the moved horizon now covers. One hop
    /// replaces a bucket-by-bucket walk that paid a division and an
    /// overflow peek per empty bucket — the dominant cost of fine
    /// `bucket_ticks` on sparse stretches.
    fn hop_to_next_bucket(&mut self) {
        let b0 = self.cursor / self.bucket_ticks;
        let slots = self.buckets.len() as u64;
        let mut d = 1;
        while d < slots && self.buckets[((b0 + d) & self.mask) as usize].is_empty() {
            d += 1;
        }
        self.cursor = (b0 + d) * self.bucket_ticks;
        // Migrating once per hop (not per bucket) is safe: overflow
        // events lie past the *old* horizon, hence past every bucket
        // the hop could land on.
        self.migrate();
    }

    /// Jump the cursor straight to the earliest overflow event and pull
    /// its cohort in (used when nothing is left inside the horizon).
    fn jump_to_overflow(&mut self) {
        let t = self.overflow.peek().expect("overflow non-empty").at;
        self.cursor = t.0;
        self.migrate();
        debug_assert!(self.wheel_len > 0);
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.wheel_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.jump_to_overflow();
        }
        // Scan forward bucket by bucket; bounded by the wheel size
        // because every wheel event lies within the horizon, and
        // amortized O(1) because the cursor never retreats.
        loop {
            let idx = self.bucket_of(self.cursor);
            self.ensure_sorted(idx);
            if let Some((t, _, payload)) = self.buckets[idx].pop_front() {
                debug_assert!(t.0 >= self.cursor, "bucket front behind cursor");
                self.wheel_len -= 1;
                self.cursor = t.0;
                return Some((t, payload));
            }
            // The horizon moved: adopt overflow events that now fit.
            // Doing this on every hop (before any schedule() can run)
            // keeps migrated events ordered ahead of later same-tick
            // insertions via their smaller sequence numbers.
            self.hop_to_next_bucket();
        }
    }

    /// Remove up to `max` events sharing the earliest pending due time
    /// (the *coincident group*) and append them to `out`, in exactly the
    /// order repeated [`TimeWheel::pop`] calls would return them. `out`
    /// is not cleared. Returns the number of events moved — 0 when the
    /// wheel is empty or `max` is 0.
    ///
    /// A coincident group is contiguous at the front of one sorted
    /// bucket (buckets settle their deferred sort the moment the cursor
    /// reaches them), so the batch is one run-length scan followed by a
    /// straight `drain` — no per-event front/pop pair, no cursor scan,
    /// no heap reshuffle. This is the wheel's natural batch operation.
    pub fn pop_coincident_into(&mut self, max: usize, out: &mut Vec<(SimTime, E)>) -> usize {
        if max == 0 || self.is_empty() {
            return 0;
        }
        if self.wheel_len == 0 {
            self.jump_to_overflow();
        }
        loop {
            let idx = self.bucket_of(self.cursor);
            self.ensure_sorted(idx);
            let bucket = &mut self.buckets[idx];
            if let Some(&(t0, _, _)) = bucket.front() {
                let mut n = 1;
                while n < max && bucket.get(n).is_some_and(|&(t, _, _)| t == t0) {
                    n += 1;
                }
                out.extend(bucket.drain(..n).map(|(t, _, payload)| (t, payload)));
                self.wheel_len -= n;
                self.cursor = t0.0;
                return n;
            }
            self.hop_to_next_bucket();
        }
    }

    /// Due time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.wheel_len > 0 {
            // The bucket scan pop() would perform, without the mutation.
            // Bucket windows are increasing in time, so the first
            // non-empty bucket holds the minimum: its front when the
            // bucket is clean, a one-pass min when its sort is still
            // deferred (peek takes `&self`, so it cannot settle it).
            let start = self.cursor / self.bucket_ticks;
            (start..start + self.buckets.len() as u64).find_map(|b| {
                let i = (b & self.mask) as usize;
                let bucket = &self.buckets[i];
                if self.dirty[i] {
                    bucket.iter().map(|&(at, _, _)| at).min()
                } else {
                    bucket.front().map(|&(at, _, _)| at)
                }
            })
        } else {
            self.overflow.peek().map(|o| o.at)
        }
    }

    /// Move overflow events that now fit inside the horizon into their
    /// buckets, in `(time, seq)` order.
    fn migrate(&mut self) {
        while let Some(o) = self.overflow.peek() {
            if !self.in_window(o.at.0) {
                break;
            }
            let o = self.overflow.pop().expect("peeked");
            self.bucket_insert(o.at, o.seq, o.payload);
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Start the (empty) wheel's cursor at `t` instead of 0, so the
    /// first events scheduled near `t` land in buckets rather than all
    /// riding the overflow rail. Retune plumbing for
    /// [`CalendarKind::Auto`].
    pub(crate) fn set_origin(&mut self, t: u64) {
        debug_assert!(self.is_empty(), "origin moves only while empty");
        self.cursor = t;
    }
}

/// Default slots per level of the hierarchical wheel. 256 slots × 4
/// levels cover a `256⁴ × bucket_ticks` horizon — deep enough that the
/// overflow rail is idle for every workload in the repo.
pub const DEFAULT_HIER_SLOTS: usize = 256;

/// Default number of hierarchical-wheel levels.
pub const DEFAULT_HIER_LEVELS: usize = 4;

/// One level of the hierarchical wheel: a ring of buckets, each
/// covering `width` ticks, plus the number of events currently stored
/// in the level.
#[derive(Debug, Clone)]
struct HierLevel<E> {
    buckets: Vec<VecDeque<(SimTime, u64, E)>>,
    /// `dirty[i]`: bucket `i` took an out-of-order append and owes one
    /// deferred `(time, seq)` sort before it is read.
    dirty: Vec<bool>,
    len: usize,
    /// Ticks covered by one bucket at this level:
    /// `bucket_ticks × slots^level`.
    width: u64,
}

impl<E> HierLevel<E> {
    /// Pay bucket `idx`'s deferred sort, if flagged. `(time, seq)` is a
    /// total order (seq is unique), so unstable sorting cannot reorder
    /// equal keys.
    #[inline]
    fn ensure_sorted(&mut self, idx: usize) {
        if self.dirty[idx] {
            self.buckets[idx]
                .make_contiguous()
                .sort_unstable_by_key(|&(t, s, _)| (t, s));
            self.dirty[idx] = false;
        }
    }

    /// Earliest due time in bucket `idx`: its front when clean, a
    /// one-pass min while its sort is still deferred (for `&self`
    /// readers that cannot settle it). `None` when empty.
    #[inline]
    fn bucket_min(&self, idx: usize) -> Option<SimTime> {
        let bucket = &self.buckets[idx];
        if self.dirty[idx] {
            bucket.iter().map(|&(t, _, _)| t).min()
        } else {
            bucket.front().map(|&(t, _, _)| t)
        }
    }
}

/// A hierarchical timer wheel: geometrically coarser levels of buckets
/// with events cascading down a level as the cursor reaches their slot,
/// deterministic drop-in for [`EventQueue`](crate::event::EventQueue).
///
/// Level `k` buckets span `bucket_ticks × slots^k` ticks, so a handful
/// of levels cover any horizon the simulation can express while the
/// hot near-future traffic stays in level 0's one-bucket-per-tick ring.
/// Events land in the *smallest* level whose window holds their due
/// time; when the cursor crosses into a new level-`k` slot, that slot's
/// cohort cascades into the levels below (reusing a scratch buffer, so
/// warm steady-state operation allocates nothing). Events beyond the
/// top level's horizon wait on a binary-heap overflow rail exactly like
/// [`TimeWheel`]'s.
///
/// # Determinism contract
///
/// Identical to [`TimeWheel`]'s: pops come out in ascending
/// `(time, seq)` order, bit-exactly matching the binary heap. Buckets
/// order lazily: inserts append, a bucket whose append broke
/// `(time, seq)` order is flagged, and the flag is paid with one sort
/// when the cursor (or a cascade) reaches the bucket — `(time, seq)`
/// is a total order, so *when* events are sorted can never affect pop
/// order; cascades and overflow migration preserve original sequence
/// numbers. The smallest-fitting-level rule
/// guarantees an insert never lands in the slot the cursor currently
/// occupies at levels ≥ 1 (it would have fitted the level below), so a
/// cascaded slot is never repopulated behind the cursor's back.
///
/// ```
/// use pax_sim::calendar::HierWheel;
/// use pax_sim::time::SimTime;
///
/// let mut w = HierWheel::new(4, 1, 3); // 4 slots × 3 levels
/// w.schedule(SimTime(2), "soon");
/// w.schedule(SimTime(9), "level-1");
/// w.schedule(SimTime(40), "level-2");
/// w.schedule(SimTime(1_000_000), "overflow");
/// assert_eq!(w.pop(), Some((SimTime(2), "soon")));
/// assert_eq!(w.pop(), Some((SimTime(9), "level-1")));
/// assert_eq!(w.pop(), Some((SimTime(40), "level-2")));
/// assert_eq!(w.pop(), Some((SimTime(1_000_000), "overflow")));
/// assert_eq!(w.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct HierWheel<E> {
    levels: Vec<HierLevel<E>>,
    /// `slots - 1`; slots is a power of two shared by every level.
    mask: u64,
    /// Tick the wheel is currently serving. Only advances (rewinds only
    /// while empty).
    cursor: u64,
    /// Events stored across all levels.
    wheel_len: usize,
    /// Events beyond the top level's horizon, keyed `(time, seq)`.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Reusable cascade buffer; swaps with the cascaded bucket so the
    /// capacities circulate and warm cascades allocate nothing.
    scratch: VecDeque<(SimTime, u64, E)>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> HierWheel<E> {
    /// A hierarchical wheel with `slots` buckets per level (rounded up
    /// to a power of two, minimum 2), level-0 buckets of `bucket_ticks`
    /// ticks (< 1 clamps to 1), and up to `levels` levels (< 1 clamps
    /// to 1; levels whose bucket width would overflow `u64` are
    /// dropped, since no event time can reach them).
    pub fn new(slots: usize, bucket_ticks: u64, levels: usize) -> HierWheel<E> {
        let n = slots.max(2).next_power_of_two();
        let shift = n.trailing_zeros();
        let bt = bucket_ticks.max(1);
        let mut lv = Vec::new();
        for k in 0..levels.max(1) as u32 {
            let Some(width) = k
                .checked_mul(shift)
                .filter(|&s| s < 64)
                .and_then(|s| bt.checked_mul(1u64 << s))
            else {
                break;
            };
            lv.push(HierLevel {
                buckets: (0..n).map(|_| VecDeque::new()).collect(),
                dirty: vec![false; n],
                len: 0,
                width,
            });
        }
        HierWheel {
            levels: lv,
            mask: (n - 1) as u64,
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            scratch: VecDeque::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// The default geometry: 256 slots × 4 levels, one-tick level-0
    /// buckets.
    pub fn with_default_geometry() -> HierWheel<E> {
        Self::new(DEFAULT_HIER_SLOTS, 1, DEFAULT_HIER_LEVELS)
    }

    /// Slots per level.
    #[inline]
    pub fn slots(&self) -> usize {
        self.mask as usize + 1
    }

    /// Number of levels actually built (may be fewer than requested if
    /// wider levels would overflow the tick type).
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Ticks covered by one level-0 bucket.
    #[inline]
    pub fn bucket_ticks(&self) -> u64 {
        self.levels[0].width
    }

    /// Insert `(at, seq, payload)` into the smallest level whose window
    /// holds `at`; spills to the overflow rail past the top level's
    /// horizon. Every insert is an `O(1)` append — an out-of-order
    /// arrival (e.g. a cascade delivering older sequence numbers into a
    /// bucket that already took direct inserts) just flags the bucket
    /// for one deferred sort, so dense buckets never pay a per-insert
    /// back-scan. Used by `schedule`, cascades, and overflow migration
    /// alike — the smallest-fit rule is what keeps cascaded slots from
    /// being repopulated.
    fn place(&mut self, at: SimTime, seq: u64, payload: E) {
        let slots = self.slots() as u64;
        for k in 0..self.levels.len() {
            let w = self.levels[k].width;
            if at.0 / w - self.cursor / w < slots {
                let idx = ((at.0 / w) & self.mask) as usize;
                let lv = &mut self.levels[k];
                let bucket = &mut lv.buckets[idx];
                if let Some(&(t, s, _)) = bucket.back() {
                    if (t, s) > (at, seq) {
                        lv.dirty[idx] = true;
                    }
                }
                bucket.push_back((at, seq, payload));
                lv.len += 1;
                self.wheel_len += 1;
                return;
            }
        }
        self.overflow.push(Scheduled { at, seq, payload });
    }

    /// Schedule `payload` to fire at `at`. Same contract as
    /// [`TimeWheel::schedule`]: must not precede the most recently
    /// popped time while events are pending (debug-asserted; clamped in
    /// release); rewinds freely while empty.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        if at.0 < self.cursor && self.is_empty() {
            self.cursor = at.0;
        }
        debug_assert!(
            at.0 >= self.cursor,
            "hierarchical wheel cannot schedule into the past ({} < cursor {})",
            at,
            self.cursor
        );
        let at = SimTime(at.0.max(self.cursor));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.place(at, seq, payload);
    }

    /// Cascade the level-`k` bucket `idx` into the levels below. The
    /// bucket is swapped with the scratch buffer (capacities circulate:
    /// zero allocations once warm), sorted if it still owed its
    /// deferred ordering — once per cohort instead of per insert — and
    /// re-placed in ascending `(time, seq)` order, so same-destination
    /// events arrive mutually in order.
    fn cascade_slot(&mut self, k: usize, idx: usize) {
        if self.levels[k].buckets[idx].is_empty() {
            return;
        }
        let mut cohort = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut cohort, &mut self.levels[k].buckets[idx]);
        self.levels[k].len -= cohort.len();
        self.wheel_len -= cohort.len();
        if std::mem::replace(&mut self.levels[k].dirty[idx], false) {
            // `(time, seq)` is a total order (seq is unique), so
            // unstable sorting cannot reorder equal keys.
            cohort
                .make_contiguous()
                .sort_unstable_by_key(|&(t, s, _)| (t, s));
        }
        for (t, s, p) in cohort.drain(..) {
            // Smallest-fit placement always lands strictly below level
            // `k` here (the cursor sits inside this slot's window), so
            // the drained bucket is never re-entered.
            self.place(t, s, p);
        }
        self.scratch = cohort;
    }

    /// Move the cursor forward to `new_cursor`, cascading the newly
    /// entered slot at every level whose boundary was crossed and
    /// migrating overflow events when the top level's horizon moved.
    /// Callers guarantee no pending event lies in `(old, new_cursor)`.
    fn advance_cursor(&mut self, new_cursor: u64) {
        let old = self.cursor;
        debug_assert!(new_cursor >= old);
        self.cursor = new_cursor;
        for k in 1..self.levels.len() {
            let w = self.levels[k].width;
            if old / w == new_cursor / w {
                // Level-k boundaries are a superset of every coarser
                // level's boundaries: nothing above moved either.
                return;
            }
            let idx = ((new_cursor / w) & self.mask) as usize;
            self.cascade_slot(k, idx);
        }
        // The top level's slot advanced: adopt overflow events the
        // moved horizon now covers. (Eagerly, before any schedule() can
        // run, so migrated events order ahead of later same-tick
        // insertions via their smaller sequence numbers.)
        self.migrate();
    }

    /// Move overflow events that now fit the top level's horizon into
    /// the wheel, in `(time, seq)` order.
    fn migrate(&mut self) {
        let slots = self.slots() as u64;
        let w = self.levels[self.levels.len() - 1].width;
        while let Some(o) = self.overflow.peek() {
            if o.at.0 / w - self.cursor / w >= slots {
                break;
            }
            let o = self.overflow.pop().expect("peeked");
            self.place(o.at, o.seq, o.payload);
        }
    }

    /// The earliest tick the cursor can jump to without passing an
    /// event, when level 0 is empty: the minimum over each level's
    /// first non-empty slot *start* and the earliest overflow time.
    /// Jumping to a slot start (never into a slot) keeps the cascade
    /// math aligned. Requires at least one pending event.
    fn jump_target(&self) -> u64 {
        let slots = self.slots() as u64;
        let mut best = self.overflow.peek().map_or(u64::MAX, |o| o.at.0);
        for lv in &self.levels[1..] {
            if lv.len == 0 {
                continue;
            }
            let cur = self.cursor / lv.width;
            // The cursor's own slot is empty by the smallest-fit
            // invariant; scan the remainder of the window.
            for d in 1..slots {
                if !lv.buckets[((cur + d) & self.mask) as usize].is_empty() {
                    // A non-empty slot holds an event `t ≥ start`, so
                    // the start cannot overflow u64.
                    best = best.min((cur + d) * lv.width);
                    break;
                }
            }
        }
        debug_assert_ne!(best, u64::MAX, "jump_target needs a pending event");
        best
    }

    /// The cursor's level-0 bucket (`b0 = cursor / width₀`) is empty:
    /// hop to the start of the next non-empty level-0 bucket inside the
    /// current level-1 slot, or cross into the next level-1 slot via
    /// the cascade machinery. Level-k boundaries are multiples of
    /// `slots^k` level-0 buckets, so an intra-slot hop cannot cross a
    /// boundary of *any* level and moves the cursor directly — no
    /// per-tick division, no cascade check. This is what lets one-tick
    /// level-0 buckets traverse sparse stretches at ring-scan speed.
    fn hop_l0(&mut self, b0: u64) {
        let slots = self.slots() as u64;
        let w0 = self.levels[0].width;
        let boundary = (b0 / slots + 1) * slots;
        let mut b = b0 + 1;
        while b < boundary && self.levels[0].buckets[(b & self.mask) as usize].is_empty() {
            b += 1;
        }
        if b == boundary {
            self.advance_cursor(b * w0);
        } else {
            self.cursor = b * w0;
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if self.wheel_len == 0 {
                let t = self.overflow.peek()?.at.0;
                // An overflow event is always ≥ a whole top-level
                // window ahead of the last migration point, so this
                // crossing triggers `migrate` inside `advance_cursor`.
                self.advance_cursor(t);
                debug_assert!(self.wheel_len > 0);
                continue;
            }
            if self.levels[0].len == 0 {
                let target = self.jump_target();
                self.advance_cursor(target);
                continue;
            }
            // Level 0 holds the next event within `slots` buckets of
            // the cursor; hop to it, cascading at crossed boundaries.
            let b0 = self.cursor / self.levels[0].width;
            let idx = (b0 & self.mask) as usize;
            self.levels[0].ensure_sorted(idx);
            if let Some((t, _, payload)) = self.levels[0].buckets[idx].pop_front() {
                debug_assert!(t.0 >= self.cursor, "bucket front behind cursor");
                self.levels[0].len -= 1;
                self.wheel_len -= 1;
                self.cursor = t.0;
                return Some((t, payload));
            }
            self.hop_l0(b0);
        }
    }

    /// Remove up to `max` events sharing the earliest pending due time
    /// and append them to `out`, in exactly the order repeated
    /// [`HierWheel::pop`] calls would return them. Returns the number
    /// of events moved.
    ///
    /// Same-time events always share one level-0 bucket by the time the
    /// cursor reaches them (their coarser slots have already cascaded,
    /// and the bucket settles its deferred sort on arrival), so the
    /// batch is a run-length scan plus a straight `drain`, exactly like
    /// [`TimeWheel::pop_coincident_into`].
    pub fn pop_coincident_into(&mut self, max: usize, out: &mut Vec<(SimTime, E)>) -> usize {
        if max == 0 || self.is_empty() {
            return 0;
        }
        loop {
            if self.wheel_len == 0 {
                let t = self.overflow.peek().expect("non-empty").at.0;
                self.advance_cursor(t);
                continue;
            }
            if self.levels[0].len == 0 {
                let target = self.jump_target();
                self.advance_cursor(target);
                continue;
            }
            let b0 = self.cursor / self.levels[0].width;
            let idx = (b0 & self.mask) as usize;
            self.levels[0].ensure_sorted(idx);
            let bucket = &mut self.levels[0].buckets[idx];
            if let Some(&(t0, _, _)) = bucket.front() {
                let mut n = 1;
                while n < max && bucket.get(n).is_some_and(|&(t, _, _)| t == t0) {
                    n += 1;
                }
                out.extend(bucket.drain(..n).map(|(t, _, payload)| (t, payload)));
                self.levels[0].len -= n;
                self.wheel_len -= n;
                self.cursor = t0.0;
                return n;
            }
            self.hop_l0(b0);
        }
    }

    /// Due time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.is_empty() {
            return None;
        }
        let slots = self.slots() as u64;
        let mut best: Option<SimTime> = None;
        if self.levels[0].len > 0 {
            let w0 = self.levels[0].width;
            let start = self.cursor / w0;
            let front = (start..start + slots)
                .find_map(|b| self.levels[0].bucket_min((b & self.mask) as usize));
            if let Some(t) = front {
                // Events at levels ≥ 1 and on the overflow rail all lie
                // at or past the next level-1 slot boundary, so a
                // level-0 minimum before that boundary is the global
                // minimum.
                if self.levels.len() > 1 {
                    let w1 = self.levels[1].width;
                    let boundary = (self.cursor / w1).saturating_add(1).saturating_mul(w1);
                    if t.0 < boundary {
                        return Some(t);
                    }
                } else {
                    return Some(t);
                }
                best = Some(t);
            }
        }
        for lv in &self.levels[1..] {
            if lv.len == 0 {
                continue;
            }
            let cur = self.cursor / lv.width;
            // Slot windows are disjoint and ascending in ring-time
            // order, so every event in the first non-empty slot precedes
            // all later slots; `bucket_min` handles buckets whose
            // deferred sort has not settled yet.
            let front = (1..slots).find_map(|d| lv.bucket_min(((cur + d) & self.mask) as usize));
            if let Some(t) = front {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        if let Some(o) = self.overflow.peek() {
            best = Some(best.map_or(o.at, |b| b.min(o.at)));
        }
        best
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Start the (empty) wheel's cursor at `t`; see
    /// [`TimeWheel::set_origin`].
    pub(crate) fn set_origin(&mut self, t: u64) {
        debug_assert!(self.is_empty(), "origin moves only while empty");
        self.cursor = t;
    }
}

/// A cheap online histogram of event scheduling distances (`due − now`
/// at `schedule` time), bucketed by bit length. This is the signal
/// [`CalendarKind::Auto`] tunes from: the median distance says how
/// coarse level-0 buckets can be, the tail says how much horizon the
/// wheel must cover before events start riding the overflow rail.
#[derive(Debug, Clone)]
pub struct SpacingStats {
    /// `log2[b]` counts deltas of bit length `b` (delta 0 → bucket 0,
    /// delta in `[2^(b-1), 2^b)` → bucket `b`).
    log2: [u64; 65],
    count: u64,
}

impl Default for SpacingStats {
    fn default() -> Self {
        SpacingStats {
            log2: [0; 65],
            count: 0,
        }
    }
}

impl SpacingStats {
    /// Record one scheduling distance.
    #[inline]
    pub fn record(&mut self, delta: u64) {
        self.log2[(64 - delta.leading_zeros()) as usize] += 1;
        self.count += 1;
    }

    /// Number of samples recorded since the last [`SpacingStats::clear`].
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lower bound of the histogram bucket holding the
    /// `num/den`-quantile sample (0 when empty). Integer-only, so the
    /// tuning decision is bit-for-bit reproducible.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, rounding up.
        let rank = (self.count * num).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.log2.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        1u64 << 63
    }

    /// Forget all samples (start a fresh observation window).
    pub fn clear(&mut self) {
        *self = SpacingStats::default();
    }
}

/// Samples required in the observation window before [`AutoState`]
/// makes (or revisits) a tuning decision.
const AUTO_WARMUP_SAMPLES: u64 = 1024;

/// Below this many pending events the heap's `O(log n)` is cheaper
/// than any bucket scan, so `Auto` stays on (or returns to) the heap.
const AUTO_HEAP_PENDING_MAX: usize = 32;

/// The self-tuning calendar's state: a concrete backend plus the
/// spacing histogram the next retune decision reads.
#[derive(Debug, Clone)]
pub struct AutoState<E> {
    /// The live backend. Never `Calendar::Auto` (no recursion).
    inner: Calendar<E>,
    /// What `inner` currently is, for hysteresis: retunes only fire
    /// when the decision differs.
    kind: CalendarKind,
    stats: SpacingStats,
    /// Most recently popped time — the "now" that scheduling distances
    /// are measured against.
    now: u64,
    /// Events ever scheduled through this calendar. Carried here
    /// because retunes rebuild `inner` from scratch.
    scheduled_total: u64,
    /// Retunes performed (observability for tests and reports).
    retunes: u64,
}

impl<E> AutoState<E> {
    fn new() -> AutoState<E> {
        AutoState {
            inner: Calendar::Heap(crate::event::EventQueue::new()),
            kind: CalendarKind::BinaryHeap,
            stats: SpacingStats::default(),
            now: 0,
            scheduled_total: 0,
            retunes: 0,
        }
    }

    /// Pick a backend for the observed spacing distribution. Pure and
    /// integer-only: the same window always yields the same choice.
    fn decide(&self) -> CalendarKind {
        if self.inner.len() <= AUTO_HEAP_PENDING_MAX {
            // Tiny pending sets: comparison cost is trivial and bucket
            // scans would dominate.
            return CalendarKind::BinaryHeap;
        }
        // Geometry follows the *dominant* spacing mass, not the extreme
        // tail: a minority of far-future timers is exactly what the
        // wheel's overflow rail (and the hierarchy's upper levels) are
        // for, while coarsening every bucket to reach them would force
        // the dense near-future traffic into sorted-insert back-scans.
        let p90 = self.stats.quantile(9, 10);
        if p90 < DEFAULT_WHEEL_SLOTS as u64 {
            // ≥ 90% of traffic fits a one-tick-bucket wheel horizon;
            // the rest rides the rail at `O(log tail)`.
            return CalendarKind::time_wheel();
        }
        let coarse = (p90 / DEFAULT_WHEEL_SLOTS as u64).next_power_of_two();
        if coarse <= 256 {
            // A coarsened single-level wheel still covers the bulk.
            return CalendarKind::time_wheel_coarse(coarse);
        }
        // Long-tailed spacing: hierarchical levels, with level-0
        // granularity matched to the median so dense near-future
        // traffic stays one-bucket-per-event.
        let bt = (self.stats.quantile(1, 2) / DEFAULT_HIER_SLOTS as u64).max(1);
        CalendarKind::HierWheel {
            slots: DEFAULT_HIER_SLOTS,
            bucket_ticks: bt.next_power_of_two(),
            levels: DEFAULT_HIER_LEVELS,
        }
    }

    /// Revisit the tuning decision; called from the engine's rebalance
    /// checkpoints. Rebuilding drains the pending events *in pop order*
    /// into the fresh backend, so they take sequence numbers `0..n` in
    /// that same order and every later schedule sorts after them —
    /// retune timing can never change simulation results, only wall
    /// time.
    fn rebalance(&mut self) {
        if self.stats.count() < AUTO_WARMUP_SAMPLES {
            return;
        }
        let decision = self.decide();
        if decision != self.kind {
            let mut fresh = Calendar::from_kind_at(decision, self.now);
            while let Some((t, payload)) = self.inner.pop() {
                fresh.schedule(t, payload);
            }
            self.inner = fresh;
            self.kind = decision;
            self.retunes += 1;
        }
        self.stats.clear();
    }
}
///
/// Part of [`MachineConfig`](crate::machine::MachineConfig); all choices
/// produce bit-identical schedules, so this is purely a host-performance
/// knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalendarKind {
    /// The `(time, seq)` binary min-heap — `O(log n)` per operation,
    /// no tuning. The default.
    #[default]
    BinaryHeap,
    /// The bucketed time wheel: `slots` buckets (rounded up to a power
    /// of two) of `bucket_ticks` ticks each, with a heap overflow rail —
    /// amortized `O(1)` for the near-future traffic that dominates
    /// executive scheduling. Coarser buckets stretch the horizon and cut
    /// empty-bucket scanning on event-sparse runs at the price of a
    /// sorted insert within each bucket.
    TimeWheel {
        /// Bucket count; [`DEFAULT_WHEEL_SLOTS`] is a good default (use
        /// `CalendarKind::time_wheel()`).
        slots: usize,
        /// Ticks per bucket (< 1 clamps to 1). `time_wheel()` uses 1;
        /// `time_wheel_coarse(n)` selects a coarsened wheel.
        bucket_ticks: u64,
    },
    /// The hierarchical timer wheel: `levels` rings of `slots` buckets,
    /// the level-`k` bucket spanning `bucket_ticks × slots^k` ticks,
    /// with cohorts cascading down a level as the cursor reaches their
    /// slot and a heap overflow rail past the top level. Covers any
    /// horizon in `O(1)` amortized per event while keeping the hot
    /// near-future ring fine-grained.
    HierWheel {
        /// Slots per level (rounded up to a power of two, minimum 2);
        /// [`DEFAULT_HIER_SLOTS`] is a good default.
        slots: usize,
        /// Ticks per level-0 bucket (< 1 clamps to 1).
        bucket_ticks: u64,
        /// Level count (< 1 is rejected by
        /// [`MachineConfig::validate`](crate::machine::MachineConfig::validate);
        /// levels whose width would overflow `u64` are dropped).
        levels: usize,
    },
    /// The self-tuning calendar: starts on the binary heap, samples the
    /// scheduling-distance distribution, and at the engine's rebalance
    /// checkpoints re-picks heap vs wheel vs hierarchical geometry —
    /// rebuilding the pending set in pop order, so results stay
    /// bit-identical to every other backend and only wall time changes.
    Auto,
}

impl CalendarKind {
    /// The time wheel with the default horizon and one-tick buckets.
    pub const fn time_wheel() -> CalendarKind {
        CalendarKind::TimeWheel {
            slots: DEFAULT_WHEEL_SLOTS,
            bucket_ticks: 1,
        }
    }

    /// The time wheel with the default slot count and `bucket_ticks`-tick
    /// buckets (a `DEFAULT_WHEEL_SLOTS × bucket_ticks` horizon).
    pub const fn time_wheel_coarse(bucket_ticks: u64) -> CalendarKind {
        CalendarKind::TimeWheel {
            slots: DEFAULT_WHEEL_SLOTS,
            bucket_ticks,
        }
    }

    /// The hierarchical wheel with the default geometry (256 slots ×
    /// 4 levels, one-tick level-0 buckets).
    pub const fn hier_wheel() -> CalendarKind {
        CalendarKind::HierWheel {
            slots: DEFAULT_HIER_SLOTS,
            bucket_ticks: 1,
            levels: DEFAULT_HIER_LEVELS,
        }
    }

    /// The hierarchical wheel with default slots/levels and
    /// `bucket_ticks`-tick level-0 buckets.
    pub const fn hier_wheel_coarse(bucket_ticks: u64) -> CalendarKind {
        CalendarKind::HierWheel {
            slots: DEFAULT_HIER_SLOTS,
            bucket_ticks,
            levels: DEFAULT_HIER_LEVELS,
        }
    }
}

/// A future-event list of either implementation, chosen at runtime from
/// [`CalendarKind`]. This is what the executive actually holds; the
/// indirection is one predictable branch per operation.
#[derive(Debug, Clone)]
pub enum Calendar<E> {
    /// Binary-heap backend.
    Heap(crate::event::EventQueue<E>),
    /// Time-wheel backend.
    Wheel(TimeWheel<E>),
    /// Hierarchical-wheel backend.
    Hier(HierWheel<E>),
    /// Self-tuning backend (a concrete backend plus spacing stats).
    Auto(Box<AutoState<E>>),
}

impl<E> Calendar<E> {
    /// Construct the backend `kind` asks for.
    pub fn from_kind(kind: CalendarKind) -> Calendar<E> {
        match kind {
            CalendarKind::BinaryHeap => Calendar::Heap(crate::event::EventQueue::new()),
            CalendarKind::TimeWheel {
                slots,
                bucket_ticks,
            } => Calendar::Wheel(TimeWheel::with_bucket_ticks(slots, bucket_ticks)),
            CalendarKind::HierWheel {
                slots,
                bucket_ticks,
                levels,
            } => Calendar::Hier(HierWheel::new(slots, bucket_ticks, levels)),
            CalendarKind::Auto => Calendar::Auto(Box::new(AutoState::new())),
        }
    }

    /// `from_kind`, with wheel cursors starting at `origin` so the
    /// first events scheduled near `origin` land in buckets. Used by
    /// `Auto` retunes, which rebuild mid-run.
    fn from_kind_at(kind: CalendarKind, origin: u64) -> Calendar<E> {
        let mut c = Calendar::from_kind(kind);
        match &mut c {
            Calendar::Wheel(w) => w.set_origin(origin),
            Calendar::Hier(w) => w.set_origin(origin),
            Calendar::Heap(_) | Calendar::Auto(_) => {}
        }
        c
    }

    /// Schedule `payload` at `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        match self {
            Calendar::Heap(q) => q.schedule(at, payload),
            Calendar::Wheel(w) => w.schedule(at, payload),
            Calendar::Hier(w) => w.schedule(at, payload),
            Calendar::Auto(a) => {
                a.stats.record(at.0.saturating_sub(a.now));
                a.scheduled_total += 1;
                a.inner.schedule(at, payload);
            }
        }
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Calendar::Heap(q) => q.pop(),
            Calendar::Wheel(w) => w.pop(),
            Calendar::Hier(w) => w.pop(),
            Calendar::Auto(a) => {
                let popped = a.inner.pop();
                if let Some((t, _)) = popped {
                    a.now = t.0;
                }
                popped
            }
        }
    }

    /// Due time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            Calendar::Heap(q) => q.peek_time(),
            Calendar::Wheel(w) => w.peek_time(),
            Calendar::Hier(w) => w.peek_time(),
            Calendar::Auto(a) => a.inner.peek_time(),
        }
    }

    /// Remove up to `max` events sharing the earliest pending due time
    /// and append them to `out`, preserving the deterministic `(time,
    /// insertion)` pop order. Returns the number of events moved. All
    /// backends produce identical batches; the wheels drain their
    /// bucket front in one pass while the heap pays a reshuffle per
    /// event.
    #[inline]
    pub fn pop_coincident_into(&mut self, max: usize, out: &mut Vec<(SimTime, E)>) -> usize {
        match self {
            Calendar::Heap(q) => q.pop_coincident_into(max, out),
            Calendar::Wheel(w) => w.pop_coincident_into(max, out),
            Calendar::Hier(w) => w.pop_coincident_into(max, out),
            Calendar::Auto(a) => {
                let n = a.inner.pop_coincident_into(max, out);
                if let Some(&(t, _)) = out.last() {
                    if n > 0 {
                        a.now = t.0;
                    }
                }
                n
            }
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Calendar::Heap(q) => q.len(),
            Calendar::Wheel(w) => w.len(),
            Calendar::Hier(w) => w.len(),
            Calendar::Auto(a) => a.inner.len(),
        }
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        match self {
            Calendar::Heap(q) => q.scheduled_total(),
            Calendar::Wheel(w) => w.scheduled_total(),
            Calendar::Hier(w) => w.scheduled_total(),
            Calendar::Auto(a) => a.scheduled_total,
        }
    }

    /// Rebalance checkpoint: a no-op on concrete backends; on `Auto`,
    /// revisits the tuning decision once the observation window has
    /// warmed up. Safe to call at any point — retunes preserve the pop
    /// order bit-exactly.
    #[inline]
    pub fn rebalance(&mut self) {
        if let Calendar::Auto(a) = self {
            a.rebalance();
        }
    }

    /// The concrete backend currently in use (`Auto` reports what it
    /// has tuned to, which starts as `BinaryHeap`).
    pub fn backend_kind(&self) -> CalendarKind {
        match self {
            Calendar::Heap(_) => CalendarKind::BinaryHeap,
            Calendar::Wheel(w) => CalendarKind::TimeWheel {
                slots: w.slots(),
                bucket_ticks: w.bucket_ticks(),
            },
            Calendar::Hier(w) => CalendarKind::HierWheel {
                slots: w.slots(),
                bucket_ticks: w.bucket_ticks(),
                levels: w.levels(),
            },
            Calendar::Auto(a) => a.inner.backend_kind(),
        }
    }

    /// How many times an `Auto` calendar has swapped backends (0 for
    /// concrete backends).
    pub fn auto_retunes(&self) -> u64 {
        match self {
            Calendar::Auto(a) => a.retunes,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    #[test]
    fn pops_in_time_order_across_horizon() {
        let mut w = TimeWheel::new(8);
        w.schedule(SimTime(300), 3); // overflow (≥ 8)
        w.schedule(SimTime(1), 1);
        w.schedule(SimTime(5), 2);
        w.schedule(SimTime(1_000_000), 4); // deep overflow
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn ties_break_by_insertion_order_including_migration() {
        // Events at the same tick, some via overflow, some direct: the
        // overflow ones carry earlier sequence numbers and must pop first.
        let mut w = TimeWheel::new(8);
        w.schedule(SimTime(100), "early-overflow"); // overflow at cursor 0
        w.schedule(SimTime(0), "starter");
        assert_eq!(w.pop(), Some((SimTime(0), "starter")));
        // popping advanced the cursor only to 0; now walk time forward
        w.schedule(SimTime(96), "stepper"); // still overflow (96 >= 0+8)... keep walking
        let (t, e) = w.pop().unwrap();
        assert_eq!((t, e), (SimTime(96), "stepper"));
        // cursor now 96; 100 is in-window and already migrated. A direct
        // insertion at 100 must land *behind* it.
        w.schedule(SimTime(100), "late-direct");
        assert_eq!(w.pop(), Some((SimTime(100), "early-overflow")));
        assert_eq!(w.pop(), Some((SimTime(100), "late-direct")));
        assert!(w.is_empty());
    }

    #[test]
    fn wraps_around_the_ring_many_times() {
        let mut w = TimeWheel::new(4);
        let mut expected = Vec::new();
        let mut now = 0u64;
        for i in 0..100u64 {
            now += i % 7;
            w.schedule(SimTime(now), i);
            expected.push((now, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i)); // seq == i here
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| w.pop().map(|(t, e)| (t.0, e))).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn interleaved_schedule_and_pop_matches_heap() {
        // A deterministic but irregular schedule/pop interleaving, for
        // one-tick buckets and several coarsenesses (the contract is the
        // same: bit-identical to the heap).
        for bucket_ticks in [1u64, 4, 16, 64] {
            let mut w = TimeWheel::with_bucket_ticks(16, bucket_ticks);
            let mut q = EventQueue::new();
            let mut now = 0u64;
            for step in 0..500u64 {
                let burst = (step * 7 + 3) % 5;
                for k in 0..burst {
                    let dt = (step * 13 + k * 29) % 200; // crosses the horizon
                    w.schedule(SimTime(now + dt), (step, k));
                    q.schedule(SimTime(now + dt), (step, k));
                }
                if step % 3 != 0 {
                    let a = w.pop();
                    let b = q.pop();
                    assert_eq!(a, b, "divergence at step {step} (bt={bucket_ticks})");
                    if let Some((t, _)) = a {
                        now = t.0;
                    }
                }
            }
            loop {
                let a = w.pop();
                let b = q.pop();
                assert_eq!(a, b, "drain divergence (bt={bucket_ticks})");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn coarse_buckets_keep_calendar_order_within_a_bucket() {
        // Several due times share one 16-tick bucket; pops must come out
        // in (time, seq) order, not bucket-FIFO order.
        let mut w = TimeWheel::with_bucket_ticks(4, 16);
        w.schedule(SimTime(9), "c");
        w.schedule(SimTime(2), "a");
        w.schedule(SimTime(9), "d");
        w.schedule(SimTime(5), "b");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn coarse_migration_orders_against_direct_inserts() {
        // An overflow event and direct inserts landing at the same tick
        // inside one coarse bucket: older sequence numbers pop first.
        let mut w = TimeWheel::with_bucket_ticks(2, 8); // horizon 16 ticks
        w.schedule(SimTime(20), "overflow-first"); // beyond 16: overflow
        w.schedule(SimTime(0), "starter");
        assert_eq!(w.pop(), Some((SimTime(0), "starter")));
        w.schedule(SimTime(7), "walk");
        assert_eq!(w.pop(), Some((SimTime(7), "walk")));
        // cursor 7: bucket advance to 8 migrates 20 into the window
        w.schedule(SimTime(20), "direct-later");
        w.schedule(SimTime(17), "earlier-time");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec!["earlier-time", "overflow-first", "direct-later"]
        );
    }

    #[test]
    fn pop_coincident_matches_repeated_pops_across_backends() {
        // Same schedule into wheels (fine and coarse), and a reference
        // heap popped one at a time: batch pops must reproduce the
        // reference order, batch boundaries included (ties via seq,
        // overflow migration, partial bucket drains).
        let sched: Vec<(u64, u32)> = vec![
            (5, 0),
            (5, 1),
            (5, 2),
            (9, 3),
            (200, 4), // overflow
            (200, 5),
            (9, 6),
        ];
        for bucket_ticks in [1u64, 4, 32] {
            for max in [1usize, 2, 3, 16] {
                let mut wheel: Calendar<u32> = Calendar::from_kind(CalendarKind::TimeWheel {
                    slots: 8,
                    bucket_ticks,
                });
                let mut heap: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
                let mut reference: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
                for &(t, e) in &sched {
                    wheel.schedule(SimTime(t), e);
                    heap.schedule(SimTime(t), e);
                    reference.schedule(SimTime(t), e);
                }
                let (mut wo, mut ho) = (Vec::new(), Vec::new());
                loop {
                    let nw = wheel.pop_coincident_into(max, &mut wo);
                    let nh = heap.pop_coincident_into(max, &mut ho);
                    assert_eq!(nw, nh, "batch size divergence at max={max}");
                    if nw == 0 {
                        break;
                    }
                    let batch = &wo[wo.len() - nw..];
                    assert!(batch.iter().all(|&(t, _)| t == batch[0].0));
                    for got in batch {
                        assert_eq!(
                            Some(*got),
                            reference.pop(),
                            "order divergence at max={max} bt={bucket_ticks}"
                        );
                    }
                }
                assert_eq!(wo, ho);
                assert_eq!(reference.pop(), None, "batch pops must drain everything");
            }
        }
    }

    #[test]
    fn pop_coincident_partial_bucket_then_schedule() {
        // Draining part of a coincident group leaves the rest poppable,
        // and a same-tick schedule after the partial drain lands behind
        // the leftovers (insertion order within the tick). A coarse
        // bucket must additionally stop the batch at the group boundary
        // even though later-time events share the bucket.
        for bucket_ticks in [1u64, 8] {
            let mut w = TimeWheel::with_bucket_ticks(4, bucket_ticks);
            for i in 0..4u32 {
                w.schedule(SimTime(2), i);
            }
            w.schedule(SimTime(3), 77); // same bucket when coarse
            let mut out = Vec::new();
            assert_eq!(w.pop_coincident_into(2, &mut out), 2);
            w.schedule(SimTime(2), 99);
            assert_eq!(w.pop_coincident_into(8, &mut out), 3);
            assert_eq!(w.pop_coincident_into(8, &mut out), 1); // the t=3 group
            let got: Vec<u32> = out.iter().map(|&(_, e)| e).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 99, 77], "bt={bucket_ticks}");
            assert!(w.is_empty());
        }
    }

    #[test]
    fn len_and_scheduled_total() {
        let mut w: TimeWheel<()> = TimeWheel::new(8);
        assert!(w.is_empty());
        w.schedule(SimTime(1), ());
        w.schedule(SimTime(1_000), ());
        assert_eq!(w.len(), 2);
        assert_eq!(w.scheduled_total(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        assert_eq!(w.scheduled_total(), 2);
    }

    #[test]
    fn peek_time_matches_pop_without_mutating() {
        for bucket_ticks in [1u64, 16] {
            let mut w = TimeWheel::with_bucket_ticks(8, bucket_ticks);
            assert_eq!(w.peek_time(), None);
            w.schedule(SimTime(9 * bucket_ticks), 1); // overflow
            assert_eq!(w.peek_time(), Some(SimTime(9 * bucket_ticks)));
            w.schedule(SimTime(4), 2);
            assert_eq!(w.peek_time(), Some(SimTime(4)));
            assert_eq!(w.pop(), Some((SimTime(4), 2)));
            assert_eq!(w.peek_time(), Some(SimTime(9 * bucket_ticks)));
        }
    }

    #[test]
    fn calendar_kind_round_trip() {
        let mut heap: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
        let mut wheel: Calendar<u32> = Calendar::from_kind(CalendarKind::time_wheel());
        let mut coarse: Calendar<u32> = Calendar::from_kind(CalendarKind::time_wheel_coarse(64));
        for (t, e) in [(5u64, 1u32), (2, 2), (5, 3), (9_999_999, 4)] {
            heap.schedule(SimTime(t), e);
            wheel.schedule(SimTime(t), e);
            coarse.schedule(SimTime(t), e);
        }
        assert_eq!(heap.len(), wheel.len());
        assert_eq!(heap.len(), coarse.len());
        assert_eq!(heap.peek_time(), wheel.peek_time());
        assert_eq!(heap.peek_time(), coarse.peek_time());
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            let c = coarse.pop();
            assert_eq!(a, b);
            assert_eq!(a, c);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(heap.scheduled_total(), 4);
        assert_eq!(wheel.scheduled_total(), 4);
        assert_eq!(coarse.scheduled_total(), 4);
    }

    #[test]
    fn tiny_slot_count_rounds_up() {
        let w: TimeWheel<()> = TimeWheel::new(1);
        assert_eq!(w.slots(), 2);
        let w: TimeWheel<()> = TimeWheel::new(100);
        assert_eq!(w.slots(), 128);
        assert_eq!(w.bucket_ticks(), 1);
        let w: TimeWheel<()> = TimeWheel::with_bucket_ticks(8, 0);
        assert_eq!(w.bucket_ticks(), 1, "bucket_ticks clamps to 1");
        let w: TimeWheel<()> = TimeWheel::with_bucket_ticks(8, 32);
        assert_eq!(w.bucket_ticks(), 32);
    }

    #[test]
    fn hier_geometry_clamps_and_overflow_levels_drop() {
        let w: HierWheel<()> = HierWheel::new(1, 0, 0);
        assert_eq!(w.slots(), 2);
        assert_eq!(w.bucket_ticks(), 1);
        assert_eq!(w.levels(), 1, "levels clamp to at least 1");
        let w: HierWheel<()> = HierWheel::new(100, 8, 3);
        assert_eq!(w.slots(), 128);
        assert_eq!(w.bucket_ticks(), 8);
        assert_eq!(w.levels(), 3);
        // 256 slots = 8 bits/level: widths 2^56·bt overflow past level 8
        // for bt=1; requesting 64 levels must quietly cap.
        let w: HierWheel<()> = HierWheel::new(256, 1, 64);
        assert!(w.levels() <= 8, "u64-overflowing levels are dropped");
        assert!(w.levels() >= 7);
    }

    #[test]
    fn hier_pops_in_order_across_levels_and_overflow() {
        // 4 slots × 3 levels, bt=1: level widths 1, 4, 16; horizon 64.
        let mut w = HierWheel::new(4, 1, 3);
        w.schedule(SimTime(40), "l2");
        w.schedule(SimTime(2), "l0");
        w.schedule(SimTime(9), "l1");
        w.schedule(SimTime(1_000_000), "overflow");
        w.schedule(SimTime(9), "l1-tie");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["l0", "l1", "l1-tie", "l2", "overflow"]);
    }

    #[test]
    fn hier_cascade_at_cursor_keeps_tie_order() {
        // Two same-tick events, one routed high (scheduled while far),
        // one inserted directly after the cursor moved close: the
        // cascaded (older-seq) one must pop first.
        let mut w = HierWheel::new(4, 1, 3);
        w.schedule(SimTime(9), "far-first"); // level 1 from cursor 0
        w.schedule(SimTime(0), "starter");
        assert_eq!(w.pop(), Some((SimTime(0), "starter")));
        w.schedule(SimTime(7), "walk");
        assert_eq!(w.pop(), Some((SimTime(7), "walk")));
        // cursor 7; popping past 8 crosses the level-1 slot boundary
        // and cascades t=9 into level 0 before this direct insert:
        w.schedule(SimTime(9), "near-later");
        assert_eq!(w.pop(), Some((SimTime(9), "far-first")));
        assert_eq!(w.pop(), Some((SimTime(9), "near-later")));
        assert!(w.is_empty());
    }

    #[test]
    fn hier_far_future_events_cross_level_boundaries() {
        // Events placed at every level, then popped with large jumps:
        // each jump must cascade entered slots and never lose or
        // reorder anything. Exercises multi-boundary crossings.
        let mut w = HierWheel::new(4, 2, 3); // widths 2, 8, 32; horizon 128
        let mut expected = Vec::new();
        for i in 0..40u64 {
            let t = i * i * 3 % 500; // scattered, far jumps, duplicates
            w.schedule(SimTime(t), i);
            expected.push((t, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i)); // seq == i
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| w.pop().map(|(t, e)| (t.0, e))).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn hier_interleaved_schedule_and_pop_matches_heap() {
        // The TimeWheel interleaving test, over hierarchical geometries
        // (tiny slots force constant cascading; coarse bt forces the
        // sorted-bucket path; single level degenerates to a TimeWheel).
        for (slots, bt, levels) in [(4usize, 1u64, 3usize), (8, 4, 2), (16, 1, 1), (2, 7, 4)] {
            let mut w = HierWheel::new(slots, bt, levels);
            let mut q = EventQueue::new();
            let mut now = 0u64;
            for step in 0..500u64 {
                let burst = (step * 7 + 3) % 5;
                for k in 0..burst {
                    let dt = (step * 13 + k * 29) % 200;
                    w.schedule(SimTime(now + dt), (step, k));
                    q.schedule(SimTime(now + dt), (step, k));
                }
                if step % 3 != 0 {
                    let a = w.pop();
                    let b = q.pop();
                    assert_eq!(a, b, "divergence at step {step} ({slots}/{bt}/{levels})");
                    if let Some((t, _)) = a {
                        now = t.0;
                    }
                }
            }
            loop {
                let a = w.pop();
                let b = q.pop();
                assert_eq!(a, b, "drain divergence ({slots}/{bt}/{levels})");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn hier_batch_pops_match_repeated_pops() {
        let sched: Vec<(u64, u32)> = vec![
            (5, 0),
            (5, 1),
            (5, 2),
            (9, 3),
            (2_000, 4), // upper level
            (2_000, 5),
            (9, 6),
            (100_000, 7), // overflow for the tiny geometry
        ];
        for (slots, bt, levels) in [(4usize, 1u64, 2usize), (8, 16, 3)] {
            for max in [1usize, 2, 3, 16] {
                let mut hier: Calendar<u32> = Calendar::from_kind(CalendarKind::HierWheel {
                    slots,
                    bucket_ticks: bt,
                    levels,
                });
                let mut reference: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
                for &(t, e) in &sched {
                    hier.schedule(SimTime(t), e);
                    reference.schedule(SimTime(t), e);
                }
                let mut out = Vec::new();
                loop {
                    let n = hier.pop_coincident_into(max, &mut out);
                    if n == 0 {
                        break;
                    }
                    let batch = &out[out.len() - n..];
                    assert!(batch.iter().all(|&(t, _)| t == batch[0].0));
                    for got in batch {
                        assert_eq!(Some(*got), reference.pop(), "max={max}");
                    }
                }
                assert_eq!(reference.pop(), None, "batch pops must drain everything");
            }
        }
    }

    #[test]
    fn hier_peek_matches_pop_without_mutating() {
        let mut w = HierWheel::new(4, 2, 3);
        assert_eq!(w.peek_time(), None);
        for t in [700u64, 3, 12, 3, 90, 12_000] {
            w.schedule(SimTime(t), t);
        }
        while !w.is_empty() {
            let peeked = w.peek_time();
            let popped = w.pop();
            assert_eq!(peeked, popped.map(|(t, _)| t));
        }
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn hier_len_scheduled_total_and_rewind() {
        let mut w: HierWheel<u32> = HierWheel::new(8, 1, 2);
        w.schedule(SimTime(50), 1);
        assert_eq!(w.pop(), Some((SimTime(50), 1)));
        // empty wheel rewinds freely
        w.schedule(SimTime(3), 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some((SimTime(3), 2)));
        assert_eq!(w.scheduled_total(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn spacing_stats_quantiles() {
        let mut s = SpacingStats::default();
        assert_eq!(s.quantile(1, 2), 0, "empty stats read as 0");
        for _ in 0..90 {
            s.record(3); // bucket 2, lower bound 2
        }
        for _ in 0..10 {
            s.record(5_000); // bucket 13, lower bound 4096
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(1, 2), 2);
        assert_eq!(s.quantile(99, 100), 4096);
        s.clear();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn auto_matches_heap_through_forced_retunes() {
        // Interleave schedules and pops on an Auto calendar, calling
        // rebalance() often enough to force retunes mid-stream; the pop
        // stream must stay identical to the heap's, and at least one
        // retune must actually fire (the spacing here warrants a wheel).
        let mut auto: Calendar<(u64, u64)> = Calendar::from_kind(CalendarKind::Auto);
        let mut heap: Calendar<(u64, u64)> = Calendar::from_kind(CalendarKind::BinaryHeap);
        assert_eq!(auto.backend_kind(), CalendarKind::BinaryHeap);
        let mut now = 0u64;
        for step in 0..4_000u64 {
            for k in 0..3 {
                let dt = (step * 13 + k * 29) % 97;
                auto.schedule(SimTime(now + dt), (step, k));
                heap.schedule(SimTime(now + dt), (step, k));
            }
            let a = auto.pop();
            let b = heap.pop();
            assert_eq!(a, b, "divergence at step {step}");
            if let Some((t, _)) = a {
                now = t.0;
            }
            if step % 250 == 249 {
                auto.rebalance();
                heap.rebalance(); // no-op on concrete backends
            }
        }
        assert!(auto.auto_retunes() >= 1, "expected at least one retune");
        assert_ne!(auto.backend_kind(), CalendarKind::BinaryHeap);
        loop {
            let a = auto.pop();
            let b = heap.pop();
            assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(auto.scheduled_total(), heap.scheduled_total());
    }

    #[test]
    fn auto_retune_preserves_batch_grouping() {
        // Force a retune with a large pending set, then drain in
        // batches: groups and order must match an untouched heap.
        let mut auto: Calendar<u32> = Calendar::from_kind(CalendarKind::Auto);
        let mut heap: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
        for i in 0..2_000u32 {
            let t = u64::from(i / 3) * 7 % 1_500; // heavy coincidence
            auto.schedule(SimTime(t), i);
            heap.schedule(SimTime(t), i);
        }
        // Note: schedules above violate no invariant; nothing popped yet
        // so the wheel target may rewind freely during the rebuild.
        auto.rebalance();
        let (mut ao, mut ho) = (Vec::new(), Vec::new());
        loop {
            let na = auto.pop_coincident_into(8, &mut ao);
            let nh = heap.pop_coincident_into(8, &mut ho);
            assert_eq!(na, nh);
            if na == 0 {
                break;
            }
        }
        assert_eq!(ao, ho);
    }

    #[test]
    fn auto_prefers_heap_for_tiny_pending_sets() {
        let mut auto: Calendar<u32> = Calendar::from_kind(CalendarKind::Auto);
        for i in 0..2_000u32 {
            auto.schedule(SimTime(u64::from(i)), i);
            auto.pop();
        }
        auto.rebalance();
        assert_eq!(auto.backend_kind(), CalendarKind::BinaryHeap);
        assert_eq!(auto.auto_retunes(), 0);
    }

    #[test]
    fn hier_calendar_kind_constructors() {
        let k = CalendarKind::hier_wheel();
        assert_eq!(
            k,
            CalendarKind::HierWheel {
                slots: DEFAULT_HIER_SLOTS,
                bucket_ticks: 1,
                levels: DEFAULT_HIER_LEVELS
            }
        );
        let k = CalendarKind::hier_wheel_coarse(32);
        assert_eq!(
            k,
            CalendarKind::HierWheel {
                slots: DEFAULT_HIER_SLOTS,
                bucket_ticks: 32,
                levels: DEFAULT_HIER_LEVELS
            }
        );
        let c: Calendar<u32> = Calendar::from_kind(k);
        assert_eq!(c.backend_kind(), k);
    }
}
