//! Indexed event calendar: a bucketed time wheel with a binary-heap
//! overflow rail.
//!
//! The future-event list is the other per-event cost center of the
//! simulation (after completion processing itself): every dispatch and
//! completion pays an `O(log n)` heap reshuffle in
//! [`EventQueue`](crate::event::EventQueue). A discrete-event executive,
//! however, schedules almost everything a short, bounded distance into
//! the future (task end times, service completions), which is exactly the
//! access pattern a *calendar queue* serves in `O(1)`: a ring of buckets
//! indexed by `(time / bucket_ticks) % size`. Events beyond the wheel's
//! horizon wait on a conventional binary-heap *overflow rail* and migrate
//! into the wheel as the cursor approaches them.
//!
//! Buckets default to **one tick** of granularity; the `bucket_ticks`
//! knob coarsens them so the same number of slots covers a
//! `slots × bucket_ticks` horizon — the lever for event-sparse
//! long-makespan runs, where a fine-grained cursor scans thousands of
//! empty buckets between events (the failure mode the nightly sweep
//! measured against the heap).
//!
//! # Determinism contract
//!
//! [`TimeWheel`] pops events in exactly the same order as
//! [`EventQueue`](crate::event::EventQueue): ascending time, insertion
//! order within a tick. Every bucket entry carries its global sequence
//! number and each bucket is kept sorted by `(time, seq)`:
//!
//! * with one-tick buckets an insertion lands at the back (earlier
//!   entries of the same tick always carry smaller sequence numbers), so
//!   the sort degenerates to the FIFO push of the classic design;
//! * with coarse buckets the sorted insert is what keeps the several due
//!   times sharing a bucket in calendar order; and
//! * the overflow rail (a `(time, seq)` min-heap) is drained into the
//!   wheel **eagerly on every bucket advance**, and its entries keep
//!   their original sequence numbers, so migrated events order correctly
//!   against directly inserted ones of the same tick.
//!
//! The one contract difference from the heap: events must not be
//! scheduled before the most recently popped time (the executive never
//! does — it schedules at `now` or later). Debug builds assert this;
//! release builds clamp to the cursor.

use crate::event::Scheduled;
use crate::time::SimTime;
use std::collections::{BinaryHeap, VecDeque};

/// Default number of wheel buckets. Past `slots × bucket_ticks` ticks of
/// horizon, events ride the overflow rail until the cursor closes in.
pub const DEFAULT_WHEEL_SLOTS: usize = 4096;

/// A bucketed time wheel, deterministic drop-in for
/// [`EventQueue`](crate::event::EventQueue).
///
/// ```
/// use pax_sim::calendar::TimeWheel;
/// use pax_sim::time::SimTime;
///
/// let mut w = TimeWheel::new(16);
/// w.schedule(SimTime(5), "b");
/// w.schedule(SimTime(3), "a");
/// w.schedule(SimTime(5), "c");
/// w.schedule(SimTime(5_000), "overflow");
/// assert_eq!(w.pop(), Some((SimTime(3), "a")));
/// assert_eq!(w.pop(), Some((SimTime(5), "b"))); // insertion order at t=5
/// assert_eq!(w.pop(), Some((SimTime(5), "c")));
/// assert_eq!(w.pop(), Some((SimTime(5_000), "overflow")));
/// assert_eq!(w.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWheel<E> {
    /// Ring of buckets; bucket `(t / bucket_ticks) & mask` holds events
    /// due in the `bucket_ticks`-wide window containing `t`, for `t`
    /// within the horizon. Entries are `(time, seq, payload)`, sorted by
    /// `(time, seq)`.
    buckets: Vec<VecDeque<(SimTime, u64, E)>>,
    /// `buckets.len() - 1`; the length is a power of two.
    mask: u64,
    /// Ticks covered by one bucket (≥ 1).
    bucket_ticks: u64,
    /// Tick the wheel is currently serving. Only advances.
    cursor: u64,
    /// Events stored in the wheel.
    wheel_len: usize,
    /// Events beyond the horizon, keyed `(time, seq)`.
    overflow: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> TimeWheel<E> {
    /// A wheel with at least `slots` buckets (rounded up to a power of
    /// two) of one-tick granularity.
    pub fn new(slots: usize) -> TimeWheel<E> {
        Self::with_bucket_ticks(slots, 1)
    }

    /// A wheel with at least `slots` buckets of `bucket_ticks` ticks
    /// each (`bucket_ticks` < 1 is clamped to 1), covering a
    /// `slots × bucket_ticks` horizon.
    pub fn with_bucket_ticks(slots: usize, bucket_ticks: u64) -> TimeWheel<E> {
        let n = slots.max(2).next_power_of_two();
        TimeWheel {
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            mask: (n - 1) as u64,
            bucket_ticks: bucket_ticks.max(1),
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// A wheel with the default horizon and one-tick buckets.
    pub fn with_default_slots() -> TimeWheel<E> {
        Self::new(DEFAULT_WHEEL_SLOTS)
    }

    /// Number of buckets.
    #[inline]
    pub fn slots(&self) -> usize {
        self.buckets.len()
    }

    /// Ticks covered by one bucket.
    #[inline]
    pub fn bucket_ticks(&self) -> u64 {
        self.bucket_ticks
    }

    /// Ring index of the bucket holding tick `t`.
    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.bucket_ticks) & self.mask) as usize
    }

    /// True when tick `t` (≥ cursor) falls inside the wheel's horizon.
    #[inline]
    fn in_window(&self, t: u64) -> bool {
        t / self.bucket_ticks - self.cursor / self.bucket_ticks < self.buckets.len() as u64
    }

    /// Insert into the bucket for `at`, keeping the bucket sorted by
    /// `(time, seq)`. The scan runs from the back: in-order traffic (and
    /// every one-tick-bucket insert) appends immediately.
    fn bucket_insert(&mut self, at: SimTime, seq: u64, payload: E) {
        let idx = self.bucket_of(at.0);
        let bucket = &mut self.buckets[idx];
        let mut pos = bucket.len();
        while pos > 0 {
            let (t, s, _) = &bucket[pos - 1];
            if (*t, *s) <= (at, seq) {
                break;
            }
            pos -= 1;
        }
        bucket.insert(pos, (at, seq, payload));
        self.wheel_len += 1;
    }

    /// Schedule `payload` to fire at `at`. Must not precede the most
    /// recently popped time while events are pending (debug-asserted;
    /// clamped in release). With nothing pending the wheel rewinds freely.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        if at.0 < self.cursor && self.is_empty() {
            self.cursor = at.0;
        }
        debug_assert!(
            at.0 >= self.cursor,
            "time wheel cannot schedule into the past ({} < cursor {})",
            at,
            self.cursor
        );
        let at = SimTime(at.0.max(self.cursor));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        if self.in_window(at.0) {
            self.bucket_insert(at, seq, payload);
        } else {
            self.overflow.push(Scheduled { at, seq, payload });
        }
    }

    /// Advance the cursor to the first tick of the next bucket and adopt
    /// any overflow events the moved horizon now covers.
    #[inline]
    fn advance_bucket(&mut self) {
        self.cursor = (self.cursor / self.bucket_ticks + 1) * self.bucket_ticks;
        self.migrate();
    }

    /// Jump the cursor straight to the earliest overflow event and pull
    /// its cohort in (used when nothing is left inside the horizon).
    fn jump_to_overflow(&mut self) {
        let t = self.overflow.peek().expect("overflow non-empty").at;
        self.cursor = t.0;
        self.migrate();
        debug_assert!(self.wheel_len > 0);
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.wheel_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.jump_to_overflow();
        }
        // Scan forward bucket by bucket; bounded by the wheel size
        // because every wheel event lies within the horizon, and
        // amortized O(1) because the cursor never retreats.
        loop {
            let idx = self.bucket_of(self.cursor);
            if let Some((t, _, payload)) = self.buckets[idx].pop_front() {
                debug_assert!(t.0 >= self.cursor, "bucket front behind cursor");
                self.wheel_len -= 1;
                self.cursor = t.0;
                return Some((t, payload));
            }
            // The horizon moved: adopt overflow events that now fit.
            // Doing this on every advance (before any schedule() can run)
            // keeps migrated events ordered ahead of later same-tick
            // insertions via their smaller sequence numbers.
            self.advance_bucket();
        }
    }

    /// Remove up to `max` events sharing the earliest pending due time
    /// (the *coincident group*) and append them to `out`, in exactly the
    /// order repeated [`TimeWheel::pop`] calls would return them. `out`
    /// is not cleared. Returns the number of events moved — 0 when the
    /// wheel is empty or `max` is 0.
    ///
    /// A coincident group is contiguous at the front of one sorted
    /// bucket, so the drain is a straight `pop_front` run with no
    /// per-event cursor scan or heap reshuffle — the wheel's natural
    /// batch operation.
    pub fn pop_coincident_into(&mut self, max: usize, out: &mut Vec<(SimTime, E)>) -> usize {
        if max == 0 || self.is_empty() {
            return 0;
        }
        if self.wheel_len == 0 {
            self.jump_to_overflow();
        }
        loop {
            let idx = self.bucket_of(self.cursor);
            let bucket = &mut self.buckets[idx];
            if let Some(&(t0, _, _)) = bucket.front() {
                let mut n = 0;
                while n < max {
                    match bucket.front() {
                        Some(&(t, _, _)) if t == t0 => {
                            let (t, _, payload) = bucket.pop_front().expect("checked front");
                            out.push((t, payload));
                            n += 1;
                        }
                        _ => break,
                    }
                }
                self.wheel_len -= n;
                self.cursor = t0.0;
                return n;
            }
            self.advance_bucket();
        }
    }

    /// Due time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.wheel_len > 0 {
            // The bucket scan pop() would perform, without the mutation.
            // Bucket fronts are per-bucket minima, and bucket windows are
            // increasing in time, so the first non-empty front wins.
            let start = self.cursor / self.bucket_ticks;
            (start..start + self.buckets.len() as u64).find_map(|b| {
                self.buckets[(b & self.mask) as usize]
                    .front()
                    .map(|&(at, _, _)| at)
            })
        } else {
            self.overflow.peek().map(|o| o.at)
        }
    }

    /// Move overflow events that now fit inside the horizon into their
    /// buckets, in `(time, seq)` order.
    fn migrate(&mut self) {
        while let Some(o) = self.overflow.peek() {
            if !self.in_window(o.at.0) {
                break;
            }
            let o = self.overflow.pop().expect("peeked");
            self.bucket_insert(o.at, o.seq, o.payload);
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

/// Which future-event list implementation a simulation uses.
///
/// Part of [`MachineConfig`](crate::machine::MachineConfig); all choices
/// produce bit-identical schedules, so this is purely a host-performance
/// knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalendarKind {
    /// The `(time, seq)` binary min-heap — `O(log n)` per operation,
    /// no tuning. The default.
    #[default]
    BinaryHeap,
    /// The bucketed time wheel: `slots` buckets (rounded up to a power
    /// of two) of `bucket_ticks` ticks each, with a heap overflow rail —
    /// amortized `O(1)` for the near-future traffic that dominates
    /// executive scheduling. Coarser buckets stretch the horizon and cut
    /// empty-bucket scanning on event-sparse runs at the price of a
    /// sorted insert within each bucket.
    TimeWheel {
        /// Bucket count; [`DEFAULT_WHEEL_SLOTS`] is a good default (use
        /// `CalendarKind::time_wheel()`).
        slots: usize,
        /// Ticks per bucket (< 1 clamps to 1). `time_wheel()` uses 1;
        /// `time_wheel_coarse(n)` selects a coarsened wheel.
        bucket_ticks: u64,
    },
}

impl CalendarKind {
    /// The time wheel with the default horizon and one-tick buckets.
    pub fn time_wheel() -> CalendarKind {
        CalendarKind::TimeWheel {
            slots: DEFAULT_WHEEL_SLOTS,
            bucket_ticks: 1,
        }
    }

    /// The time wheel with the default slot count and `bucket_ticks`-tick
    /// buckets (a `DEFAULT_WHEEL_SLOTS × bucket_ticks` horizon).
    pub fn time_wheel_coarse(bucket_ticks: u64) -> CalendarKind {
        CalendarKind::TimeWheel {
            slots: DEFAULT_WHEEL_SLOTS,
            bucket_ticks,
        }
    }
}

/// A future-event list of either implementation, chosen at runtime from
/// [`CalendarKind`]. This is what the executive actually holds; the
/// indirection is one predictable branch per operation.
#[derive(Debug, Clone)]
pub enum Calendar<E> {
    /// Binary-heap backend.
    Heap(crate::event::EventQueue<E>),
    /// Time-wheel backend.
    Wheel(TimeWheel<E>),
}

impl<E> Calendar<E> {
    /// Construct the backend `kind` asks for.
    pub fn from_kind(kind: CalendarKind) -> Calendar<E> {
        match kind {
            CalendarKind::BinaryHeap => Calendar::Heap(crate::event::EventQueue::new()),
            CalendarKind::TimeWheel {
                slots,
                bucket_ticks,
            } => Calendar::Wheel(TimeWheel::with_bucket_ticks(slots, bucket_ticks)),
        }
    }

    /// Schedule `payload` at `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        match self {
            Calendar::Heap(q) => q.schedule(at, payload),
            Calendar::Wheel(w) => w.schedule(at, payload),
        }
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            Calendar::Heap(q) => q.pop(),
            Calendar::Wheel(w) => w.pop(),
        }
    }

    /// Due time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            Calendar::Heap(q) => q.peek_time(),
            Calendar::Wheel(w) => w.peek_time(),
        }
    }

    /// Remove up to `max` events sharing the earliest pending due time
    /// and append them to `out`, preserving the deterministic `(time,
    /// insertion)` pop order. Returns the number of events moved. Both
    /// backends produce identical batches; the wheel drains its bucket
    /// front in one pass while the heap pays a reshuffle per event.
    #[inline]
    pub fn pop_coincident_into(&mut self, max: usize, out: &mut Vec<(SimTime, E)>) -> usize {
        match self {
            Calendar::Heap(q) => q.pop_coincident_into(max, out),
            Calendar::Wheel(w) => w.pop_coincident_into(max, out),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Calendar::Heap(q) => q.len(),
            Calendar::Wheel(w) => w.len(),
        }
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        match self {
            Calendar::Heap(q) => q.scheduled_total(),
            Calendar::Wheel(w) => w.scheduled_total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    #[test]
    fn pops_in_time_order_across_horizon() {
        let mut w = TimeWheel::new(8);
        w.schedule(SimTime(300), 3); // overflow (≥ 8)
        w.schedule(SimTime(1), 1);
        w.schedule(SimTime(5), 2);
        w.schedule(SimTime(1_000_000), 4); // deep overflow
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn ties_break_by_insertion_order_including_migration() {
        // Events at the same tick, some via overflow, some direct: the
        // overflow ones carry earlier sequence numbers and must pop first.
        let mut w = TimeWheel::new(8);
        w.schedule(SimTime(100), "early-overflow"); // overflow at cursor 0
        w.schedule(SimTime(0), "starter");
        assert_eq!(w.pop(), Some((SimTime(0), "starter")));
        // popping advanced the cursor only to 0; now walk time forward
        w.schedule(SimTime(96), "stepper"); // still overflow (96 >= 0+8)... keep walking
        let (t, e) = w.pop().unwrap();
        assert_eq!((t, e), (SimTime(96), "stepper"));
        // cursor now 96; 100 is in-window and already migrated. A direct
        // insertion at 100 must land *behind* it.
        w.schedule(SimTime(100), "late-direct");
        assert_eq!(w.pop(), Some((SimTime(100), "early-overflow")));
        assert_eq!(w.pop(), Some((SimTime(100), "late-direct")));
        assert!(w.is_empty());
    }

    #[test]
    fn wraps_around_the_ring_many_times() {
        let mut w = TimeWheel::new(4);
        let mut expected = Vec::new();
        let mut now = 0u64;
        for i in 0..100u64 {
            now += i % 7;
            w.schedule(SimTime(now), i);
            expected.push((now, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i)); // seq == i here
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| w.pop().map(|(t, e)| (t.0, e))).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn interleaved_schedule_and_pop_matches_heap() {
        // A deterministic but irregular schedule/pop interleaving, for
        // one-tick buckets and several coarsenesses (the contract is the
        // same: bit-identical to the heap).
        for bucket_ticks in [1u64, 4, 16, 64] {
            let mut w = TimeWheel::with_bucket_ticks(16, bucket_ticks);
            let mut q = EventQueue::new();
            let mut now = 0u64;
            for step in 0..500u64 {
                let burst = (step * 7 + 3) % 5;
                for k in 0..burst {
                    let dt = (step * 13 + k * 29) % 200; // crosses the horizon
                    w.schedule(SimTime(now + dt), (step, k));
                    q.schedule(SimTime(now + dt), (step, k));
                }
                if step % 3 != 0 {
                    let a = w.pop();
                    let b = q.pop();
                    assert_eq!(a, b, "divergence at step {step} (bt={bucket_ticks})");
                    if let Some((t, _)) = a {
                        now = t.0;
                    }
                }
            }
            loop {
                let a = w.pop();
                let b = q.pop();
                assert_eq!(a, b, "drain divergence (bt={bucket_ticks})");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn coarse_buckets_keep_calendar_order_within_a_bucket() {
        // Several due times share one 16-tick bucket; pops must come out
        // in (time, seq) order, not bucket-FIFO order.
        let mut w = TimeWheel::with_bucket_ticks(4, 16);
        w.schedule(SimTime(9), "c");
        w.schedule(SimTime(2), "a");
        w.schedule(SimTime(9), "d");
        w.schedule(SimTime(5), "b");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn coarse_migration_orders_against_direct_inserts() {
        // An overflow event and direct inserts landing at the same tick
        // inside one coarse bucket: older sequence numbers pop first.
        let mut w = TimeWheel::with_bucket_ticks(2, 8); // horizon 16 ticks
        w.schedule(SimTime(20), "overflow-first"); // beyond 16: overflow
        w.schedule(SimTime(0), "starter");
        assert_eq!(w.pop(), Some((SimTime(0), "starter")));
        w.schedule(SimTime(7), "walk");
        assert_eq!(w.pop(), Some((SimTime(7), "walk")));
        // cursor 7: bucket advance to 8 migrates 20 into the window
        w.schedule(SimTime(20), "direct-later");
        w.schedule(SimTime(17), "earlier-time");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec!["earlier-time", "overflow-first", "direct-later"]
        );
    }

    #[test]
    fn pop_coincident_matches_repeated_pops_across_backends() {
        // Same schedule into wheels (fine and coarse), and a reference
        // heap popped one at a time: batch pops must reproduce the
        // reference order, batch boundaries included (ties via seq,
        // overflow migration, partial bucket drains).
        let sched: Vec<(u64, u32)> = vec![
            (5, 0),
            (5, 1),
            (5, 2),
            (9, 3),
            (200, 4), // overflow
            (200, 5),
            (9, 6),
        ];
        for bucket_ticks in [1u64, 4, 32] {
            for max in [1usize, 2, 3, 16] {
                let mut wheel: Calendar<u32> = Calendar::from_kind(CalendarKind::TimeWheel {
                    slots: 8,
                    bucket_ticks,
                });
                let mut heap: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
                let mut reference: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
                for &(t, e) in &sched {
                    wheel.schedule(SimTime(t), e);
                    heap.schedule(SimTime(t), e);
                    reference.schedule(SimTime(t), e);
                }
                let (mut wo, mut ho) = (Vec::new(), Vec::new());
                loop {
                    let nw = wheel.pop_coincident_into(max, &mut wo);
                    let nh = heap.pop_coincident_into(max, &mut ho);
                    assert_eq!(nw, nh, "batch size divergence at max={max}");
                    if nw == 0 {
                        break;
                    }
                    let batch = &wo[wo.len() - nw..];
                    assert!(batch.iter().all(|&(t, _)| t == batch[0].0));
                    for got in batch {
                        assert_eq!(
                            Some(*got),
                            reference.pop(),
                            "order divergence at max={max} bt={bucket_ticks}"
                        );
                    }
                }
                assert_eq!(wo, ho);
                assert_eq!(reference.pop(), None, "batch pops must drain everything");
            }
        }
    }

    #[test]
    fn pop_coincident_partial_bucket_then_schedule() {
        // Draining part of a coincident group leaves the rest poppable,
        // and a same-tick schedule after the partial drain lands behind
        // the leftovers (insertion order within the tick). A coarse
        // bucket must additionally stop the batch at the group boundary
        // even though later-time events share the bucket.
        for bucket_ticks in [1u64, 8] {
            let mut w = TimeWheel::with_bucket_ticks(4, bucket_ticks);
            for i in 0..4u32 {
                w.schedule(SimTime(2), i);
            }
            w.schedule(SimTime(3), 77); // same bucket when coarse
            let mut out = Vec::new();
            assert_eq!(w.pop_coincident_into(2, &mut out), 2);
            w.schedule(SimTime(2), 99);
            assert_eq!(w.pop_coincident_into(8, &mut out), 3);
            assert_eq!(w.pop_coincident_into(8, &mut out), 1); // the t=3 group
            let got: Vec<u32> = out.iter().map(|&(_, e)| e).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 99, 77], "bt={bucket_ticks}");
            assert!(w.is_empty());
        }
    }

    #[test]
    fn len_and_scheduled_total() {
        let mut w: TimeWheel<()> = TimeWheel::new(8);
        assert!(w.is_empty());
        w.schedule(SimTime(1), ());
        w.schedule(SimTime(1_000), ());
        assert_eq!(w.len(), 2);
        assert_eq!(w.scheduled_total(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        assert_eq!(w.scheduled_total(), 2);
    }

    #[test]
    fn peek_time_matches_pop_without_mutating() {
        for bucket_ticks in [1u64, 16] {
            let mut w = TimeWheel::with_bucket_ticks(8, bucket_ticks);
            assert_eq!(w.peek_time(), None);
            w.schedule(SimTime(9 * bucket_ticks), 1); // overflow
            assert_eq!(w.peek_time(), Some(SimTime(9 * bucket_ticks)));
            w.schedule(SimTime(4), 2);
            assert_eq!(w.peek_time(), Some(SimTime(4)));
            assert_eq!(w.pop(), Some((SimTime(4), 2)));
            assert_eq!(w.peek_time(), Some(SimTime(9 * bucket_ticks)));
        }
    }

    #[test]
    fn calendar_kind_round_trip() {
        let mut heap: Calendar<u32> = Calendar::from_kind(CalendarKind::BinaryHeap);
        let mut wheel: Calendar<u32> = Calendar::from_kind(CalendarKind::time_wheel());
        let mut coarse: Calendar<u32> = Calendar::from_kind(CalendarKind::time_wheel_coarse(64));
        for (t, e) in [(5u64, 1u32), (2, 2), (5, 3), (9_999_999, 4)] {
            heap.schedule(SimTime(t), e);
            wheel.schedule(SimTime(t), e);
            coarse.schedule(SimTime(t), e);
        }
        assert_eq!(heap.len(), wheel.len());
        assert_eq!(heap.len(), coarse.len());
        assert_eq!(heap.peek_time(), wheel.peek_time());
        assert_eq!(heap.peek_time(), coarse.peek_time());
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            let c = coarse.pop();
            assert_eq!(a, b);
            assert_eq!(a, c);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(heap.scheduled_total(), 4);
        assert_eq!(wheel.scheduled_total(), 4);
        assert_eq!(coarse.scheduled_total(), 4);
    }

    #[test]
    fn tiny_slot_count_rounds_up() {
        let w: TimeWheel<()> = TimeWheel::new(1);
        assert_eq!(w.slots(), 2);
        let w: TimeWheel<()> = TimeWheel::new(100);
        assert_eq!(w.slots(), 128);
        assert_eq!(w.bucket_ticks(), 1);
        let w: TimeWheel<()> = TimeWheel::with_bucket_ticks(8, 0);
        assert_eq!(w.bucket_ticks(), 1, "bucket_ticks clamps to 1");
        let w: TimeWheel<()> = TimeWheel::with_bucket_ticks(8, 32);
        assert_eq!(w.bucket_ticks(), 32);
    }
}
