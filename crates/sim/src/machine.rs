//! Machine model: processor pool, executive placement, management costs.
//!
//! The paper's testbed was PAX on a UNIVAC 1100, where "executive
//! computation was done at the direct expense of worker computation", and it
//! notes that "some real parallel machines may provide separate executive
//! computing resources". Both arrangements are modelled by
//! [`ExecutivePlacement`].
//!
//! Management costs are itemized to match the operations the paper names:
//! task dispatch, description splitting, completion processing, enablement
//! recognition, successor scheduling, merging, and composite-map
//! construction for indirect mappings.

use crate::calendar::CalendarKind;
use crate::faults::FaultPlan;
use crate::locality::LocalityModel;
use crate::time::SimDuration;

/// Where executive (management) computation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutivePlacement {
    /// Management runs on the requesting worker's own processor, serialized
    /// by a global executive lock — the UNIVAC 1100 arrangement. Management
    /// time directly displaces worker computation.
    StealsWorker,
    /// A dedicated executive processor performs management; workers wait
    /// only for service latency. Models machines with "separate executive
    /// computing resources" (or hardware synchronization primitives when
    /// costs are set near zero).
    Dedicated,
}

/// Itemized management (executive) operation costs, in ticks.
///
/// The defaults are scaled so that, with ~100-tick granules, the
/// computation-to-management ratio lands in the neighborhood of the
/// paper's observed ≈200 (see experiment E5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManagementCosts {
    /// Handing a ready task to an idle worker.
    pub dispatch: SimDuration,
    /// Splitting one computation description into two.
    pub split: SimDuration,
    /// Processing the completion of one task (merge accounting included).
    pub completion: SimDuration,
    /// Releasing one queued (conflicting or enabled) computation into the
    /// waiting queue.
    pub release: SimDuration,
    /// Per-entry cost of constructing a composite granule map for an
    /// indirect enablement mapping.
    pub composite_map_per_entry: SimDuration,
    /// Per-dependent cost of decrementing enablement counters at completion.
    pub counter_decrement: SimDuration,
    /// Initiating a phase (creating its master description).
    pub phase_init: SimDuration,
}

impl ManagementCosts {
    /// A frictionless machine: every management operation is free. Useful
    /// for reproducing pure-arithmetic claims (experiment E1) and as a
    /// baseline in overhead sweeps.
    pub fn free() -> ManagementCosts {
        ManagementCosts {
            dispatch: SimDuration::ZERO,
            split: SimDuration::ZERO,
            completion: SimDuration::ZERO,
            release: SimDuration::ZERO,
            composite_map_per_entry: SimDuration::ZERO,
            counter_decrement: SimDuration::ZERO,
            phase_init: SimDuration::ZERO,
        }
    }

    /// Default costs used by the CASPER-style experiments. One dispatch +
    /// one completion ≈ 0.5 ticks of management per granule; a 100-tick
    /// granule then yields a computation-to-management ratio ≈ 200.
    pub fn pax_default() -> ManagementCosts {
        ManagementCosts {
            dispatch: SimDuration(1),
            split: SimDuration(2),
            completion: SimDuration(1),
            release: SimDuration(1),
            composite_map_per_entry: SimDuration(1),
            counter_decrement: SimDuration(1),
            phase_init: SimDuration(2),
        }
    }

    /// Scale every cost by an integer factor (overhead sweeps).
    pub fn scaled(&self, factor: u64) -> ManagementCosts {
        ManagementCosts {
            dispatch: self.dispatch * factor,
            split: self.split * factor,
            completion: self.completion * factor,
            release: self.release * factor,
            composite_map_per_entry: self.composite_map_per_entry * factor,
            counter_decrement: self.counter_decrement * factor,
            phase_init: self.phase_init * factor,
        }
    }
}

impl Default for ManagementCosts {
    fn default() -> Self {
        ManagementCosts::pax_default()
    }
}

/// How many queued simulator events the executive drains per service
/// round — the paper's "middle management" parallel executive serviced
/// the completion queue with idle processors instead of letting them
/// wait on a serial executive, and batching the drain is how the engine
/// models (and measures) that amortization.
///
/// Every mode produces **bit-identical runs**: a batch is always a
/// prefix of the deterministic `(time, insertion)` event order, and each
/// event in it is serviced exactly as [`BatchPolicy::Single`] would
/// service it. The policy is therefore a host-performance knob (how the
/// run loop talks to the calendar), pinned by equivalence tests — not a
/// scheduling-semantics knob. Scheduling semantics live in
/// [`MachineConfig::executive_lanes`], which also bounds the batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// One event per service round — the pinned deterministic reference
    /// mode equivalence tests diff the batched modes against.
    Single,
    /// Drain up to `executive_lanes` same-timestamp events per round
    /// (one coincident group). The default.
    #[default]
    Coincident,
    /// [`BatchPolicy::Coincident`], and while the round still has idle
    /// lanes keep draining successive coincident groups whose due time
    /// is within `horizon` ticks of the round's first event. Each group
    /// is fully serviced before the next is pulled, so later-scheduled
    /// events keep their place in the deterministic order.
    Lookahead {
        /// Bounded lookahead past the round's first event, in ticks.
        horizon: u64,
    },
}

/// Default run capacity of one [`RunStorageKind::ChunkedRuns`] chunk.
///
/// 32 eight-byte runs keep a chunk's payload at 256 B (four cache lines):
/// big enough that the chunk-summary walk is short, small enough that the
/// in-chunk memmove a bridging insert pays stays trivial.
pub const DEFAULT_CHUNK_RUNS: usize = 32;

/// Which backing layout the executive's granule-run sets (`RangeSet` in
/// `pax-core`) use for their run storage.
///
/// Both backends are **result-identical** — equality between sets ignores
/// layout (and the completed-run hint), and an oracle property test pins
/// every operation — so this is purely a host-performance knob, like
/// [`CalendarKind`]:
///
/// * [`RunStorageKind::VecRuns`] stores runs in one contiguous sorted
///   vector. In-order completion is O(1) through the completed-run hint,
///   but a bridging or disjoint insert in the middle of a fragmented set
///   shifts the whole tail (O(runs) memmove per event).
/// * [`RunStorageKind::ChunkedRuns`] stores runs in fixed-capacity chunks
///   on a linked list with per-chunk run-count + max-end summaries:
///   lookups skip whole chunks (O(chunks)), and a bridging insert only
///   shifts within the chunks it touches (O(chunk) per event) — the shape
///   fragmented rundown phases produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunStorageKind {
    /// One contiguous sorted `Vec` of runs — the default.
    #[default]
    VecRuns,
    /// Fixed-capacity chunks in a linked list with per-chunk summaries.
    ChunkedRuns {
        /// Run capacity of one chunk (values < 2 are clamped to 2);
        /// [`DEFAULT_CHUNK_RUNS`] is a good default (use
        /// `RunStorageKind::chunked()`).
        chunk_runs: usize,
    },
}

impl RunStorageKind {
    /// The chunked backend with the default chunk capacity.
    pub fn chunked() -> RunStorageKind {
        RunStorageKind::ChunkedRuns {
            chunk_runs: DEFAULT_CHUNK_RUNS,
        }
    }
}

/// How many shards the sharded engine partitions a simulation's *machine
/// groups* across (`pax-core`'s `Simulation::add_job_in_group` /
/// `link_groups`).
///
/// Jobs that share one simulated machine are coupled through the global
/// waiting queue, the idle-worker stack, the executive lanes, and the
/// run's RNG stream, so the indivisible unit of sharding is the **group**
/// (one machine plus the jobs it runs), never an individual job. Group
/// `g` is owned by shard `g % shards`; each shard drains its own
/// calendars up to a conservative epoch boundary, and cross-group
/// effects (job-admission edges) are exchanged at a two-phase barrier.
///
/// Like [`BatchPolicy`], [`CalendarKind`], and [`RunStorageKind`], this
/// is a **host-performance knob, not a semantics knob**: every shard
/// count (including pathological ones such as 3) produces bit-identical
/// reports, pinned by the equivalence suite. Per-group RNG streams are
/// split deterministically from the scenario seed, so results do not
/// depend on which shard — or which OS thread — a group lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Number of shards (≥ 1). Clamped to the number of groups at run
    /// time; `1` selects the classic single-threaded drive loop.
    pub shards: usize,
}

impl ShardPolicy {
    /// The single-shard (classic single-threaded) policy — the pinned
    /// reference the sharded drivers are diffed against.
    pub fn single() -> ShardPolicy {
        ShardPolicy { shards: 1 }
    }

    /// A policy with `shards` shards. Infallible by design — a zero
    /// count is reported as [`ConfigError::ZeroShards`] when the config
    /// is validated at session build.
    pub fn new(shards: usize) -> ShardPolicy {
        ShardPolicy { shards }
    }
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy::single()
    }
}

/// What the executive does when a new job arrives while the machine is
/// already loaded — the open-system backpressure knob.
///
/// In a closed batch every job is admitted at time zero and the policy
/// never engages ([`AdmissionPolicy::AcceptAll`] with nothing to refuse).
/// Under a streaming arrival process the policy decides whether a
/// machine drowning in overlapping rundowns keeps accepting work,
/// defers it, or sheds it — and the report accounts for the choice
/// (`jobs_rejected`, per-job latency measured from *arrival*, so a
/// deferred job's queueing delay is visible in p99).
///
/// ```
/// use pax_sim::machine::{AdmissionPolicy, MachineConfig};
///
/// let m = MachineConfig::new(4).with_admission(AdmissionPolicy::Shed { max_in_flight: 8 });
/// assert!(m.validate().is_ok());
/// // Zero capacity can never admit anything and is rejected at build.
/// let bad = MachineConfig::new(4)
///     .with_admission(AdmissionPolicy::BoundedDefer { max_in_flight: 0 });
/// assert!(bad.validate().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit every arrival immediately. The default, and the only policy
    /// a closed (all arrivals at t=0) run ever exercises.
    #[default]
    AcceptAll,
    /// Admit at most `max_in_flight` uncompleted jobs; later arrivals
    /// wait in an admission queue (FIFO) and enter as completions free
    /// capacity. Nothing is lost — latency absorbs the backpressure.
    BoundedDefer {
        /// Maximum number of admitted-but-unfinished jobs (≥ 1).
        max_in_flight: usize,
    },
    /// Admit at most `max_in_flight` uncompleted jobs; arrivals beyond
    /// that are rejected outright and counted in `jobs_rejected` (their
    /// `JobReport` is marked rejected and excluded from percentiles).
    Shed {
        /// Maximum number of admitted-but-unfinished jobs (≥ 1).
        max_in_flight: usize,
    },
}

/// Which waiting-queue segments a processor class may serve.
///
/// The waiting computation queue has two scheduling classes (elevated
/// conflict-released work ahead of normal phase work); affinity restricts
/// which of them a worker drawn from a [`ProcessorClass`] may pop. The
/// default, [`ClassAffinity::Any`], is the homogeneous behaviour. A
/// machine whose classes collectively cannot serve both segments is
/// rejected at validation ([`ConfigError::UncoveredQueueClass`]), since
/// work queued in an unservable segment would wait forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassAffinity {
    /// Serve either queue segment — the homogeneous default.
    #[default]
    Any,
    /// Serve only elevated (conflict-released / enabling) work.
    ElevatedOnly,
    /// Serve only normal phase work.
    NormalOnly,
}

impl ClassAffinity {
    /// Whether this affinity may pop elevated-segment work.
    pub fn serves_elevated(self) -> bool {
        !matches!(self, ClassAffinity::NormalOnly)
    }

    /// Whether this affinity may pop normal-segment work.
    pub fn serves_normal(self) -> bool {
        !matches!(self, ClassAffinity::ElevatedOnly)
    }
}

/// One speed class in a heterogeneous processor pool.
///
/// Classes partition the machine's workers: the first
/// [`ProcessorClass::count`] workers belong to the first declared class,
/// the next to the second, and so on ([`MachineConfig::validate`] requires
/// the counts to sum to `processors`). Each task's sampled duration is
/// scaled by the *dispatching* worker's class speed, after the cost model
/// has drawn its random value — so heterogeneity never changes how many
/// random draws a run makes, and a 100-percent class is bit-identical to
/// the homogeneous machine.
///
/// ```
/// use pax_sim::machine::{ClassAffinity, MachineConfig, ProcessorClass};
///
/// // Two fast workers (half duration) alongside six nominal ones.
/// let m = MachineConfig::new(8).with_classes(vec![
///     ProcessorClass::new("fast", 2, 200),
///     ProcessorClass::new("base", 6, 100),
/// ]);
/// assert!(m.validate().is_ok());
/// assert_eq!(m.classes[0].scale_ticks(1000), 500); // 200 % speed
/// assert_eq!(m.classes[1].scale_ticks(1000), 1000); // nominal
/// assert_eq!(m.classes[0].affinity, ClassAffinity::Any);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorClass {
    /// Class name, used in per-class report accounting.
    pub name: String,
    /// Number of workers in this class (≥ 1; counts must sum to
    /// `processors`).
    pub count: usize,
    /// Speed as a percentage of nominal: 100 = nominal, 200 = twice as
    /// fast (durations halve), 50 = half speed (durations double).
    /// Stored as an integer so duration scaling is exact and
    /// deterministic; zero is rejected at validation.
    pub speed_percent: u32,
    /// Which waiting-queue segments this class's workers may serve.
    pub affinity: ClassAffinity,
}

impl ProcessorClass {
    /// A class of `count` workers at `speed_percent` of nominal speed,
    /// serving any queue segment.
    pub fn new(name: impl Into<String>, count: usize, speed_percent: u32) -> ProcessorClass {
        ProcessorClass {
            name: name.into(),
            count,
            speed_percent,
            affinity: ClassAffinity::Any,
        }
    }

    /// Builder-style: restrict which queue segments the class serves.
    pub fn with_affinity(mut self, affinity: ClassAffinity) -> ProcessorClass {
        self.affinity = affinity;
        self
    }

    /// Scale a sampled task duration (in ticks) by this class's speed:
    /// `ceil(ticks × 100 / speed_percent)`, computed in 128-bit so large
    /// durations cannot overflow. At 100 percent this is exactly the
    /// identity, which is what keeps a speed-100 class bit-identical to
    /// the homogeneous machine.
    pub fn scale_ticks(&self, ticks: u64) -> u64 {
        debug_assert!(self.speed_percent > 0, "validated at session build");
        let p = u128::from(self.speed_percent.max(1));
        (u128::from(ticks) * 100).div_ceil(p) as u64
    }
}

/// A named pool of secondary-resource tokens (operators, licenses,
/// fixtures — anything a task needs *in addition to* a processor).
///
/// A phase that declares `requires: ["operator"]` dispatches a task only
/// when a worker **and** one token from every named pool are available;
/// the tokens are held for the task's whole execution and returned when
/// it completes — or when a processor crash preempts it, so fault
/// injection cannot leak tokens and break determinism.
///
/// ```
/// use pax_sim::machine::{MachineConfig, ResourcePool};
///
/// let m = MachineConfig::new(8)
///     .with_resources(vec![ResourcePool::new("operator", 3)]);
/// assert!(m.validate().is_ok());
/// assert_eq!(m.resources[0].tokens, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourcePool {
    /// Pool name, referenced by phase `requires` lists and report rows.
    pub name: String,
    /// Number of tokens in the pool (≥ 1; zero is rejected at
    /// validation, because a task requiring an empty pool could never
    /// dispatch).
    pub tokens: u32,
}

impl ResourcePool {
    /// A pool named `name` holding `tokens` tokens.
    pub fn new(name: impl Into<String>, tokens: u32) -> ResourcePool {
        ResourcePool {
            name: name.into(),
            tokens,
        }
    }
}

/// A structured machine-configuration error, produced by
/// [`MachineConfig::validate`] once at session build.
///
/// The builder setters themselves are infallible — a config is data and
/// may pass through invalid intermediate states while being assembled —
/// and validation happens exactly once, when a `Simulation` is turned
/// into a session (or run). This replaces the scattered constructor
/// panics the setters used to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `processors == 0`: the machine has no workers to run granules.
    ZeroProcessors,
    /// `executive_lanes == 0`: the executive has no service lanes.
    ZeroExecutiveLanes,
    /// `shards.shards == 0`: the run has no shard to execute on.
    ZeroShards,
    /// An admission policy with `max_in_flight == 0` can never admit
    /// any job at all.
    ZeroAdmissionCapacity,
    /// Declared processor-class counts do not sum to `processors`.
    ClassCountMismatch {
        /// Sum of all [`ProcessorClass::count`] values.
        classes_total: usize,
        /// The machine's `processors` field the sum must equal.
        processors: usize,
    },
    /// A processor class with `count == 0` contributes no workers.
    ZeroClassCount {
        /// Index of the offending class in `classes`.
        class: usize,
    },
    /// A processor class with `speed_percent == 0` would run forever.
    ZeroClassSpeed {
        /// Index of the offending class in `classes`.
        class: usize,
    },
    /// Two processor classes share a name, making per-class report rows
    /// ambiguous.
    DuplicateClassName {
        /// Index of the *second* occurrence in `classes`.
        class: usize,
    },
    /// The declared classes collectively cannot serve both waiting-queue
    /// segments (e.g. every class is `ElevatedOnly`), so work queued in
    /// the unserved segment would wait forever.
    UncoveredQueueClass,
    /// A resource pool with `tokens == 0` can never satisfy a requiring
    /// task.
    ZeroPoolTokens {
        /// Index of the offending pool in `resources`.
        pool: usize,
    },
    /// Two resource pools share a name, making `requires` references
    /// ambiguous.
    DuplicatePoolName {
        /// Index of the *second* occurrence in `resources`.
        pool: usize,
    },
    /// A `CalendarKind::HierWheel` with `levels == 0` has no rings at
    /// all. (Slot and tick counts clamp; a zero level count is always a
    /// config mistake.)
    ZeroCalendarLevels,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroProcessors => write!(f, "machine needs at least one processor"),
            ConfigError::ZeroExecutiveLanes => write!(f, "need at least one executive lane"),
            ConfigError::ZeroShards => write!(f, "need at least one shard"),
            ConfigError::ZeroAdmissionCapacity => {
                write!(f, "admission policy needs max_in_flight >= 1")
            }
            ConfigError::ClassCountMismatch {
                classes_total,
                processors,
            } => write!(
                f,
                "processor class counts sum to {classes_total} but the machine has {processors} processors"
            ),
            ConfigError::ZeroClassCount { class } => {
                write!(f, "processor class {class} has count 0")
            }
            ConfigError::ZeroClassSpeed { class } => {
                write!(f, "processor class {class} has speed_percent 0")
            }
            ConfigError::DuplicateClassName { class } => {
                write!(f, "processor class {class} repeats an earlier class name")
            }
            ConfigError::UncoveredQueueClass => write!(
                f,
                "class affinities leave a waiting-queue segment with no processor able to serve it"
            ),
            ConfigError::ZeroPoolTokens { pool } => {
                write!(f, "resource pool {pool} has 0 tokens")
            }
            ConfigError::DuplicatePoolName { pool } => {
                write!(f, "resource pool {pool} repeats an earlier pool name")
            }
            ConfigError::ZeroCalendarLevels => {
                write!(f, "hierarchical calendar needs at least one level")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete machine description for a simulation run.
///
/// Assembled with infallible builder setters and checked once by
/// [`MachineConfig::validate`] at session build:
///
/// ```
/// use pax_sim::machine::{AdmissionPolicy, MachineConfig, ProcessorClass, ResourcePool};
///
/// let m = MachineConfig::new(8)
///     .with_executive_lanes(2)
///     .with_admission(AdmissionPolicy::BoundedDefer { max_in_flight: 6 })
///     .with_classes(vec![
///         ProcessorClass::new("fast", 2, 200),
///         ProcessorClass::new("base", 6, 100),
///     ])
///     .with_resources(vec![ResourcePool::new("operator", 3)]);
/// assert!(m.validate().is_ok());
///
/// // Class counts must cover the whole pool; errors are typed.
/// let bad = MachineConfig::new(8).with_classes(vec![ProcessorClass::new("fast", 2, 200)]);
/// assert!(bad.validate().is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of worker processors.
    pub processors: usize,
    /// Where management computation executes.
    pub executive: ExecutivePlacement,
    /// Itemized management costs.
    pub costs: ManagementCosts,
    /// Number of parallel executive service lanes. PAX's management was
    /// serial (lanes = 1); the paper names "a middle management scheme to
    /// parallelize the serial management function" as a strategy under
    /// development, which larger values model.
    pub executive_lanes: usize,
    /// Optional clustered-memory model. `None` (the default) is uniform
    /// memory: every access costs the same from every processor. `Some`
    /// adds per-granule remote stalls and gives the scheduler's
    /// data-proximity assignment policy something to optimize (the third
    /// strategy the paper names as under development).
    pub locality: Option<LocalityModel>,
    /// Future-event list implementation. Both choices pop bit-identically;
    /// [`CalendarKind::TimeWheel`] trades a fixed bucket ring for
    /// amortized `O(1)` scheduling on event-dense runs.
    pub calendar: CalendarKind,
    /// Event-drain batching per executive service round (bounded by
    /// [`MachineConfig::executive_lanes`]); every mode is run-identical.
    pub batch: BatchPolicy,
    /// Run-storage layout for the executive's granule-run sets. Both
    /// choices are result-identical; [`RunStorageKind::ChunkedRuns`]
    /// trades per-chunk summaries for O(chunk) bridging inserts on
    /// fragmented phases.
    pub run_storage: RunStorageKind,
    /// Sharding policy for multi-group simulations. Every shard count is
    /// result-identical; counts > 1 let the threaded driver in
    /// `pax-runtime` drain independent machine groups in parallel.
    pub shards: ShardPolicy,
    /// Admission policy for streaming arrivals (open-system service
    /// mode). [`AdmissionPolicy::AcceptAll`] — the default — admits
    /// every job on arrival and is the only policy a closed batch ever
    /// exercises, so the golden shapes are untouched.
    pub admission: AdmissionPolicy,
    /// Optional processor fault-injection plan. `None` (the default) is a
    /// failure-free machine — and costs zero extra random draws, so the
    /// golden shapes are untouched. `Some` makes crashes a deterministic
    /// scenario axis: crash/repair streams come from a dedicated RNG
    /// split from the scenario seed, so faulty runs stay bit-identical
    /// across shard counts and shard drivers. On a fleet, every machine
    /// group replica experiences the plan in its own local time.
    pub faults: Option<FaultPlan>,
    /// Heterogeneous processor classes. Empty (the default) is the
    /// homogeneous machine — every worker nominal speed, any queue
    /// segment — and takes exactly the homogeneous dispatch path, so the
    /// golden shapes are untouched and zero extra random draws occur.
    /// Non-empty classes partition the workers in declaration order;
    /// [`MachineConfig::validate`] requires the counts to sum to
    /// `processors`.
    pub classes: Vec<ProcessorClass>,
    /// Secondary-resource token pools. Empty (the default) means tasks
    /// need only a processor. A phase declaring `requires` names pools
    /// here; a task dispatches only when a worker and one token from
    /// every required pool are available, and tokens are returned on
    /// completion *and* on crash preemption.
    pub resources: Vec<ResourcePool>,
}

impl MachineConfig {
    /// A machine with `processors` workers, dedicated executive, and
    /// default PAX costs. Infallible — `processors == 0` is reported as
    /// [`ConfigError::ZeroProcessors`] by [`MachineConfig::validate`]
    /// at session build.
    pub fn new(processors: usize) -> MachineConfig {
        MachineConfig {
            processors,
            executive: ExecutivePlacement::Dedicated,
            costs: ManagementCosts::pax_default(),
            executive_lanes: 1,
            locality: None,
            calendar: CalendarKind::BinaryHeap,
            batch: BatchPolicy::default(),
            run_storage: RunStorageKind::default(),
            shards: ShardPolicy::default(),
            admission: AdmissionPolicy::default(),
            faults: None,
            classes: Vec::new(),
            resources: Vec::new(),
        }
    }

    /// An idealized frictionless machine (free management, dedicated
    /// executive) — used where the paper reasons with pure arithmetic.
    pub fn ideal(processors: usize) -> MachineConfig {
        MachineConfig {
            processors,
            executive: ExecutivePlacement::Dedicated,
            costs: ManagementCosts::free(),
            executive_lanes: 1,
            locality: None,
            calendar: CalendarKind::BinaryHeap,
            batch: BatchPolicy::default(),
            run_storage: RunStorageKind::default(),
            shards: ShardPolicy::default(),
            admission: AdmissionPolicy::default(),
            faults: None,
            classes: Vec::new(),
            resources: Vec::new(),
        }
    }

    /// Check the assembled config for structural validity. Called once
    /// at session build (`Simulation::into_session` / `run`); the
    /// builder setters themselves never panic or clamp.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.processors == 0 {
            return Err(ConfigError::ZeroProcessors);
        }
        if self.executive_lanes == 0 {
            return Err(ConfigError::ZeroExecutiveLanes);
        }
        if self.shards.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        match self.admission {
            AdmissionPolicy::BoundedDefer { max_in_flight }
            | AdmissionPolicy::Shed { max_in_flight }
                if max_in_flight == 0 =>
            {
                return Err(ConfigError::ZeroAdmissionCapacity);
            }
            _ => {}
        }
        if !self.classes.is_empty() {
            let mut total = 0usize;
            let mut elevated_served = false;
            let mut normal_served = false;
            for (i, c) in self.classes.iter().enumerate() {
                if c.count == 0 {
                    return Err(ConfigError::ZeroClassCount { class: i });
                }
                if c.speed_percent == 0 {
                    return Err(ConfigError::ZeroClassSpeed { class: i });
                }
                if self.classes[..i].iter().any(|p| p.name == c.name) {
                    return Err(ConfigError::DuplicateClassName { class: i });
                }
                total += c.count;
                elevated_served |= c.affinity.serves_elevated();
                normal_served |= c.affinity.serves_normal();
            }
            if total != self.processors {
                return Err(ConfigError::ClassCountMismatch {
                    classes_total: total,
                    processors: self.processors,
                });
            }
            if !(elevated_served && normal_served) {
                return Err(ConfigError::UncoveredQueueClass);
            }
        }
        for (i, p) in self.resources.iter().enumerate() {
            if p.tokens == 0 {
                return Err(ConfigError::ZeroPoolTokens { pool: i });
            }
            if self.resources[..i].iter().any(|q| q.name == p.name) {
                return Err(ConfigError::DuplicatePoolName { pool: i });
            }
        }
        if let CalendarKind::HierWheel { levels: 0, .. } = self.calendar {
            return Err(ConfigError::ZeroCalendarLevels);
        }
        Ok(())
    }

    /// Builder-style: set the number of executive lanes (middle
    /// management extension). Infallible — a zero count is reported as
    /// [`ConfigError::ZeroExecutiveLanes`] at session build.
    pub fn with_executive_lanes(mut self, lanes: usize) -> MachineConfig {
        self.executive_lanes = lanes;
        self
    }

    /// Builder-style: set executive placement.
    pub fn with_executive(mut self, placement: ExecutivePlacement) -> MachineConfig {
        self.executive = placement;
        self
    }

    /// Builder-style: set management costs.
    pub fn with_costs(mut self, costs: ManagementCosts) -> MachineConfig {
        self.costs = costs;
        self
    }

    /// Builder-style: attach a clustered-memory model.
    pub fn with_locality(mut self, locality: LocalityModel) -> MachineConfig {
        self.locality = Some(locality);
        self
    }

    /// Builder-style: choose the future-event list implementation.
    pub fn with_calendar(mut self, calendar: CalendarKind) -> MachineConfig {
        self.calendar = calendar;
        self
    }

    /// Builder-style: set the executive's event-drain batching policy.
    pub fn with_batch_policy(mut self, batch: BatchPolicy) -> MachineConfig {
        self.batch = batch;
        self
    }

    /// Builder-style: choose the run-storage layout for granule-run sets.
    pub fn with_run_storage(mut self, storage: RunStorageKind) -> MachineConfig {
        self.run_storage = storage;
        self
    }

    /// Builder-style: set the sharding policy for multi-group runs.
    pub fn with_shards(mut self, shards: ShardPolicy) -> MachineConfig {
        self.shards = shards;
        self
    }

    /// Builder-style: set the admission policy for streaming arrivals.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> MachineConfig {
        self.admission = admission;
        self
    }

    /// Builder-style: attach a processor fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> MachineConfig {
        self.faults = Some(faults);
        self
    }

    /// Builder-style: declare heterogeneous processor classes.
    /// Infallible — count/speed/affinity problems are reported by
    /// [`MachineConfig::validate`] at session build.
    pub fn with_classes(mut self, classes: Vec<ProcessorClass>) -> MachineConfig {
        self.classes = classes;
        self
    }

    /// Builder-style: declare secondary-resource token pools.
    /// Infallible — empty pools and duplicate names are reported by
    /// [`MachineConfig::validate`] at session build.
    pub fn with_resources(mut self, resources: Vec<ResourcePool>) -> MachineConfig {
        self.resources = resources;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_machine_is_free() {
        let m = MachineConfig::ideal(8);
        assert_eq!(m.costs, ManagementCosts::free());
        assert_eq!(m.executive, ExecutivePlacement::Dedicated);
        assert_eq!(m.processors, 8);
    }

    #[test]
    fn scaling_costs() {
        let c = ManagementCosts::pax_default().scaled(10);
        assert_eq!(c.dispatch, SimDuration(10));
        assert_eq!(c.split, SimDuration(20));
    }

    #[test]
    fn builder_chain() {
        let m = MachineConfig::new(4)
            .with_executive(ExecutivePlacement::StealsWorker)
            .with_costs(ManagementCosts::free())
            .with_calendar(CalendarKind::time_wheel());
        assert_eq!(m.executive, ExecutivePlacement::StealsWorker);
        assert_eq!(m.costs.dispatch, SimDuration::ZERO);
        assert!(matches!(m.calendar, CalendarKind::TimeWheel { .. }));
        assert_eq!(MachineConfig::new(4).calendar, CalendarKind::BinaryHeap);
    }

    #[test]
    fn batch_policy_defaults_and_builder() {
        // Batched drains are the default; `Single` is the pinned
        // reference mode the equivalence tests diff against.
        assert_eq!(MachineConfig::new(4).batch, BatchPolicy::Coincident);
        assert_eq!(MachineConfig::ideal(4).batch, BatchPolicy::Coincident);
        let m = MachineConfig::new(4)
            .with_executive_lanes(16)
            .with_batch_policy(BatchPolicy::Lookahead { horizon: 8 });
        assert_eq!(m.batch, BatchPolicy::Lookahead { horizon: 8 });
        assert_eq!(m.executive_lanes, 16);
        let s = MachineConfig::new(4).with_batch_policy(BatchPolicy::Single);
        assert_eq!(s.batch, BatchPolicy::Single);
    }

    #[test]
    fn zero_processors_rejected_at_validation() {
        // Construction is infallible; the structural error surfaces
        // exactly once, at session build.
        assert_eq!(
            MachineConfig::new(0).validate(),
            Err(ConfigError::ZeroProcessors)
        );
        assert_eq!(
            MachineConfig::new(4).with_executive_lanes(0).validate(),
            Err(ConfigError::ZeroExecutiveLanes)
        );
        assert_eq!(MachineConfig::new(4).validate(), Ok(()));
    }

    #[test]
    fn zero_calendar_levels_rejected_at_validation() {
        let bad = MachineConfig::new(4).with_calendar(CalendarKind::HierWheel {
            slots: 256,
            bucket_ticks: 1,
            levels: 0,
        });
        assert_eq!(bad.validate(), Err(ConfigError::ZeroCalendarLevels));
        assert!(ConfigError::ZeroCalendarLevels
            .to_string()
            .contains("at least one level"));
        for ok in [
            CalendarKind::hier_wheel(),
            CalendarKind::hier_wheel_coarse(16),
            CalendarKind::Auto,
        ] {
            assert_eq!(MachineConfig::new(4).with_calendar(ok).validate(), Ok(()));
        }
    }

    #[test]
    fn run_storage_defaults_and_builder() {
        // The contiguous Vec layout stays the default until the chunked
        // backend earns it on the storage_scaling data (see ROADMAP).
        assert_eq!(MachineConfig::new(4).run_storage, RunStorageKind::VecRuns);
        assert_eq!(MachineConfig::ideal(4).run_storage, RunStorageKind::VecRuns);
        let m = MachineConfig::new(4).with_run_storage(RunStorageKind::chunked());
        assert_eq!(
            m.run_storage,
            RunStorageKind::ChunkedRuns {
                chunk_runs: DEFAULT_CHUNK_RUNS
            }
        );
        let m =
            MachineConfig::new(4).with_run_storage(RunStorageKind::ChunkedRuns { chunk_runs: 8 });
        assert_eq!(m.run_storage, RunStorageKind::ChunkedRuns { chunk_runs: 8 });
    }

    #[test]
    fn shard_policy_defaults_and_builder() {
        // One shard (the classic single-threaded drive loop) stays the
        // default; higher counts are a host-performance knob pinned
        // result-identical by the equivalence suite.
        assert_eq!(MachineConfig::new(4).shards, ShardPolicy::single());
        assert_eq!(MachineConfig::ideal(4).shards, ShardPolicy::single());
        assert_eq!(ShardPolicy::default().shards, 1);
        let m = MachineConfig::new(4).with_shards(ShardPolicy::new(8));
        assert_eq!(m.shards.shards, 8);
    }

    #[test]
    fn zero_shards_rejected_at_validation() {
        assert_eq!(
            MachineConfig::new(4)
                .with_shards(ShardPolicy::new(0))
                .validate(),
            Err(ConfigError::ZeroShards)
        );
        assert_eq!(
            MachineConfig::new(4)
                .with_shards(ShardPolicy::new(8))
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn admission_defaults_and_validation() {
        // Accept-all stays the default — the only policy a closed batch
        // exercises, so golden shapes are untouched.
        assert_eq!(MachineConfig::new(4).admission, AdmissionPolicy::AcceptAll);
        assert_eq!(
            MachineConfig::ideal(4).admission,
            AdmissionPolicy::AcceptAll
        );
        let m = MachineConfig::new(4)
            .with_admission(AdmissionPolicy::BoundedDefer { max_in_flight: 8 });
        assert_eq!(
            m.admission,
            AdmissionPolicy::BoundedDefer { max_in_flight: 8 }
        );
        assert_eq!(m.validate(), Ok(()));
        for bad in [
            AdmissionPolicy::BoundedDefer { max_in_flight: 0 },
            AdmissionPolicy::Shed { max_in_flight: 0 },
        ] {
            assert_eq!(
                MachineConfig::new(4).with_admission(bad).validate(),
                Err(ConfigError::ZeroAdmissionCapacity)
            );
        }
        // Errors render as readable messages.
        assert!(ConfigError::ZeroProcessors
            .to_string()
            .contains("processor"));
    }

    #[test]
    fn faults_default_and_builder() {
        // Failure-free stays the default — no plan, no extra RNG draws,
        // golden shapes untouched.
        assert_eq!(MachineConfig::new(4).faults, None);
        assert_eq!(MachineConfig::ideal(4).faults, None);
        let plan = crate::faults::FaultPlan::random(
            crate::dist::DurationDist::exponential(10_000),
            crate::dist::DurationDist::constant(500),
        )
        .with_retry(crate::faults::RetryPolicy::Abandon);
        let m = MachineConfig::new(4).with_faults(plan.clone());
        assert_eq!(m.faults, Some(plan));
    }

    #[test]
    fn classes_default_and_builder() {
        // Homogeneous stays the default — no classes, no scaling, golden
        // shapes untouched.
        assert!(MachineConfig::new(4).classes.is_empty());
        assert!(MachineConfig::ideal(4).classes.is_empty());
        let m = MachineConfig::new(4).with_classes(vec![
            ProcessorClass::new("fast", 1, 200).with_affinity(ClassAffinity::Any),
            ProcessorClass::new("slow", 3, 50),
        ]);
        assert_eq!(m.classes.len(), 2);
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn class_validation_rules() {
        let base = MachineConfig::new(4);
        assert_eq!(
            base.clone()
                .with_classes(vec![ProcessorClass::new("a", 3, 100)])
                .validate(),
            Err(ConfigError::ClassCountMismatch {
                classes_total: 3,
                processors: 4
            })
        );
        assert_eq!(
            base.clone()
                .with_classes(vec![
                    ProcessorClass::new("a", 4, 100),
                    ProcessorClass::new("b", 0, 100)
                ])
                .validate(),
            Err(ConfigError::ZeroClassCount { class: 1 })
        );
        assert_eq!(
            base.clone()
                .with_classes(vec![ProcessorClass::new("a", 4, 0)])
                .validate(),
            Err(ConfigError::ZeroClassSpeed { class: 0 })
        );
        assert_eq!(
            base.clone()
                .with_classes(vec![
                    ProcessorClass::new("a", 2, 100),
                    ProcessorClass::new("a", 2, 200)
                ])
                .validate(),
            Err(ConfigError::DuplicateClassName { class: 1 })
        );
        // Every class elevated-only leaves normal work unserved.
        assert_eq!(
            base.clone()
                .with_classes(vec![
                    ProcessorClass::new("a", 4, 100).with_affinity(ClassAffinity::ElevatedOnly)
                ])
                .validate(),
            Err(ConfigError::UncoveredQueueClass)
        );
        // A normal-only + elevated-only split covers both segments.
        assert_eq!(
            base.with_classes(vec![
                ProcessorClass::new("a", 2, 100).with_affinity(ClassAffinity::NormalOnly),
                ProcessorClass::new("b", 2, 100).with_affinity(ClassAffinity::ElevatedOnly),
            ])
            .validate(),
            Ok(())
        );
    }

    #[test]
    fn resource_validation_rules() {
        assert!(MachineConfig::new(4).resources.is_empty());
        let m = MachineConfig::new(4).with_resources(vec![
            ResourcePool::new("operator", 3),
            ResourcePool::new("license", 1),
        ]);
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(
            MachineConfig::new(4)
                .with_resources(vec![ResourcePool::new("operator", 0)])
                .validate(),
            Err(ConfigError::ZeroPoolTokens { pool: 0 })
        );
        assert_eq!(
            MachineConfig::new(4)
                .with_resources(vec![
                    ResourcePool::new("operator", 1),
                    ResourcePool::new("operator", 2)
                ])
                .validate(),
            Err(ConfigError::DuplicatePoolName { pool: 1 })
        );
        assert!(ConfigError::UncoveredQueueClass
            .to_string()
            .contains("segment"));
    }

    #[test]
    fn speed_scaling_is_exact_and_ceil() {
        let nominal = ProcessorClass::new("n", 1, 100);
        for t in [0u64, 1, 7, 100, 1_000_000_007] {
            assert_eq!(nominal.scale_ticks(t), t, "100 % must be identity");
        }
        let fast = ProcessorClass::new("f", 1, 200);
        assert_eq!(fast.scale_ticks(1000), 500);
        assert_eq!(fast.scale_ticks(7), 4); // ceil(3.5)
        let slow = ProcessorClass::new("s", 1, 50);
        assert_eq!(slow.scale_ticks(1000), 2000);
        let odd = ProcessorClass::new("o", 1, 300);
        assert_eq!(odd.scale_ticks(10), 4); // ceil(10/3)
    }

    #[test]
    fn affinity_segment_coverage() {
        assert!(ClassAffinity::Any.serves_elevated());
        assert!(ClassAffinity::Any.serves_normal());
        assert!(ClassAffinity::ElevatedOnly.serves_elevated());
        assert!(!ClassAffinity::ElevatedOnly.serves_normal());
        assert!(!ClassAffinity::NormalOnly.serves_elevated());
        assert!(ClassAffinity::NormalOnly.serves_normal());
    }
}
