//! Data-locality model: memory clusters, data homes, remote-access stalls.
//!
//! The paper names "a data-proximity work assignment algorithm" as one of
//! the management strategies identified for development (alongside middle
//! management and lateral worker-to-worker communication), motivated by the
//! observation that in PAX/CASPER "shared information access times were
//! unpredictable and unrepeatable from instance to instance".
//!
//! This module supplies the machine-side half of that strategy: processors
//! and granule data are partitioned into **clusters** (memory modules); a
//! granule executed by a worker outside its home cluster pays a fixed
//! per-granule **remote stall**. The scheduler-side half — preferring
//! waiting work whose data is proximate to the seeking worker — lives in
//! `pax-core` ([`AssignmentPolicy::DataProximity`]) and is measured by
//! experiment E12.
//!
//! [`AssignmentPolicy::DataProximity`]: ../../pax_core/policy/enum.AssignmentPolicy.html

use crate::time::SimDuration;

/// How a phase's granule data is distributed across memory clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLayout {
    /// Contiguous blocks: cluster `c` owns granules
    /// `[c·⌈N/C⌉, (c+1)·⌈N/C⌉) ∩ [0, N)`. The natural layout for the
    /// paper's array sweeps (`DO 100 I=1,N`), where consecutive loop
    /// indices touch consecutive storage.
    Block,
    /// Round-robin: granule `g` lives in cluster `g mod C`. Models
    /// interleaved memory; contiguous task ranges then straddle every
    /// cluster, which defeats proximity assignment (measured in E12).
    Cyclic,
}

/// A clustered-memory machine extension.
///
/// `clusters` memory modules; workers are block-partitioned across
/// clusters; each granule of a phase has a *home* cluster per
/// [`DataLayout`]. Executing a granule away from home adds
/// `remote_extra` ticks of stall to the task's execution time.
///
/// ```
/// use pax_sim::locality::{DataLayout, LocalityModel};
/// use pax_sim::time::SimDuration;
///
/// let loc = LocalityModel::new(4, SimDuration(5));
/// // 400 granules, block layout: granule 150 lives in cluster 1
/// assert_eq!(loc.home_cluster(150, 400), 1);
/// // 16 workers over 4 clusters: worker 13 sits in cluster 3
/// assert_eq!(loc.worker_cluster(13, 16), 3);
/// // granules [90,110) of 400 seen from cluster 0: granules 100..110 are
/// // remote (cluster 1)
/// assert_eq!(loc.remote_granules(90, 110, 400, 0), 10);
/// assert_eq!(loc.stall(10), SimDuration(50));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalityModel {
    /// Number of memory clusters (≥ 1).
    pub clusters: usize,
    /// Granule-to-cluster data distribution.
    pub layout: DataLayout,
    /// Extra ticks per granule executed outside its home cluster.
    pub remote_extra: SimDuration,
}

impl LocalityModel {
    /// Block-layout model with `clusters` clusters and `remote_extra`
    /// ticks of stall per remote granule.
    pub fn new(clusters: usize, remote_extra: SimDuration) -> LocalityModel {
        assert!(clusters > 0, "need at least one cluster");
        LocalityModel {
            clusters,
            layout: DataLayout::Block,
            remote_extra,
        }
    }

    /// Builder-style: set the data layout.
    pub fn with_layout(mut self, layout: DataLayout) -> LocalityModel {
        self.layout = layout;
        self
    }

    /// Home cluster of granule `g` in a phase of `total` granules.
    pub fn home_cluster(&self, g: u32, total: u32) -> usize {
        match self.layout {
            DataLayout::Block => {
                let block = Self::block_size(total, self.clusters);
                ((g / block) as usize).min(self.clusters - 1)
            }
            DataLayout::Cyclic => g as usize % self.clusters,
        }
    }

    /// Cluster of worker `w` in a pool of `processors` workers
    /// (block-partitioned; always block — processors sit next to one
    /// memory module regardless of how data is spread).
    pub fn worker_cluster(&self, w: usize, processors: usize) -> usize {
        let block = Self::block_size(processors as u32, self.clusters) as usize;
        (w / block).min(self.clusters - 1)
    }

    /// Number of granules in `[lo, hi)` (of a phase with `total`
    /// granules) whose home is *not* `cluster`.
    pub fn remote_granules(&self, lo: u32, hi: u32, total: u32, cluster: usize) -> u64 {
        debug_assert!(lo <= hi && hi <= total);
        let len = (hi - lo) as u64;
        let local = match self.layout {
            DataLayout::Block => {
                let block = Self::block_size(total, self.clusters);
                // cluster owns [c*block, min((c+1)*block, total)), except the
                // last cluster also absorbs any capped tail
                let own_lo = (cluster as u32).saturating_mul(block).min(total);
                let own_hi = if cluster == self.clusters - 1 {
                    total
                } else {
                    (cluster as u32 + 1).saturating_mul(block).min(total)
                };
                let l = lo.max(own_lo);
                let h = hi.min(own_hi);
                u64::from(h.saturating_sub(l))
            }
            DataLayout::Cyclic => {
                // granules g in [lo,hi) with g % clusters == cluster
                let c = self.clusters as u32;
                let r = cluster as u32;
                let count_below = |x: u32| -> u64 {
                    // granules < x congruent to r (mod c)
                    if x > r {
                        u64::from((x - r - 1) / c + 1)
                    } else {
                        0
                    }
                };
                count_below(hi) - count_below(lo)
            }
        };
        len - local
    }

    /// Total stall for `remote` remote granules.
    pub fn stall(&self, remote: u64) -> SimDuration {
        self.remote_extra * remote
    }

    /// `⌈n/c⌉`, minimum 1, so every cluster owns a non-empty block when
    /// `n ≥ c` and small pools degenerate gracefully.
    fn block_size(n: u32, c: usize) -> u32 {
        n.div_ceil(c as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_home_partition_covers_all_clusters() {
        let loc = LocalityModel::new(4, SimDuration(1));
        let total = 100;
        // 100/4 = 25 per block
        assert_eq!(loc.home_cluster(0, total), 0);
        assert_eq!(loc.home_cluster(24, total), 0);
        assert_eq!(loc.home_cluster(25, total), 1);
        assert_eq!(loc.home_cluster(99, total), 3);
    }

    #[test]
    fn block_home_uneven_total_caps_at_last_cluster() {
        let loc = LocalityModel::new(4, SimDuration(1));
        // 10 granules, block = ceil(10/4) = 3: owners 0,0,0,1,1,1,2,2,2,3
        let homes: Vec<usize> = (0..10).map(|g| loc.home_cluster(g, 10)).collect();
        assert_eq!(homes, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn cyclic_home_is_modular() {
        let loc = LocalityModel::new(3, SimDuration(1)).with_layout(DataLayout::Cyclic);
        let homes: Vec<usize> = (0..7).map(|g| loc.home_cluster(g, 7)).collect();
        assert_eq!(homes, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn worker_clusters_block_partitioned() {
        let loc = LocalityModel::new(4, SimDuration(1));
        let cl: Vec<usize> = (0..16).map(|w| loc.worker_cluster(w, 16)).collect();
        assert_eq!(cl[0..4], [0, 0, 0, 0]);
        assert_eq!(cl[4..8], [1, 1, 1, 1]);
        assert_eq!(cl[12..16], [3, 3, 3, 3]);
    }

    #[test]
    fn more_clusters_than_workers_degenerates() {
        let loc = LocalityModel::new(8, SimDuration(1));
        // 2 workers, 8 clusters: block=1, workers 0 and 1 in clusters 0 and 1
        assert_eq!(loc.worker_cluster(0, 2), 0);
        assert_eq!(loc.worker_cluster(1, 2), 1);
    }

    #[test]
    fn remote_count_block_matches_brute_force() {
        let loc = LocalityModel::new(4, SimDuration(1));
        let total = 103;
        for cluster in 0..4 {
            for lo in (0..total).step_by(7) {
                for hi in (lo..=total).step_by(11) {
                    let brute = (lo..hi)
                        .filter(|&g| loc.home_cluster(g, total) != cluster)
                        .count() as u64;
                    assert_eq!(
                        loc.remote_granules(lo, hi, total, cluster),
                        brute,
                        "block lo={lo} hi={hi} cluster={cluster}"
                    );
                }
            }
        }
    }

    #[test]
    fn remote_count_cyclic_matches_brute_force() {
        let loc = LocalityModel::new(3, SimDuration(1)).with_layout(DataLayout::Cyclic);
        let total = 50;
        for cluster in 0..3 {
            for lo in 0..total {
                for hi in lo..=total {
                    let brute = (lo..hi)
                        .filter(|&g| loc.home_cluster(g, total) != cluster)
                        .count() as u64;
                    assert_eq!(
                        loc.remote_granules(lo, hi, total, cluster),
                        brute,
                        "cyclic lo={lo} hi={hi} cluster={cluster}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_cluster_never_remote() {
        let loc = LocalityModel::new(1, SimDuration(9));
        assert_eq!(loc.home_cluster(42, 100), 0);
        assert_eq!(loc.worker_cluster(7, 8), 0);
        assert_eq!(loc.remote_granules(0, 100, 100, 0), 0);
    }

    #[test]
    fn stall_scales_with_remote_count() {
        let loc = LocalityModel::new(2, SimDuration(7));
        assert_eq!(loc.stall(0), SimDuration::ZERO);
        assert_eq!(loc.stall(13), SimDuration(91));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        let _ = LocalityModel::new(0, SimDuration(1));
    }
}
