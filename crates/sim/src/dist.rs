//! Granule execution-time distributions.
//!
//! The paper's experience base (PAX/CASPER) is explicit that granule times
//! were *not* definite: "Most computations ... could not even be ascribed
//! with definite execution times. In some instances, whether or not the
//! computation was even to be carried out ... was a conditional part of the
//! algorithm. ... shared information access times were unpredictable and
//! unrepeatable from instance to instance."
//!
//! `DurationDist` models each of those effects:
//! * [`DurationDist::Constant`] — the checkerboard ideal ("nominally, the
//!   time for four additions and a divide").
//! * [`DurationDist::Uniform`] / [`DurationDist::Exponential`] — unpredictable
//!   access times.
//! * [`DurationDist::Bimodal`] — a mix of short and long granules.
//! * The `skip_probability` on [`CostModel`] — conditionally executed
//!   computations that turn out to be no-ops.

use crate::time::{SimDuration, SimTime};
use rand::Rng;

/// A distribution over granule execution times, sampled in whole ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum DurationDist {
    /// Every sample is exactly `0` ticks... never useful alone, but the
    /// identity for composition and the result of a skipped computation.
    Zero,
    /// Every granule takes exactly this long (the idealized checkerboard).
    Constant(SimDuration),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Smallest sample.
        lo: SimDuration,
        /// Largest sample.
        hi: SimDuration,
    },
    /// Exponential with the given mean, truncated to at least 1 tick.
    /// Models memoryless service-time jitter.
    Exponential {
        /// Mean of the distribution.
        mean: SimDuration,
    },
    /// With probability `p_long` sample from `long`, otherwise from `short`.
    Bimodal {
        /// Distribution of the common, short granules.
        short: Box<DurationDist>,
        /// Distribution of the rare, long granules.
        long: Box<DurationDist>,
        /// Probability of drawing from `long`.
        p_long: f64,
    },
}

impl DurationDist {
    /// Convenience constructor for a constant distribution.
    pub fn constant(ticks: u64) -> DurationDist {
        DurationDist::Constant(SimDuration(ticks))
    }

    /// Convenience constructor for a uniform distribution over `[lo, hi]`.
    pub fn uniform(lo: u64, hi: u64) -> DurationDist {
        assert!(lo <= hi, "uniform distribution requires lo <= hi");
        DurationDist::Uniform {
            lo: SimDuration(lo),
            hi: SimDuration(hi),
        }
    }

    /// Convenience constructor for an exponential distribution.
    pub fn exponential(mean: u64) -> DurationDist {
        DurationDist::Exponential {
            mean: SimDuration(mean),
        }
    }

    /// Convenience constructor for a bimodal mix of two constants.
    pub fn bimodal(short: u64, long: u64, p_long: f64) -> DurationDist {
        assert!((0.0..=1.0).contains(&p_long), "p_long must be in [0,1]");
        DurationDist::Bimodal {
            short: Box::new(DurationDist::constant(short)),
            long: Box::new(DurationDist::constant(long)),
            p_long,
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match self {
            DurationDist::Zero => SimDuration::ZERO,
            DurationDist::Constant(d) => *d,
            DurationDist::Uniform { lo, hi } => SimDuration(rng.gen_range(lo.0..=hi.0)),
            DurationDist::Exponential { mean } => {
                if mean.0 == 0 {
                    return SimDuration::ZERO;
                }
                // Inverse-transform sampling; clamp u away from 1.0 so that
                // ln never sees 0, and round to at least one tick so that a
                // "real" computation always advances time.
                let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
                let t = -(mean.0 as f64) * (1.0 - u).ln();
                SimDuration((t.round() as u64).max(1))
            }
            DurationDist::Bimodal {
                short,
                long,
                p_long,
            } => {
                if rng.gen::<f64>() < *p_long {
                    long.sample(rng)
                } else {
                    short.sample(rng)
                }
            }
        }
    }

    /// Analytical mean of the distribution, in ticks (floating point).
    pub fn mean_ticks(&self) -> f64 {
        match self {
            DurationDist::Zero => 0.0,
            DurationDist::Constant(d) => d.0 as f64,
            DurationDist::Uniform { lo, hi } => (lo.0 + hi.0) as f64 / 2.0,
            DurationDist::Exponential { mean } => mean.0 as f64,
            DurationDist::Bimodal {
                short,
                long,
                p_long,
            } => short.mean_ticks() * (1.0 - p_long) + long.mean_ticks() * p_long,
        }
    }
}

/// The full per-granule cost model: an execution-time distribution plus a
/// probability that the granule turns out to be conditionally skipped
/// (it still must be dispatched and completed, but consumes only
/// `skipped_cost` of processor time).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Distribution of execution time for granules that actually run.
    pub dist: DurationDist,
    /// Probability the computation is conditionally not carried out.
    pub skip_probability: f64,
    /// Time consumed by a skipped granule (testing its condition).
    pub skipped_cost: SimDuration,
}

impl CostModel {
    /// A model where every granule runs with the given distribution.
    pub fn new(dist: DurationDist) -> CostModel {
        CostModel {
            dist,
            skip_probability: 0.0,
            skipped_cost: SimDuration::ZERO,
        }
    }

    /// A constant-cost model (the idealized checkerboard granule).
    pub fn constant(ticks: u64) -> CostModel {
        CostModel::new(DurationDist::constant(ticks))
    }

    /// Add conditional skipping to the model.
    pub fn with_skip(mut self, probability: f64, skipped_cost: u64) -> CostModel {
        assert!(
            (0.0..=1.0).contains(&probability),
            "skip probability must be in [0,1]"
        );
        self.skip_probability = probability;
        self.skipped_cost = SimDuration(skipped_cost);
        self
    }

    /// Sample the execution time of one granule instance.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        if self.skip_probability > 0.0 && rng.gen::<f64>() < self.skip_probability {
            self.skipped_cost
        } else {
            self.dist.sample(rng)
        }
    }

    /// Expected execution time of one granule, in ticks.
    pub fn mean_ticks(&self) -> f64 {
        self.dist.mean_ticks() * (1.0 - self.skip_probability)
            + self.skipped_cost.0 as f64 * self.skip_probability
    }
}

/// When new jobs arrive into a long-lived, open-system simulation.
///
/// A closed batch admits every job at time zero; a *service* admits jobs
/// while earlier ones are still running down. The arrival process decides
/// the admission instants. Arrivals are expanded to concrete instants
/// **before** the run starts (from a dedicated, domain-separated RNG —
/// see [`arrival_seed`]), so the engine's task-sampling RNG consumes zero
/// extra draws and closed-system runs stay bit-identical to the goldens.
///
/// ```
/// use pax_sim::dist::ArrivalProcess;
/// use pax_sim::time::SimTime;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// // A trace replays its instants exactly (sorted, no RNG draws) ...
/// let trace = ArrivalProcess::trace(vec![SimTime(250), SimTime(0), SimTime(100)]);
/// let mut rng = SmallRng::seed_from_u64(7);
/// assert_eq!(
///     trace.instants(3, &mut rng),
///     vec![SimTime(0), SimTime(100), SimTime(250)],
/// );
///
/// // ... while a Poisson source draws exactly `count` gaps from the rng.
/// let poisson = ArrivalProcess::poisson(200);
/// let arrivals = poisson.instants(4, &mut rng);
/// assert_eq!(arrivals.len(), 4);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted ascending");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: independent exponential inter-arrival gaps
    /// with the given mean (the classic open-system M/·/· source). The
    /// first arrival lands one gap after time zero.
    Poisson {
        /// Mean inter-arrival gap, in ticks.
        mean: SimDuration,
    },
    /// Trace-driven arrivals: jobs are admitted at exactly these instants
    /// (sorted ascending; replayed as-given, no randomness).
    Trace(Vec<SimTime>),
}

impl ArrivalProcess {
    /// Poisson arrivals with the given mean inter-arrival gap in ticks.
    pub fn poisson(mean_gap_ticks: u64) -> ArrivalProcess {
        ArrivalProcess::Poisson {
            mean: SimDuration(mean_gap_ticks),
        }
    }

    /// Trace-driven arrivals at the given instants (sorted internally so
    /// callers can list them in any order).
    pub fn trace(mut instants: Vec<SimTime>) -> ArrivalProcess {
        instants.sort_unstable();
        ArrivalProcess::Trace(instants)
    }

    /// Expand the process into `count` concrete admission instants,
    /// sorted ascending. A trace shorter than `count` yields only the
    /// instants it has; Poisson always yields exactly `count`.
    pub fn instants<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<SimTime> {
        match self {
            ArrivalProcess::Poisson { mean } => {
                let gap = DurationDist::Exponential { mean: *mean };
                let mut t = SimTime::ZERO;
                (0..count)
                    .map(|_| {
                        t += gap.sample(rng);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Trace(instants) => instants.iter().take(count).copied().collect(),
        }
    }

    /// Mean inter-arrival gap in ticks (floating point). For a trace this
    /// is the average gap over the recorded instants (0.0 when fewer than
    /// two instants exist).
    pub fn mean_gap_ticks(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { mean } => mean.0 as f64,
            ArrivalProcess::Trace(instants) => match (instants.first(), instants.last()) {
                (Some(first), Some(last)) if instants.len() > 1 => {
                    (last.0 - first.0) as f64 / (instants.len() - 1) as f64
                }
                _ => 0.0,
            },
        }
    }
}

/// Deterministic seed for the dedicated arrival RNG of job stream
/// `stream` in a simulation whose scenario seed is `seed`.
///
/// Arrival instants must never share the engine's task-sampling RNG:
/// with a shared stream, merely attaching an arrival process would
/// perturb every sampled task time and break the t=0 ≡ batch-golden
/// contract. A splitmix64 finalizer over a domain- and stream-separated
/// seed gives each stream an independent, reproducible sequence that is
/// also stable across shard counts (expansion happens before sharding).
pub fn arrival_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        ^ 0x0000_A221_77A1_5EED_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn constant_is_constant() {
        let d = DurationDist::constant(42);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), SimDuration(42));
        }
        assert_eq!(d.mean_ticks(), 42.0);
    }

    #[test]
    fn uniform_within_bounds() {
        let d = DurationDist::uniform(10, 20);
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!(s >= SimDuration(10) && s <= SimDuration(20));
        }
        assert_eq!(d.mean_ticks(), 15.0);
    }

    #[test]
    fn exponential_mean_approximately_right() {
        let d = DurationDist::exponential(100);
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| d.sample(&mut r).0).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 100.0).abs() < 5.0,
            "empirical mean {mean} too far from 100"
        );
    }

    #[test]
    fn exponential_never_zero() {
        let d = DurationDist::exponential(2);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r).0 >= 1);
        }
    }

    #[test]
    fn bimodal_mixes() {
        let d = DurationDist::bimodal(1, 100, 0.25);
        let mut r = rng();
        let samples: Vec<u64> = (0..4000).map(|_| d.sample(&mut r).0).collect();
        let longs = samples.iter().filter(|&&s| s == 100).count();
        let frac = longs as f64 / samples.len() as f64;
        assert!((frac - 0.25).abs() < 0.05, "long fraction {frac}");
        assert!((d.mean_ticks() - (0.75 + 25.0)).abs() < 1e-9);
    }

    #[test]
    fn skip_probability_reduces_mean() {
        let m = CostModel::constant(100).with_skip(0.5, 2);
        assert!((m.mean_ticks() - 51.0).abs() < 1e-9);
        let mut r = rng();
        let n = 10_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut r).0).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 51.0).abs() < 2.0, "empirical mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = DurationDist::uniform(0, 1_000_000);
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut r).0).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut r).0).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_rejects_inverted_bounds() {
        let _ = DurationDist::uniform(5, 1);
    }

    #[test]
    fn poisson_arrivals_are_sorted_positive_and_deterministic() {
        let p = ArrivalProcess::poisson(250);
        let a = p.instants(500, &mut SmallRng::seed_from_u64(7));
        let b = p.instants(500, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a[0] > SimTime::ZERO, "first arrival lands after t=0");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "instants sorted");
        let mean_gap = a.last().unwrap().0 as f64 / a.len() as f64;
        assert!(
            (mean_gap - 250.0).abs() < 30.0,
            "empirical mean gap {mean_gap} too far from 250"
        );
        assert_eq!(p.mean_gap_ticks(), 250.0);
    }

    #[test]
    fn trace_arrivals_replay_sorted_and_truncate() {
        let p = ArrivalProcess::trace(vec![SimTime(30), SimTime(10), SimTime(20)]);
        let mut r = rng();
        assert_eq!(
            p.instants(10, &mut r),
            vec![SimTime(10), SimTime(20), SimTime(30)]
        );
        assert_eq!(p.instants(2, &mut r), vec![SimTime(10), SimTime(20)]);
        assert_eq!(p.mean_gap_ticks(), 10.0);
        assert_eq!(ArrivalProcess::trace(vec![]).mean_gap_ticks(), 0.0);
    }

    #[test]
    fn arrival_seed_is_deterministic_and_stream_separated() {
        assert_eq!(arrival_seed(7, 0), arrival_seed(7, 0));
        assert_ne!(arrival_seed(7, 0), arrival_seed(7, 1));
        assert_ne!(arrival_seed(7, 0), arrival_seed(8, 0));
        assert_ne!(arrival_seed(7, 0), 7);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn skip_rejects_bad_probability() {
        let _ = CostModel::constant(1).with_skip(1.5, 0);
    }
}
