//! Property-based tests for the simulation substrate.

use pax_sim::calendar::{Calendar, CalendarKind, TimeWheel};
use pax_sim::event::EventQueue;
use pax_sim::metrics::step::StepTrace;
use pax_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Every calendar backend: single-level wheels across the slot/tick
/// grid, hierarchical wheels with geometries small enough that random
/// schedules constantly cross level boundaries (cascades, jumps,
/// overflow), and the self-tuning backend (exercised with periodic
/// rebalance checkpoints by the tests below).
fn arb_backend() -> impl Strategy<Value = CalendarKind> {
    prop_oneof![
        (1usize..700, 1u64..60).prop_map(|(slots, bucket_ticks)| CalendarKind::TimeWheel {
            slots,
            bucket_ticks
        }),
        (1usize..40, 1u64..30, 1usize..5).prop_map(|(slots, bucket_ticks, levels)| {
            CalendarKind::HierWheel {
                slots,
                bucket_ticks,
                levels,
            }
        }),
        Just(CalendarKind::Auto),
    ]
}

proptest! {
    /// The bucketed time wheel pops bit-identically to the binary-heap
    /// event queue on randomized schedules: same times, same payloads,
    /// same tie-break order — including events past the wheel horizon
    /// (overflow rail), schedules interleaved with pops, and coarse
    /// buckets holding several due times each.
    #[test]
    fn time_wheel_matches_heap_on_random_schedules(
        slots in 1usize..700,
        bucket_ticks in 1u64..60,
        ops in proptest::collection::vec((0u64..3000, 1usize..6, proptest::bool::ANY), 1..120),
    ) {
        let mut wheel = TimeWheel::with_bucket_ticks(slots, bucket_ticks);
        let mut heap = EventQueue::new();
        let mut now = 0u64;
        let mut id = 0u64;
        for &(dt, burst, do_pop) in &ops {
            // Schedule a burst at or after `now` (the executive's
            // contract: never into the past).
            for k in 0..burst {
                let at = SimTime(now + (dt + k as u64 * 37) % 3000);
                wheel.schedule(at, id);
                heap.schedule(at, id);
                id += 1;
            }
            if do_pop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b, "pop divergence");
                if let Some((t, _)) = a {
                    now = t.0;
                }
            }
        }
        // Drain both completely.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
    }

    /// Every calendar backend — wheels of any geometry, hierarchical
    /// wheels (cascades, level-boundary crossings, jumps), and the
    /// self-tuning backend under periodic rebalance checkpoints — pops
    /// bit-identically to the binary heap on randomized schedules,
    /// including far-future events that overshoot every level.
    #[test]
    fn calendar_backends_match_heap_on_random_schedules(
        backend in arb_backend(),
        ops in proptest::collection::vec(
            (0u64..3000, 1usize..6, proptest::bool::ANY, proptest::bool::ANY),
            1..120,
        ),
    ) {
        let mut cal: Calendar<u64> = Calendar::from_kind(backend);
        let mut heap = EventQueue::new();
        let mut now = 0u64;
        let mut id = 0u64;
        for (step, &(dt, burst, do_pop, far)) in ops.iter().enumerate() {
            for k in 0..burst {
                // `far` bursts leap orders of magnitude ahead, crossing
                // hierarchical level boundaries (and usually the top
                // horizon) in one hop.
                let stretch = if far { 977 } else { 1 };
                let at = SimTime(now + ((dt + k as u64 * 37) % 3000) * stretch);
                cal.schedule(at, id);
                heap.schedule(at, id);
                id += 1;
            }
            if do_pop {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b, "pop divergence");
                if let Some((t, _)) = a {
                    now = t.0;
                }
            }
            if step % 16 == 15 {
                // Rebalance checkpoint: a no-op on concrete backends, a
                // possible retune on Auto — either way order-preserving.
                cal.rebalance();
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b, "drain divergence");
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(cal.scheduled_total(), heap.scheduled_total());
    }

    /// Batch pops are a pure regrouping of single pops: on any schedule
    /// (including overflow-rail traffic and interleaved scheduling), both
    /// calendar backends drain identical coincident groups, and the
    /// concatenation of those groups equals the single-pop event order.
    #[test]
    fn pop_coincident_is_a_regrouped_pop_order(
        slots in 1usize..300,
        bucket_ticks in 1u64..40,
        max in 1usize..9,
        ops in proptest::collection::vec((0u64..2000, 1usize..6, proptest::bool::ANY), 1..100),
    ) {
        use pax_sim::calendar::TimeWheel;
        let mut wheel = TimeWheel::with_bucket_ticks(slots, bucket_ticks);
        let mut heap = EventQueue::new();
        let mut reference = EventQueue::new();
        let mut now = 0u64;
        let mut id = 0u64;
        let (mut wo, mut ho) = (Vec::new(), Vec::new());
        for &(dt, burst, do_pop) in &ops {
            for k in 0..burst {
                let at = SimTime(now + (dt + k as u64 * 41) % 2000);
                wheel.schedule(at, id);
                heap.schedule(at, id);
                reference.schedule(at, id);
                id += 1;
            }
            if do_pop {
                let nw = wheel.pop_coincident_into(max, &mut wo);
                let nh = heap.pop_coincident_into(max, &mut ho);
                prop_assert_eq!(nw, nh, "batch size divergence");
                let batch = &wo[wo.len() - nw..];
                // all coincident, and exactly the next nw single pops
                prop_assert!(batch.iter().all(|&(t, _)| Some(t) == batch.first().map(|b| b.0)));
                for got in batch {
                    prop_assert_eq!(Some(*got), reference.pop(), "regrouping divergence");
                }
                if let Some(&(t, _)) = batch.last() {
                    now = t.0;
                }
            }
        }
        loop {
            let nw = wheel.pop_coincident_into(max, &mut wo);
            let nh = heap.pop_coincident_into(max, &mut ho);
            prop_assert_eq!(nw, nh);
            for got in &wo[wo.len() - nw..] {
                prop_assert_eq!(Some(*got), reference.pop());
            }
            if nw == 0 {
                break;
            }
        }
        prop_assert_eq!(wo, ho, "backends must drain identical batches");
        prop_assert_eq!(reference.pop(), None);
    }

    /// The batch-regrouping property holds on every backend: coincident
    /// groups drained from any calendar equal the next single pops of a
    /// reference heap, through cascades, retunes, and overflow traffic.
    #[test]
    fn pop_coincident_regroups_on_every_backend(
        backend in arb_backend(),
        max in 1usize..9,
        ops in proptest::collection::vec(
            (0u64..2000, 1usize..6, proptest::bool::ANY, proptest::bool::ANY),
            1..100,
        ),
    ) {
        let mut cal: Calendar<u64> = Calendar::from_kind(backend);
        let mut reference = EventQueue::new();
        let mut now = 0u64;
        let mut id = 0u64;
        let mut out = Vec::new();
        for (step, &(dt, burst, do_pop, far)) in ops.iter().enumerate() {
            for k in 0..burst {
                let stretch = if far { 977 } else { 1 };
                let at = SimTime(now + ((dt + k as u64 * 41) % 2000) * stretch);
                cal.schedule(at, id);
                reference.schedule(at, id);
                id += 1;
            }
            if do_pop {
                // peek must name the batch's time before the drain
                let peeked = cal.peek_time();
                let n = cal.pop_coincident_into(max, &mut out);
                let batch = &out[out.len() - n..];
                prop_assert_eq!(peeked, batch.first().map(|b| b.0), "peek divergence");
                prop_assert!(batch.iter().all(|&(t, _)| Some(t) == batch.first().map(|b| b.0)));
                for got in batch {
                    prop_assert_eq!(Some(*got), reference.pop(), "regrouping divergence");
                }
                if let Some(&(t, _)) = batch.last() {
                    now = t.0;
                }
            }
            if step % 16 == 15 {
                cal.rebalance();
            }
        }
        loop {
            let n = cal.pop_coincident_into(max, &mut out);
            for got in &out[out.len() - n..] {
                prop_assert_eq!(Some(*got), reference.pop());
            }
            if n == 0 {
                break;
            }
        }
        prop_assert_eq!(reference.pop(), None);
    }

    /// `peek_time` never lies: it always names the time of the next pop.
    #[test]
    fn time_wheel_peek_matches_pop(
        slots in 1usize..100,
        times in proptest::collection::vec(0u64..5000, 1..80),
    ) {
        // All schedules happen before the first pop, so the cursor is
        // still at zero and any future time is legal.
        let mut wheel = TimeWheel::new(slots);
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(SimTime(t), i);
        }
        while let Some(peeked) = wheel.peek_time() {
            let (t, _) = wheel.pop().expect("peek implies pending");
            prop_assert_eq!(peeked, t);
        }
        prop_assert!(wheel.is_empty());
    }

    /// Hierarchical `peek_time` never lies either — including fronts
    /// past the next level-1 boundary, where a coarser level or the
    /// overflow rail may hold the true minimum.
    #[test]
    fn hier_peek_matches_pop(
        slots in 1usize..20,
        bucket_ticks in 1u64..20,
        levels in 1usize..5,
        times in proptest::collection::vec(0u64..200_000, 1..80),
    ) {
        let mut wheel = pax_sim::calendar::HierWheel::new(slots, bucket_ticks, levels);
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(SimTime(t), i);
        }
        while let Some(peeked) = wheel.peek_time() {
            let (t, _) = wheel.pop().expect("peek implies pending");
            prop_assert_eq!(peeked, t);
        }
        prop_assert!(wheel.is_empty());
    }

    /// Events always pop in non-decreasing time order, and equal-time
    /// events pop in insertion order.
    #[test]
    fn event_queue_pops_sorted_stable(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated at equal times");
            }
        }
    }

    /// The integral over a window equals the sum of integrals over any
    /// partition of that window.
    #[test]
    fn step_trace_integral_is_additive(
        changes in proptest::collection::vec((0u64..500, 0u32..16), 1..60),
        split in 0u64..500,
    ) {
        let mut sorted = changes.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut tr = StepTrace::new();
        for (t, v) in sorted {
            tr.record(SimTime(t), v);
        }
        let a = SimTime(0);
        let m = SimTime(split);
        let b = SimTime(600);
        let whole = tr.integral(a, b);
        let parts = tr.integral(a, m) + tr.integral(m, b);
        prop_assert_eq!(whole, parts);
    }

    /// Utilization is always within [0, 1] when capacity bounds the trace.
    #[test]
    fn utilization_bounded(
        changes in proptest::collection::vec((0u64..300, 0u32..8), 1..40),
    ) {
        let mut sorted = changes.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut tr = StepTrace::new();
        for (t, v) in sorted {
            tr.record(SimTime(t), v);
        }
        let u = tr.utilization(8, SimTime(0), SimTime(400));
        prop_assert!((0.0..=1.0).contains(&u), "utilization {} out of range", u);
    }

    /// idle_time + integral == capacity * window whenever the trace never
    /// exceeds capacity.
    #[test]
    fn idle_plus_busy_is_capacity(
        changes in proptest::collection::vec((0u64..300, 0u32..=8), 1..40),
    ) {
        let mut sorted = changes.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut tr = StepTrace::new();
        for (t, v) in sorted {
            tr.record(SimTime(t), v);
        }
        let from = SimTime(0);
        let to = SimTime(400);
        let busy = tr.integral(from, to);
        let idle = tr.idle_time(8, from, to);
        prop_assert_eq!(busy + idle, 8 * 400);
    }

    /// Sampling any distribution with the same seed yields identical
    /// sequences (workspace-wide determinism guarantee).
    #[test]
    fn distributions_deterministic(seed in 0u64..u64::MAX, mean in 1u64..10_000) {
        use pax_sim::dist::DurationDist;
        let d = DurationDist::exponential(mean);
        let mut r1 = pax_sim::seeded_rng(seed);
        let mut r2 = pax_sim::seeded_rng(seed);
        for _ in 0..32 {
            prop_assert_eq!(d.sample(&mut r1), d.sample(&mut r2));
        }
    }

    /// value_at agrees with a naive scan of the change points.
    #[test]
    fn value_at_matches_naive(
        changes in proptest::collection::vec((0u64..200, 0u32..10), 1..30),
        query in 0u64..250,
    ) {
        let mut sorted = changes.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut tr = StepTrace::new();
        for (t, v) in &sorted {
            tr.record(SimTime(*t), *v);
        }
        // naive: last recorded value at or before query
        let mut expect = 0u32;
        for &(t, v) in &sorted {
            if t <= query {
                expect = v;
            }
        }
        prop_assert_eq!(tr.value_at(SimTime(query)), expect);
    }
}

#[test]
fn duration_saturating_ops() {
    assert_eq!(
        SimDuration(3).saturating_sub(SimDuration(10)),
        SimDuration::ZERO
    );
}

mod locality_props {
    use pax_sim::locality::{DataLayout, LocalityModel};
    use pax_sim::time::SimDuration;
    use proptest::prelude::*;

    fn arb_layout() -> impl Strategy<Value = DataLayout> {
        prop_oneof![Just(DataLayout::Block), Just(DataLayout::Cyclic)]
    }

    proptest! {
        /// Every granule's home cluster is a valid cluster index.
        #[test]
        fn home_cluster_in_range(
            clusters in 1usize..9,
            total in 1u32..500,
            layout in arb_layout(),
        ) {
            let loc = LocalityModel::new(clusters, SimDuration(1)).with_layout(layout);
            for g in 0..total {
                prop_assert!(loc.home_cluster(g, total) < clusters);
            }
        }

        /// Worker clusters are valid and non-decreasing in worker id
        /// (block partition).
        #[test]
        fn worker_cluster_in_range_and_monotone(
            clusters in 1usize..9,
            processors in 1usize..64,
        ) {
            let loc = LocalityModel::new(clusters, SimDuration(1));
            let mut prev = 0usize;
            for w in 0..processors {
                let c = loc.worker_cluster(w, processors);
                prop_assert!(c < clusters);
                prop_assert!(c >= prev, "block partition must be monotone");
                prev = c;
            }
        }

        /// Closed-form remote counts equal brute-force counts for every
        /// layout, range, and cluster.
        #[test]
        fn remote_count_matches_brute_force(
            clusters in 1usize..7,
            total in 1u32..200,
            layout in arb_layout(),
            lo_frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
            cluster_sel in 0usize..7,
        ) {
            let loc = LocalityModel::new(clusters, SimDuration(1)).with_layout(layout);
            let cluster = cluster_sel % clusters;
            let lo = ((total as f64) * lo_frac) as u32;
            let hi = lo + (((total - lo) as f64) * len_frac) as u32;
            let brute = (lo..hi)
                .filter(|&g| loc.home_cluster(g, total) != cluster)
                .count() as u64;
            prop_assert_eq!(loc.remote_granules(lo, hi, total, cluster), brute);
        }

        /// Summing local counts across all clusters covers the range
        /// exactly once: Σ_c local(c) == len.
        #[test]
        fn local_counts_partition_the_range(
            clusters in 1usize..7,
            total in 1u32..200,
            layout in arb_layout(),
        ) {
            let loc = LocalityModel::new(clusters, SimDuration(1)).with_layout(layout);
            let len = u64::from(total);
            let total_local: u64 = (0..clusters)
                .map(|c| len - loc.remote_granules(0, total, total, c))
                .sum();
            prop_assert_eq!(total_local, len);
        }
    }
}
