//! Round-trip and property tests for the PAX language front end.

use pax_core::policy::OverlapPolicy;
use pax_lang::{compile, lex, parse, run_script, MapBindings, Tok};
use pax_sim::machine::MachineConfig;
use proptest::prelude::*;

/// Generate a random linear script with universal/identity mappings and
/// check it parses, compiles, and runs to completion in both modes.
fn make_script(phases: usize, granules: u32, mappings: &[u8]) -> String {
    let mut s = String::new();
    for i in 0..phases {
        s.push_str(&format!(
            "DEFINE PHASE ph-{i} GRANULES {granules} COST CONST 10 LINES {}\n",
            10 + i
        ));
    }
    for i in 0..phases {
        if i + 1 < phases {
            let mapping = match mappings[i % mappings.len()] % 3 {
                0 => "UNIVERSAL",
                1 => "IDENTITY",
                _ => "NULL",
            };
            s.push_str(&format!(
                "DISPATCH ph-{i} ENABLE [ph-{}/MAPPING={mapping}]\n",
                i + 1
            ));
        } else {
            s.push_str(&format!("DISPATCH ph-{i}\n"));
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_scripts_compile_and_run(
        phases in 1usize..7,
        granules in 1u32..40,
        mappings in proptest::collection::vec(0u8..3, 1..6),
        procs in 1usize..6,
    ) {
        let src = make_script(phases, granules, &mappings);
        let script = parse(&src).expect("parses");
        let compiled = compile(&script, &MapBindings::new()).expect("compiles");
        prop_assert_eq!(compiled.program.phases.len(), phases);
        let report = run_script(
            &src,
            &MapBindings::new(),
            MachineConfig::ideal(procs),
            OverlapPolicy::overlap(),
        )
        .expect("runs");
        prop_assert_eq!(report.phases.len(), phases);
        for p in &report.phases {
            prop_assert_eq!(p.stats.executed_granules, granules);
        }
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(input in "\\PC*") {
        let _ = lex(&input);
    }

    /// The parser never panics on arbitrary token-ish input.
    #[test]
    fn parser_total(input in "[A-Za-z0-9 /=\\[\\]():.,\n-]*") {
        let _ = parse(&input);
    }

    /// Identifiers round-trip through the lexer.
    #[test]
    fn identifiers_roundtrip(name in "[a-zA-Z][a-zA-Z0-9_-]{0,20}") {
        let toks = lex(&name).unwrap();
        prop_assert_eq!(toks.len(), 2); // ident + eof
        match &toks[0].tok {
            Tok::Ident(s) => prop_assert_eq!(s, &name),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Integers round-trip.
    #[test]
    fn integers_roundtrip(n in 0u64..1_000_000_000) {
        let toks = lex(&n.to_string()).unwrap();
        prop_assert_eq!(&toks[0].tok, &Tok::Int(n));
    }
}

/// Structural comparison that ignores source positions.
fn shape(script: &pax_lang::Script) -> String {
    format!("{:?}", script.stmts)
        .split("pos: Pos")
        .map(|part| part.split_once('}').map(|(_, rest)| rest).unwrap_or(part))
        .collect::<Vec<_>>()
        .join("")
}

#[test]
fn comments_and_whitespace_insensitive() {
    let a = parse("DISPATCH x ! trailing\n").unwrap();
    let b = parse("   DISPATCH    x   ").unwrap();
    assert_eq!(shape(&a), shape(&b));
}

#[test]
fn case_insensitive_keywords() {
    let s = parse("dispatch p enable [q/mapping=identity]").unwrap();
    let t = parse("DISPATCH p ENABLE [q/MAPPING=IDENTITY]").unwrap();
    assert_eq!(shape(&s), shape(&t));
}

#[test]
fn deeply_nested_loops_compile() {
    let src = "
        DEFINE PHASE body GRANULES 4 COST CONST 5
        outer:
        inner:
        DISPATCH body
        INCREMENT J
        IF (J .LT. 3) THEN GO TO inner
        INCREMENT I
        INCREMENT J BY 0
        IF (I .LT. 2) THEN GO TO outer
    ";
    let report = run_script(
        src,
        &MapBindings::new(),
        MachineConfig::ideal(2),
        OverlapPolicy::strict(),
    )
    .unwrap();
    // J counts to 3 then keeps its value: iterations = 3 (inner) then
    // outer loops once more but inner exits immediately... trace the
    // semantics: dispatches happen while J<3 regardless of I; total
    // dispatch count is the number of times `DISPATCH body` executes.
    assert!(!report.phases.is_empty());
    assert!(report.jobs[0].finished_at.is_some());
}

#[test]
fn serial_statement_timing_visible_in_report() {
    let src = "
        DEFINE PHASE a GRANULES 4 COST CONST 10
        DEFINE PHASE b GRANULES 4 COST CONST 10
        DISPATCH a
        SERIAL 500 long-decision
        DISPATCH b
    ";
    let report = run_script(
        src,
        &MapBindings::new(),
        MachineConfig::ideal(4),
        OverlapPolicy::strict(),
    )
    .unwrap();
    assert_eq!(report.serial_time.ticks(), 500);
    assert_eq!(report.phases[1].stats.serial_gap.ticks(), 500);
    assert_eq!(report.makespan.ticks(), 10 + 500 + 10);
}
