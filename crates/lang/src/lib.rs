//! # pax-lang — the paper's language construct
//!
//! The paper proposes language support for declaring phase-overlap
//! enablement, in four escalating forms:
//!
//! 1. `DISPATCH phase-name ENABLE/MAPPING=option` — "simple and explicit;
//!    however, it leaves the door wide open to user mistakes."
//! 2. `DISPATCH phase-name ENABLE [phase-name/MAPPING=option]` — names the
//!    successor "so that the executive system (or language processor) can
//!    verify that, in fact, that phase is following."
//! 3. `ENABLE/BRANCHINDEPENDENT [p1/MAPPING=o1 p2/MAPPING=o2]` followed by
//!    `IF (IMOD(LOOPCOUNTER,10).NE.0) THEN GO TO …` — the executive
//!    preprocesses the branch and overlaps the phase actually taken.
//! 4. `DEFINE PHASE p ENABLE […]` + `DISPATCH p ENABLE/BRANCHDEPENDENT` —
//!    mapping selections are matched when the phase is defined; the
//!    invocation site only flags whether branches may be preprocessed.
//!
//! This crate implements all four: a lexer/parser ([`parser::parse`]), a
//! compiler with the interlock verification ([`compile::compile`]), and a
//! one-call runner ([`run_script`]).
//!
//! ```
//! use pax_lang::{parse, compile, MapBindings};
//!
//! let script = parse("
//!     DEFINE PHASE sweep GRANULES 64 COST CONST 10
//!     DEFINE PHASE relax GRANULES 64 COST CONST 10
//!     DISPATCH sweep ENABLE [relax/MAPPING=IDENTITY]
//!     DISPATCH relax
//! ").unwrap();
//! let compiled = compile(&script, &MapBindings::new()).unwrap();
//! assert_eq!(compiled.program.phases.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod parser;
pub mod token;

pub use ast::{
    AstStmt, CondExpr, CostSpec, DefinePhase, EnableClause, EnableItem, MappingOption, Script,
};
pub use compile::{compile, CompileError, Compiled, Diagnostic, MapBindings};
pub use parser::{parse, ParseError};
pub use token::{lex, LexError, Pos, Tok, Token};

use pax_core::engine::{EngineError, Simulation};
use pax_core::policy::OverlapPolicy;
use pax_core::report::RunReport;
use pax_sim::machine::MachineConfig;

/// Errors from the end-to-end script runner.
#[derive(Debug)]
pub enum ScriptError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Compilation failed.
    Compile(CompileError),
    /// The simulation failed.
    Engine(EngineError),
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Parse(e) => write!(f, "{e}"),
            ScriptError::Compile(e) => write!(f, "{e}"),
            ScriptError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// Parse, compile, and run a script on the given machine and policy.
pub fn run_script(
    src: &str,
    bindings: &MapBindings,
    machine: MachineConfig,
    policy: OverlapPolicy,
) -> Result<RunReport, ScriptError> {
    let script = parse(src).map_err(ScriptError::Parse)?;
    let compiled = compile(&script, bindings).map_err(ScriptError::Compile)?;
    let mut sim = Simulation::new(machine, policy);
    sim.add_job(compiled.program);
    sim.run().map_err(ScriptError::Engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_script_end_to_end() {
        let report = run_script(
            "
            DEFINE PHASE a GRANULES 12 COST CONST 10
            DEFINE PHASE b GRANULES 12 COST CONST 10
            DISPATCH a ENABLE [b/MAPPING=IDENTITY]
            DISPATCH b
            ",
            &MapBindings::new(),
            MachineConfig::ideal(4),
            OverlapPolicy::overlap(),
        )
        .unwrap();
        assert_eq!(report.phases.len(), 2);
        assert!(report.jobs[0].finished_at.is_some());
    }

    #[test]
    fn run_script_surfaces_parse_errors() {
        let err = run_script(
            "DISPATCH",
            &MapBindings::new(),
            MachineConfig::ideal(2),
            OverlapPolicy::strict(),
        )
        .unwrap_err();
        assert!(matches!(err, ScriptError::Parse(_)));
    }

    #[test]
    fn run_script_surfaces_compile_errors() {
        let err = run_script(
            "DISPATCH ghost",
            &MapBindings::new(),
            MachineConfig::ideal(2),
            OverlapPolicy::strict(),
        )
        .unwrap_err();
        assert!(matches!(err, ScriptError::Compile(_)));
    }
}
