//! Compilation of parsed scripts into executable [`Program`]s, including
//! the executive-verifiable interlock checks the paper motivates.

use crate::ast::*;
use crate::token::Pos;
use pax_core::mapping::{EnablementMapping, MappingKind};
use pax_core::phase::PhaseDef;
use pax_core::program::{BranchTest, EnableSpec, Program, Step};
use pax_sim::dist::{CostModel, DurationDist};
use std::collections::HashMap;
use std::fmt;

/// A compile-time diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// True for errors (compilation fails), false for warnings.
    pub error: bool,
    /// Message.
    pub message: String,
    /// Source position.
    pub pos: Pos,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {}: {}",
            if self.error { "error" } else { "warning" },
            self.pos,
            self.message
        )
    }
}

/// Compile failure: the list of diagnostics (at least one error).
#[derive(Debug, Clone)]
pub struct CompileError {
    /// All diagnostics gathered before failing.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {}

/// Bindings from `(current-phase, successor-phase)` pairs to concrete
/// indirect mappings. The language names only the mapping *kind*
/// (`MAPPING=REVERSE`); the actual information-selection maps are runtime
/// data — "dynamically generated" in both PAX/CASPER occurrences — so the
/// host program supplies them here, exactly as PAX bound named
/// computations to code.
#[derive(Debug, Clone, Default)]
pub struct MapBindings {
    maps: HashMap<(String, String), EnablementMapping>,
}

impl MapBindings {
    /// No bindings.
    pub fn new() -> MapBindings {
        MapBindings::default()
    }

    /// Bind the indirect mapping used between `from` and `to`.
    pub fn bind(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        mapping: EnablementMapping,
    ) -> MapBindings {
        self.maps.insert((from.into(), to.into()), mapping);
        self
    }

    fn get(&self, from: &str, to: &str) -> Option<&EnablementMapping> {
        self.maps.get(&(from.to_string(), to.to_string()))
    }
}

/// The result of a successful compilation.
#[derive(Debug)]
pub struct Compiled {
    /// Executable program.
    pub program: Program,
    /// Non-fatal diagnostics (interlock warnings etc.).
    pub warnings: Vec<Diagnostic>,
    /// Phase name → id mapping.
    pub phase_ids: HashMap<String, pax_core::ids::PhaseId>,
}

fn cost_model(spec: Option<CostSpec>) -> CostModel {
    match spec {
        None => CostModel::constant(100),
        Some(CostSpec::Const(t)) => CostModel::constant(t),
        Some(CostSpec::Uniform(lo, hi)) => CostModel::new(DurationDist::uniform(lo, hi)),
        Some(CostSpec::Exponential(m)) => CostModel::new(DurationDist::exponential(m)),
    }
}

fn option_kind(opt: MappingOption) -> MappingKind {
    match opt {
        MappingOption::Universal => MappingKind::Universal,
        MappingOption::Identity => MappingKind::Identity,
        MappingOption::Forward => MappingKind::ForwardIndirect,
        MappingOption::Reverse => MappingKind::ReverseIndirect,
        MappingOption::Seam => MappingKind::Seam,
        MappingOption::Null => MappingKind::Null,
    }
}

/// Compile a parsed script against map bindings.
pub fn compile(script: &Script, bindings: &MapBindings) -> Result<Compiled, CompileError> {
    let mut diags: Vec<Diagnostic> = Vec::new();

    // --- phase table -------------------------------------------------
    let mut phase_ids: HashMap<String, pax_core::ids::PhaseId> = HashMap::new();
    let mut phases: Vec<PhaseDef> = Vec::new();
    for d in script.defines() {
        if phase_ids.contains_key(&d.name) {
            diags.push(Diagnostic {
                error: true,
                message: format!("phase '{}' defined twice", d.name),
                pos: d.pos,
            });
            continue;
        }
        let def = PhaseDef::new(d.name.clone(), d.granules, cost_model(d.cost))
            .with_lines(d.lines.unwrap_or(0));
        phase_ids.insert(d.name.clone(), pax_core::ids::PhaseId(phases.len() as u32));
        phases.push(def);
    }

    // --- counters & labels -------------------------------------------
    let mut counters: HashMap<String, usize> = HashMap::new();
    let counter_of = |name: &str, counters: &mut HashMap<String, usize>| {
        let next = counters.len();
        *counters.entry(name.to_string()).or_insert(next)
    };
    let mut labels: HashMap<String, usize> = HashMap::new(); // label -> stmt index

    for (i, s) in script.stmts.iter().enumerate() {
        if let AstStmt::Label { name, pos } = s {
            if labels.insert(name.clone(), i).is_some() {
                diags.push(Diagnostic {
                    error: true,
                    message: format!("duplicate label '{name}'"),
                    pos: *pos,
                });
            }
        }
    }

    // --- step index assignment ----------------------------------------
    // Each statement lowers to exactly one step except Define and Label
    // (zero steps).
    let mut step_of_stmt: Vec<usize> = Vec::with_capacity(script.stmts.len());
    let mut nsteps = 0usize;
    for s in &script.stmts {
        step_of_stmt.push(nsteps);
        match s {
            AstStmt::Define(_) | AstStmt::Label { .. } => {}
            _ => nsteps += 1,
        }
    }
    // step index for "just past the last statement" = End step
    let end_step = nsteps;
    let step_of_label = |name: &str| -> Option<usize> {
        labels.get(name).map(|&stmt_idx| {
            // a label at the very end points to End
            step_of_stmt.get(stmt_idx).copied().unwrap_or(end_step)
        })
    };

    // helper: resolve an enable item list to EnableSpecs
    let resolve_items =
        |from: &str, items: &[EnableItem], diags: &mut Vec<Diagnostic>| -> Vec<EnableSpec> {
            let mut out = Vec::new();
            for item in items {
                let Some(&succ) = phase_ids.get(&item.phase) else {
                    diags.push(Diagnostic {
                        error: true,
                        message: format!("ENABLE names undefined phase '{}'", item.phase),
                        pos: item.pos,
                    });
                    continue;
                };
                let mapping = match item.mapping {
                    MappingOption::Universal => EnablementMapping::Universal,
                    MappingOption::Identity => EnablementMapping::Identity,
                    MappingOption::Null => EnablementMapping::Null,
                    indirect => match bindings.get(from, &item.phase) {
                        Some(m) => {
                            let want = option_kind(indirect);
                            if m.kind() != want {
                                diags.push(Diagnostic {
                                    error: true,
                                    message: format!(
                                        "binding for {from}->{} is {} but script says {}",
                                        item.phase,
                                        m.kind().label(),
                                        want.label()
                                    ),
                                    pos: item.pos,
                                });
                                continue;
                            }
                            m.clone()
                        }
                        None => {
                            diags.push(Diagnostic {
                                error: true,
                                message: format!(
                                    "MAPPING={} between '{from}' and '{}' requires a map \
                                 binding (indirect maps are runtime data)",
                                    item.mapping.keyword(),
                                    item.phase
                                ),
                                pos: item.pos,
                            });
                            continue;
                        }
                    },
                };
                // identity granule-count interlock
                if matches!(item.mapping, MappingOption::Identity) {
                    let from_g = phase_ids.get(from).map(|&p| phases[p.0 as usize].granules);
                    let to_g = phases[succ.0 as usize].granules;
                    if let Some(fg) = from_g {
                        if fg != to_g {
                            diags.push(Diagnostic {
                                error: true,
                                message: format!(
                                    "identity mapping between '{from}' ({fg} granules) and \
                                 '{}' ({to_g} granules) requires equal granule counts",
                                    item.phase
                                ),
                                pos: item.pos,
                            });
                        }
                    }
                }
                out.push(EnableSpec {
                    successor: succ,
                    mapping,
                });
            }
            out
        };

    // --- lowering ------------------------------------------------------
    let mut steps: Vec<Step> = Vec::new();
    for (i, s) in script.stmts.iter().enumerate() {
        match s {
            AstStmt::Define(_) | AstStmt::Label { .. } => {}
            AstStmt::Dispatch { phase, enable, pos } => {
                let Some(&pid) = phase_ids.get(phase) else {
                    diags.push(Diagnostic {
                        error: true,
                        message: format!("DISPATCH of undefined phase '{phase}'"),
                        pos: *pos,
                    });
                    continue;
                };
                let (enables, branch_independent) = match enable {
                    EnableClause::None => (Vec::new(), false),
                    EnableClause::Bare(opt) => {
                        // Form 1: applies to whatever phase follows
                        // lexically. "There is no interlock between this
                        // phase and the next that can be verified" — we
                        // resolve it to the next dispatch and warn.
                        match next_dispatch(script, i) {
                            Some(next_name) => {
                                diags.push(Diagnostic {
                                    error: false,
                                    message: format!(
                                        "bare ENABLE/MAPPING={} resolved to following \
                                         phase '{next_name}'; prefer the named form \
                                         ENABLE [{next_name}/MAPPING={}] which the \
                                         executive can verify",
                                        opt.keyword(),
                                        opt.keyword()
                                    ),
                                    pos: *pos,
                                });
                                let item = EnableItem {
                                    phase: next_name,
                                    mapping: *opt,
                                    pos: *pos,
                                };
                                (resolve_items(phase, &[item], &mut diags), false)
                            }
                            None => {
                                diags.push(Diagnostic {
                                    error: true,
                                    message: "bare ENABLE/MAPPING has no following \
                                              DISPATCH to apply to"
                                        .into(),
                                    pos: *pos,
                                });
                                (Vec::new(), false)
                            }
                        }
                    }
                    EnableClause::Named(items) => (resolve_items(phase, items, &mut diags), false),
                    EnableClause::BranchIndependent(items) => {
                        (resolve_items(phase, items, &mut diags), true)
                    }
                    EnableClause::BranchDependent => {
                        // Form 4: enable declarations live on DEFINE PHASE.
                        let items = script
                            .define_of(phase)
                            .map(|d| d.enables.clone())
                            .unwrap_or_default();
                        if items.is_empty() {
                            diags.push(Diagnostic {
                                error: false,
                                message: format!(
                                    "ENABLE/BRANCHDEPENDENT but DEFINE PHASE {phase} \
                                     declares no ENABLE list — no overlap possible"
                                ),
                                pos: *pos,
                            });
                        }
                        (resolve_items(phase, &items, &mut diags), false)
                    }
                };
                steps.push(Step::Dispatch {
                    phase: pid,
                    enables,
                    branch_independent,
                });
            }
            AstStmt::Serial { ticks, label, pos } => {
                let _ = pos;
                steps.push(Step::Serial {
                    duration: pax_sim::SimDuration(*ticks),
                    label: label.clone().unwrap_or_else(|| "serial".into()),
                });
            }
            AstStmt::Goto { target, pos } => match step_of_label(target) {
                Some(t) => steps.push(Step::Goto(t)),
                None => {
                    diags.push(Diagnostic {
                        error: true,
                        message: format!("GO TO undefined label '{target}'"),
                        pos: *pos,
                    });
                    steps.push(Step::Goto(end_step));
                }
            },
            AstStmt::If { cond, target, pos } => {
                let on_true = match step_of_label(target) {
                    Some(t) => t,
                    None => {
                        diags.push(Diagnostic {
                            error: true,
                            message: format!("IF branches to undefined label '{target}'"),
                            pos: *pos,
                        });
                        end_step
                    }
                };
                let test = match cond {
                    CondExpr::ImodNe {
                        counter,
                        modulus,
                        residue,
                    } => BranchTest::CounterModNe {
                        counter: counter_of(counter, &mut counters),
                        modulus: *modulus as i64,
                        residue: *residue as i64,
                    },
                    CondExpr::ImodEq {
                        counter,
                        modulus,
                        residue,
                    } => BranchTest::CounterModEq {
                        counter: counter_of(counter, &mut counters),
                        modulus: *modulus as i64,
                        residue: *residue as i64,
                    },
                    CondExpr::Lt { counter, value } => {
                        BranchTest::CounterLt(counter_of(counter, &mut counters), *value as i64)
                    }
                };
                let on_false = steps.len() + 1;
                steps.push(Step::Branch {
                    test,
                    on_true,
                    on_false,
                });
            }
            AstStmt::Increment { counter, by, .. } => {
                steps.push(Step::Incr {
                    idx: counter_of(counter, &mut counters),
                    delta: *by,
                });
            }
        }
    }
    steps.push(Step::End);

    // --- static interlock verification ---------------------------------
    // For every dispatch with a named ENABLE clause, check that at least
    // one named successor is actually the next phase in some static path.
    let program = Program {
        phases,
        steps,
        counters: counters.len(),
    };
    if let Err(e) = program.validate() {
        diags.push(Diagnostic {
            error: true,
            message: e,
            pos: Pos { line: 0, col: 0 },
        });
    } else {
        verify_interlock(&program, script, &mut diags);
    }

    if diags.iter().any(|d| d.error) {
        return Err(CompileError { diagnostics: diags });
    }
    Ok(Compiled {
        program,
        warnings: diags,
        phase_ids,
    })
}

/// Find the name of the next `DISPATCH` statement after statement `i`,
/// looking through labels/increments but stopping at control flow.
fn next_dispatch(script: &Script, i: usize) -> Option<String> {
    for s in &script.stmts[i + 1..] {
        match s {
            AstStmt::Dispatch { phase, .. } => return Some(phase.clone()),
            AstStmt::Label { .. } | AstStmt::Increment { .. } | AstStmt::Define(_) => continue,
            _ => return None,
        }
    }
    None
}

/// Static interlock check: for each dispatch step with a named enable
/// clause, run the same lookahead the executive will use (over both branch
/// outcomes) and confirm each reachable successor is covered by the
/// clause; warn when it is not.
fn verify_interlock(program: &Program, script: &Script, diags: &mut Vec<Diagnostic>) {
    let mut dispatch_positions: Vec<Pos> = Vec::new();
    for s in &script.stmts {
        if let AstStmt::Dispatch { pos, .. } = s {
            dispatch_positions.push(*pos);
        }
    }
    let mut dispatch_no = 0usize;
    for (idx, step) in program.steps.iter().enumerate() {
        let Step::Dispatch {
            enables,
            branch_independent,
            ..
        } = step
        else {
            continue;
        };
        let pos = dispatch_positions
            .get(dispatch_no)
            .copied()
            .unwrap_or(Pos { line: 0, col: 0 });
        dispatch_no += 1;
        if enables.is_empty() {
            continue;
        }
        // Explore successors: without branch preprocessing there is a
        // single lookahead; with it, both counter parities may matter, so
        // try a handful of plausible counter files.
        let counter_samples: Vec<Vec<i64>> = vec![
            vec![0; program.counters],
            vec![1; program.counters],
            vec![9; program.counters],
            vec![10; program.counters],
        ];
        let mut reachable: Vec<pax_core::ids::PhaseId> = Vec::new();
        for counters in &counter_samples {
            if let pax_core::program::Lookahead::Phase { phase, .. } =
                program.lookahead(idx, counters, *branch_independent)
            {
                if !reachable.contains(&phase) {
                    reachable.push(phase);
                }
            }
        }
        for succ in reachable {
            if !enables.iter().any(|e| e.successor == succ) {
                diags.push(Diagnostic {
                    error: false,
                    message: format!(
                        "interlock: phase '{}' can follow this dispatch but is not \
                         named in its ENABLE clause — it will run without overlap",
                        program.phases[succ.0 as usize].name
                    ),
                    pos,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn two_phase_src() -> &'static str {
        "
        DEFINE PHASE first GRANULES 32 COST CONST 10 LINES 20
        DEFINE PHASE second GRANULES 32 COST CONST 10 LINES 30
        DISPATCH first ENABLE [second/MAPPING=IDENTITY]
        DISPATCH second
        "
    }

    #[test]
    fn compiles_two_phase_script() {
        let script = parse(two_phase_src()).unwrap();
        let c = compile(&script, &MapBindings::new()).unwrap();
        assert_eq!(c.program.phases.len(), 2);
        assert_eq!(c.program.phases[0].lines, 20);
        // steps: dispatch, dispatch, end
        assert_eq!(c.program.steps.len(), 3);
        assert!(c.warnings.is_empty());
    }

    #[test]
    fn bare_enable_resolves_with_warning() {
        let script = parse(
            "
            DEFINE PHASE a GRANULES 8
            DEFINE PHASE b GRANULES 8
            DISPATCH a ENABLE/MAPPING=UNIVERSAL
            DISPATCH b
            ",
        )
        .unwrap();
        let c = compile(&script, &MapBindings::new()).unwrap();
        assert_eq!(c.warnings.len(), 1);
        assert!(c.warnings[0].message.contains("prefer the named form"));
        match &c.program.steps[0] {
            Step::Dispatch { enables, .. } => assert_eq!(enables.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_phase_is_error() {
        let script = parse("DISPATCH ghost").unwrap();
        let err = compile(&script, &MapBindings::new()).unwrap_err();
        assert!(err.diagnostics[0].message.contains("undefined phase"));
    }

    #[test]
    fn identity_granule_mismatch_is_error() {
        let script = parse(
            "
            DEFINE PHASE a GRANULES 8
            DEFINE PHASE b GRANULES 16
            DISPATCH a ENABLE [b/MAPPING=IDENTITY]
            DISPATCH b
            ",
        )
        .unwrap();
        let err = compile(&script, &MapBindings::new()).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.error && d.message.contains("equal granule counts")));
    }

    #[test]
    fn indirect_mapping_requires_binding() {
        let script = parse(
            "
            DEFINE PHASE a GRANULES 8
            DEFINE PHASE b GRANULES 8
            DISPATCH a ENABLE [b/MAPPING=REVERSE]
            DISPATCH b
            ",
        )
        .unwrap();
        let err = compile(&script, &MapBindings::new()).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("requires a map binding")));

        // with a binding it compiles
        let rmap = pax_core::mapping::ReverseMap::new(vec![vec![0]; 8], 8);
        let bindings = MapBindings::new().bind(
            "a",
            "b",
            EnablementMapping::ReverseIndirect(std::sync::Arc::new(rmap)),
        );
        let c = compile(&script, &bindings).unwrap();
        assert_eq!(c.program.phases.len(), 2);
    }

    #[test]
    fn binding_kind_mismatch_is_error() {
        let script = parse(
            "
            DEFINE PHASE a GRANULES 4
            DEFINE PHASE b GRANULES 4
            DISPATCH a ENABLE [b/MAPPING=FORWARD]
            DISPATCH b
            ",
        )
        .unwrap();
        let rmap = pax_core::mapping::ReverseMap::new(vec![vec![0]; 4], 4);
        let bindings = MapBindings::new().bind(
            "a",
            "b",
            EnablementMapping::ReverseIndirect(std::sync::Arc::new(rmap)),
        );
        let err = compile(&script, &bindings).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("script says")));
    }

    #[test]
    fn interlock_warning_when_successor_not_named() {
        let script = parse(
            "
            DEFINE PHASE a GRANULES 4
            DEFINE PHASE b GRANULES 4
            DEFINE PHASE c GRANULES 4
            DISPATCH a ENABLE [c/MAPPING=UNIVERSAL]
            DISPATCH b
            DISPATCH c
            ",
        )
        .unwrap();
        let c = compile(&script, &MapBindings::new()).unwrap();
        assert!(c
            .warnings
            .iter()
            .any(|w| w.message.contains("interlock") && w.message.contains("'b'")));
    }

    #[test]
    fn goto_and_labels_compile_to_step_indices() {
        let script = parse(
            "
            DEFINE PHASE a GRANULES 4
            DEFINE PHASE b GRANULES 4
            top:
            DISPATCH a
            INCREMENT K
            IF (K .LT. 3) THEN GO TO top
            DISPATCH b
            ",
        )
        .unwrap();
        let c = compile(&script, &MapBindings::new()).unwrap();
        // steps: dispatch a (0), incr (1), branch (2), dispatch b (3), end (4)
        assert_eq!(c.program.steps.len(), 5);
        match &c.program.steps[2] {
            Step::Branch {
                on_true, on_false, ..
            } => {
                assert_eq!(*on_true, 0);
                assert_eq!(*on_false, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.program.counters, 1);
    }

    #[test]
    fn duplicate_labels_and_missing_targets_error() {
        let script = parse("x:\nx:\nGO TO nowhere").unwrap();
        let err = compile(&script, &MapBindings::new()).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("duplicate label")));
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("nowhere")));
    }

    #[test]
    fn branch_dependent_pulls_defines() {
        let script = parse(
            "
            DEFINE PHASE a GRANULES 4 ENABLE [b/MAPPING=UNIVERSAL c/MAPPING=UNIVERSAL]
            DEFINE PHASE b GRANULES 4
            DEFINE PHASE c GRANULES 4
            DISPATCH a ENABLE/BRANCHDEPENDENT
            IF (IMOD(K,10).NE.0) THEN GO TO alt
            DISPATCH b
            GO TO done
            alt:
            DISPATCH c
            done:
            ",
        )
        .unwrap();
        let c = compile(&script, &MapBindings::new()).unwrap();
        match &c.program.steps[0] {
            Step::Dispatch {
                enables,
                branch_independent,
                ..
            } => {
                assert_eq!(enables.len(), 2);
                assert!(!branch_independent, "BRANCHDEPENDENT forbids preprocessing");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
