//! Abstract syntax for PAX language scripts.

use crate::token::Pos;

/// A mapping option named in an `ENABLE` clause. Indirect options carry no
/// tables in source form; concrete maps are bound at compile time (PAX
//  bound computations to names the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingOption {
    /// `MAPPING=UNIVERSAL`
    Universal,
    /// `MAPPING=IDENTITY`
    Identity,
    /// `MAPPING=FORWARD`
    Forward,
    /// `MAPPING=REVERSE`
    Reverse,
    /// `MAPPING=SEAM`
    Seam,
    /// `MAPPING=NULL`
    Null,
}

impl MappingOption {
    /// Keyword spelling.
    pub fn keyword(self) -> &'static str {
        match self {
            MappingOption::Universal => "UNIVERSAL",
            MappingOption::Identity => "IDENTITY",
            MappingOption::Forward => "FORWARD",
            MappingOption::Reverse => "REVERSE",
            MappingOption::Seam => "SEAM",
            MappingOption::Null => "NULL",
        }
    }
}

/// One `phase-name/MAPPING=option` element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnableItem {
    /// Named successor phase.
    pub phase: String,
    /// Mapping option.
    pub mapping: MappingOption,
    /// Source position (for diagnostics).
    pub pos: Pos,
}

/// The `ENABLE` clause attached to a `DISPATCH` (the paper's four forms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnableClause {
    /// No clause.
    None,
    /// `ENABLE/MAPPING=option` — applies to whatever phase follows
    /// (form 1: "simple and explicit; however, it leaves the door wide
    /// open to user mistakes").
    Bare(MappingOption),
    /// `ENABLE [name/MAPPING=option …]` — named successors the executive
    /// can verify (form 2).
    Named(Vec<EnableItem>),
    /// `ENABLE/BRANCHINDEPENDENT [name/MAPPING=option …]` — the executive
    /// may preprocess a following branch (form 3).
    BranchIndependent(Vec<EnableItem>),
    /// `ENABLE/BRANCHDEPENDENT` — mappings were declared on `DEFINE
    /// PHASE`; the branch must not be preprocessed (form 4).
    BranchDependent,
}

/// Cost model syntax for phase definitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostSpec {
    /// `COST CONST t`
    Const(u64),
    /// `COST UNIFORM lo hi`
    Uniform(u64, u64),
    /// `COST EXP mean`
    Exponential(u64),
}

/// `DEFINE PHASE name GRANULES n [COST …] [LINES l] [ENABLE [...]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DefinePhase {
    /// Phase name.
    pub name: String,
    /// Granule count.
    pub granules: u32,
    /// Cost model (defaults to `CONST 100`).
    pub cost: Option<CostSpec>,
    /// Census line weight.
    pub lines: Option<u32>,
    /// Enable declarations made at definition time (form 4).
    pub enables: Vec<EnableItem>,
    /// Source position.
    pub pos: Pos,
}

/// Branch condition: the paper's `IMOD(counter, k) .NE. m` plus relational
/// forms on a counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondExpr {
    /// `IMOD(counter, k) .NE. m`
    ImodNe {
        /// Counter name.
        counter: String,
        /// Modulus.
        modulus: u64,
        /// Residue.
        residue: u64,
    },
    /// `IMOD(counter, k) .EQ. m`
    ImodEq {
        /// Counter name.
        counter: String,
        /// Modulus.
        modulus: u64,
        /// Residue.
        residue: u64,
    },
    /// `counter .LT. k`
    Lt {
        /// Counter name.
        counter: String,
        /// Bound.
        value: u64,
    },
}

/// Top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub enum AstStmt {
    /// Phase definition.
    Define(DefinePhase),
    /// `DISPATCH name [ENABLE …]`.
    Dispatch {
        /// Phase to dispatch.
        phase: String,
        /// Enable clause.
        enable: EnableClause,
        /// Source position.
        pos: Pos,
    },
    /// `SERIAL n [label]` — serial executive work between phases.
    Serial {
        /// Duration in ticks.
        ticks: u64,
        /// Optional label.
        label: Option<String>,
        /// Source position.
        pos: Pos,
    },
    /// `label:`
    Label {
        /// Label name.
        name: String,
        /// Source position.
        pos: Pos,
    },
    /// `GO TO name` / `GOTO name`.
    Goto {
        /// Target label.
        target: String,
        /// Source position.
        pos: Pos,
    },
    /// `IF (cond) THEN GO TO name`.
    If {
        /// Condition.
        cond: CondExpr,
        /// Target label when true.
        target: String,
        /// Source position.
        pos: Pos,
    },
    /// `INCREMENT counter [BY k]`.
    Increment {
        /// Counter name.
        counter: String,
        /// Step (default 1).
        by: i64,
        /// Source position.
        pos: Pos,
    },
}

/// A parsed script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Script {
    /// Statements in order.
    pub stmts: Vec<AstStmt>,
}

impl Script {
    /// All phase definitions.
    pub fn defines(&self) -> impl Iterator<Item = &DefinePhase> {
        self.stmts.iter().filter_map(|s| match s {
            AstStmt::Define(d) => Some(d),
            _ => None,
        })
    }

    /// Find a phase definition by name.
    pub fn define_of(&self, name: &str) -> Option<&DefinePhase> {
        self.defines().find(|d| d.name == name)
    }
}
