//! Lexer for the PAX parallel-language constructs.
//!
//! The token set covers exactly the four language forms shown in the
//! paper's "Language Construction" section, plus the small amount of
//! control flow its examples rely on (`IF (IMOD(LOOPCOUNTER,10).NE.0)
//! THEN GO TO branch-target`, labels, `GO TO rejoin`) and phase
//! definitions with cost models so whole scripts are runnable.

use std::fmt;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Keyword or identifier (uppercased keywords are distinguished by the
    /// parser; identifiers keep their case).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// `/`
    Slash,
    /// `=`
    Equals,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// Fortran-style dotted operator: `.NE.`, `.EQ.`, `.LT.`, `.GE.` …
    DotOp(String),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Slash => write!(f, "'/'"),
            Tok::Equals => write!(f, "'='"),
            Tok::LBracket => write!(f, "'['"),
            Tok::RBracket => write!(f, "']'"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::Comma => write!(f, "','"),
            Tok::Colon => write!(f, "':'"),
            Tok::DotOp(s) => write!(f, "'.{s}.'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Where it begins.
    pub pos: Pos,
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// Where the offending character sits.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a script. Comments run from `!` or `;` to end of line.
/// Identifiers may contain letters, digits, `-` and `_` (the paper uses
/// names like `phase-name-1`).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
                col += 1;
            }
            '!' | ';' => {
                // comment to end of line
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '/' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::Slash,
                    pos,
                });
            }
            '=' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::Equals,
                    pos,
                });
            }
            '[' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::LBracket,
                    pos,
                });
            }
            ']' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::RBracket,
                    pos,
                });
            }
            '(' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::LParen,
                    pos,
                });
            }
            ')' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::RParen,
                    pos,
                });
            }
            ',' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::Comma,
                    pos,
                });
            }
            ':' => {
                chars.next();
                col += 1;
                out.push(Token {
                    tok: Tok::Colon,
                    pos,
                });
            }
            '.' => {
                // dotted operator .XX.
                chars.next();
                col += 1;
                let mut op = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphabetic() {
                        op.push(c2.to_ascii_uppercase());
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                if chars.peek() == Some(&'.') {
                    chars.next();
                    col += 1;
                } else {
                    return Err(LexError {
                        message: format!("unterminated dotted operator '.{op}'"),
                        pos,
                    });
                }
                if op.is_empty() {
                    return Err(LexError {
                        message: "empty dotted operator".into(),
                        pos,
                    });
                }
                out.push(Token {
                    tok: Tok::DotOp(op),
                    pos,
                });
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&c2) = chars.peek() {
                    if let Some(d) = c2.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|x| x.checked_add(d as u64))
                            .ok_or_else(|| LexError {
                                message: "integer literal overflows u64".into(),
                                pos,
                            })?;
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Int(n),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' || c2 == '-' {
                        s.push(c2);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(s),
                    pos,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    pos,
                });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_dispatch_enable() {
        let toks = kinds("DISPATCH sweep ENABLE/MAPPING=IDENTITY");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("DISPATCH".into()),
                Tok::Ident("sweep".into()),
                Tok::Ident("ENABLE".into()),
                Tok::Slash,
                Tok::Ident("MAPPING".into()),
                Tok::Equals,
                Tok::Ident("IDENTITY".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_bracketed_enable_list() {
        let toks = kinds("ENABLE [phase-name-1/MAPPING=UNIVERSAL]");
        assert!(toks.contains(&Tok::LBracket));
        assert!(toks.contains(&Tok::Ident("phase-name-1".into())));
        assert!(toks.contains(&Tok::RBracket));
    }

    #[test]
    fn lexes_if_imod() {
        let toks = kinds("IF (IMOD(LOOPCOUNTER,10).NE.0) THEN GO TO branch-target");
        assert!(toks.contains(&Tok::DotOp("NE".into())));
        assert!(toks.contains(&Tok::Int(10)));
        assert!(toks.contains(&Tok::Ident("branch-target".into())));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("DISPATCH a ! this is ignored\nDISPATCH b");
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Tok::Ident(_))).count(),
            4
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("A\nBB CC").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 1 });
        assert_eq!(toks[2].pos, Pos { line: 2, col: 4 });
    }

    #[test]
    fn error_on_stray_character() {
        let err = lex("DISPATCH @").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn error_on_unterminated_dotop() {
        assert!(lex("a .NE b").is_err());
    }

    #[test]
    fn labels_lex() {
        let toks = kinds("rejoin:");
        assert_eq!(
            toks,
            vec![Tok::Ident("rejoin".into()), Tok::Colon, Tok::Eof]
        );
    }
}
