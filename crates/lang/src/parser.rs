//! Recursive-descent parser for PAX language scripts.

use crate::ast::*;
use crate::token::{lex, LexError, Pos, Tok, Token};
use std::fmt;

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            pos: e.pos,
        }
    }
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.i]
    }

    fn next(&mut self) -> Token {
        let t = self.toks[self.i].clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            pos: self.peek().pos,
        })
    }

    /// Consume an identifier token and return its text.
    fn ident(&mut self, what: &str) -> Result<(String, Pos), ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.pos)),
            other => Err(ParseError {
                message: format!("expected {what}, found {other}"),
                pos: t.pos,
            }),
        }
    }

    /// Consume a keyword (case-insensitive match on an identifier).
    fn keyword(&mut self, kw: &str) -> Result<Pos, ParseError> {
        let t = self.next();
        match &t.tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(t.pos),
            other => Err(ParseError {
                message: format!("expected '{kw}', found {other}"),
                pos: t.pos,
            }),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn int(&mut self, what: &str) -> Result<u64, ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Int(n) => Ok(n),
            other => Err(ParseError {
                message: format!("expected {what}, found {other}"),
                pos: t.pos,
            }),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Pos, ParseError> {
        let t = self.next();
        if t.tok == tok {
            Ok(t.pos)
        } else {
            Err(ParseError {
                message: format!("expected {tok}, found {}", t.tok),
                pos: t.pos,
            })
        }
    }

    fn mapping_option(&mut self) -> Result<MappingOption, ParseError> {
        let (s, pos) = self.ident("mapping option")?;
        match s.to_ascii_uppercase().as_str() {
            "UNIVERSAL" => Ok(MappingOption::Universal),
            "IDENTITY" => Ok(MappingOption::Identity),
            "FORWARD" => Ok(MappingOption::Forward),
            "REVERSE" => Ok(MappingOption::Reverse),
            "SEAM" => Ok(MappingOption::Seam),
            "NULL" => Ok(MappingOption::Null),
            other => Err(ParseError {
                message: format!(
                    "unknown mapping option '{other}' \
                     (expected UNIVERSAL, IDENTITY, FORWARD, REVERSE, SEAM or NULL)"
                ),
                pos,
            }),
        }
    }

    /// `name/MAPPING=option`
    fn enable_item(&mut self) -> Result<EnableItem, ParseError> {
        let (phase, pos) = self.ident("successor phase name")?;
        self.expect(Tok::Slash)?;
        self.keyword("MAPPING")?;
        self.expect(Tok::Equals)?;
        let mapping = self.mapping_option()?;
        Ok(EnableItem {
            phase,
            mapping,
            pos,
        })
    }

    /// `[ item item … ]`
    fn enable_list(&mut self) -> Result<Vec<EnableItem>, ParseError> {
        self.expect(Tok::LBracket)?;
        let mut items = Vec::new();
        while self.peek().tok != Tok::RBracket {
            if self.peek().tok == Tok::Eof {
                return self.err("unterminated ENABLE list (missing ']')");
            }
            items.push(self.enable_item()?);
        }
        self.expect(Tok::RBracket)?;
        if items.is_empty() {
            return self.err("empty ENABLE list");
        }
        Ok(items)
    }

    /// The optional ENABLE clause of a DISPATCH.
    fn enable_clause(&mut self) -> Result<EnableClause, ParseError> {
        if !self.peek_keyword("ENABLE") {
            return Ok(EnableClause::None);
        }
        self.keyword("ENABLE")?;
        match &self.peek().tok {
            Tok::Slash => {
                self.next();
                let (word, pos) = self.ident("MAPPING, BRANCHINDEPENDENT or BRANCHDEPENDENT")?;
                match word.to_ascii_uppercase().as_str() {
                    "MAPPING" => {
                        self.expect(Tok::Equals)?;
                        Ok(EnableClause::Bare(self.mapping_option()?))
                    }
                    "BRANCHINDEPENDENT" => Ok(EnableClause::BranchIndependent(self.enable_list()?)),
                    "BRANCHDEPENDENT" => Ok(EnableClause::BranchDependent),
                    other => Err(ParseError {
                        message: format!("unknown ENABLE form '/{other}'"),
                        pos,
                    }),
                }
            }
            Tok::LBracket => Ok(EnableClause::Named(self.enable_list()?)),
            other => self.err(format!("expected '/' or '[' after ENABLE, found {other}")),
        }
    }

    fn cost_spec(&mut self) -> Result<CostSpec, ParseError> {
        let (kind, pos) = self.ident("cost kind (CONST, UNIFORM, EXP)")?;
        match kind.to_ascii_uppercase().as_str() {
            "CONST" => Ok(CostSpec::Const(self.int("constant cost")?)),
            "UNIFORM" => {
                let lo = self.int("uniform lower bound")?;
                let hi = self.int("uniform upper bound")?;
                if lo > hi {
                    return Err(ParseError {
                        message: format!("uniform bounds inverted ({lo} > {hi})"),
                        pos,
                    });
                }
                Ok(CostSpec::Uniform(lo, hi))
            }
            "EXP" => Ok(CostSpec::Exponential(self.int("exponential mean")?)),
            other => Err(ParseError {
                message: format!("unknown cost kind '{other}'"),
                pos,
            }),
        }
    }

    /// `DEFINE PHASE name GRANULES n [COST …] [LINES n] [ENABLE [...]]`
    fn define(&mut self) -> Result<DefinePhase, ParseError> {
        let pos = self.keyword("DEFINE")?;
        self.keyword("PHASE")?;
        let (name, _) = self.ident("phase name")?;
        let mut granules: Option<u32> = None;
        let mut cost = None;
        let mut lines = None;
        let mut enables = Vec::new();
        loop {
            if self.peek_keyword("GRANULES") {
                self.keyword("GRANULES")?;
                let n = self.int("granule count")?;
                if n == 0 || n > u32::MAX as u64 {
                    return self.err("granule count must be in 1..2^32");
                }
                granules = Some(n as u32);
            } else if self.peek_keyword("COST") {
                self.keyword("COST")?;
                cost = Some(self.cost_spec()?);
            } else if self.peek_keyword("LINES") {
                self.keyword("LINES")?;
                lines = Some(self.int("line count")? as u32);
            } else if self.peek_keyword("ENABLE") {
                self.keyword("ENABLE")?;
                enables = self.enable_list()?;
            } else {
                break;
            }
        }
        let granules = granules.ok_or(ParseError {
            message: format!("DEFINE PHASE {name} is missing GRANULES"),
            pos,
        })?;
        Ok(DefinePhase {
            name,
            granules,
            cost,
            lines,
            enables,
            pos,
        })
    }

    /// `IF (IMOD(c,k).NE.m) THEN GO TO label` and relational variants.
    fn if_stmt(&mut self) -> Result<AstStmt, ParseError> {
        let pos = self.keyword("IF")?;
        self.expect(Tok::LParen)?;
        let cond = if self.peek_keyword("IMOD") {
            self.keyword("IMOD")?;
            self.expect(Tok::LParen)?;
            let (counter, _) = self.ident("counter name")?;
            self.expect(Tok::Comma)?;
            let modulus = self.int("modulus")?;
            if modulus == 0 {
                return self.err("IMOD modulus must be positive");
            }
            self.expect(Tok::RParen)?;
            let op = self.next();
            let residue = self.int("residue")?;
            match op.tok {
                Tok::DotOp(ref s) if s == "NE" => CondExpr::ImodNe {
                    counter,
                    modulus,
                    residue,
                },
                Tok::DotOp(ref s) if s == "EQ" => CondExpr::ImodEq {
                    counter,
                    modulus,
                    residue,
                },
                other => {
                    return Err(ParseError {
                        message: format!("expected .NE. or .EQ., found {other}"),
                        pos: op.pos,
                    })
                }
            }
        } else {
            let (counter, _) = self.ident("counter name")?;
            let op = self.next();
            let value = self.int("comparison value")?;
            match op.tok {
                Tok::DotOp(ref s) if s == "LT" => CondExpr::Lt { counter, value },
                other => {
                    return Err(ParseError {
                        message: format!("expected .LT., found {other}"),
                        pos: op.pos,
                    })
                }
            }
        };
        self.expect(Tok::RParen)?;
        self.keyword("THEN")?;
        self.goto_keyword()?;
        let (target, _) = self.ident("branch target label")?;
        Ok(AstStmt::If { cond, target, pos })
    }

    /// `GO TO x` or `GOTO x`.
    fn goto_keyword(&mut self) -> Result<(), ParseError> {
        if self.peek_keyword("GOTO") {
            self.keyword("GOTO")?;
            return Ok(());
        }
        self.keyword("GO")?;
        self.keyword("TO")?;
        Ok(())
    }

    fn stmt(&mut self) -> Result<Option<AstStmt>, ParseError> {
        match &self.peek().tok {
            Tok::Eof => Ok(None),
            Tok::Ident(s) if s.eq_ignore_ascii_case("DEFINE") => {
                Ok(Some(AstStmt::Define(self.define()?)))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("DISPATCH") => {
                let pos = self.keyword("DISPATCH")?;
                let (phase, _) = self.ident("phase name")?;
                let enable = self.enable_clause()?;
                Ok(Some(AstStmt::Dispatch { phase, enable, pos }))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("SERIAL") => {
                let pos = self.keyword("SERIAL")?;
                let ticks = self.int("serial duration in ticks")?;
                let label = if let Tok::Ident(w) = &self.peek().tok {
                    // a following bare identifier that is not a statement
                    // keyword is taken as the serial label
                    let upper = w.to_ascii_uppercase();
                    let is_kw = [
                        "DEFINE",
                        "DISPATCH",
                        "SERIAL",
                        "IF",
                        "GO",
                        "GOTO",
                        "INCREMENT",
                    ]
                    .contains(&upper.as_str());
                    // labels of the form `name:` must also be left alone
                    let next_is_colon = self
                        .toks
                        .get(self.i + 1)
                        .map(|t| t.tok == Tok::Colon)
                        .unwrap_or(false);
                    if !is_kw && !next_is_colon {
                        Some(self.ident("label")?.0)
                    } else {
                        None
                    }
                } else {
                    None
                };
                Ok(Some(AstStmt::Serial { ticks, label, pos }))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("IF") => Ok(Some(self.if_stmt()?)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("GO") || s.eq_ignore_ascii_case("GOTO") => {
                let pos = self.peek().pos;
                self.goto_keyword()?;
                let (target, _) = self.ident("label")?;
                Ok(Some(AstStmt::Goto { target, pos }))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("INCREMENT") => {
                let pos = self.keyword("INCREMENT")?;
                let (counter, _) = self.ident("counter name")?;
                let by = if self.peek_keyword("BY") {
                    self.keyword("BY")?;
                    self.int("increment step")? as i64
                } else {
                    1
                };
                Ok(Some(AstStmt::Increment { counter, by, pos }))
            }
            Tok::Ident(_) => {
                // `label:` form
                let (name, pos) = self.ident("label")?;
                self.expect(Tok::Colon).map_err(|mut e| {
                    e.message = format!(
                        "unknown statement '{name}' (expected DEFINE, DISPATCH, SERIAL, IF, \
                         GO TO, INCREMENT, or 'label:')"
                    );
                    e
                })?;
                Ok(Some(AstStmt::Label { name, pos }))
            }
            other => self.err(format!("unexpected token {other}")),
        }
    }
}

/// Parse a script from source text.
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    let mut stmts = Vec::new();
    while let Some(s) = p.stmt()? {
        stmts.push(s);
    }
    Ok(Script { stmts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_form_one() {
        let s = parse("DISPATCH phase-name ENABLE/MAPPING=IDENTITY").unwrap();
        assert_eq!(s.stmts.len(), 1);
        match &s.stmts[0] {
            AstStmt::Dispatch { phase, enable, .. } => {
                assert_eq!(phase, "phase-name");
                assert_eq!(enable, &EnableClause::Bare(MappingOption::Identity));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_paper_form_two() {
        let s = parse("DISPATCH p ENABLE [q/MAPPING=UNIVERSAL]").unwrap();
        match &s.stmts[0] {
            AstStmt::Dispatch { enable, .. } => match enable {
                EnableClause::Named(items) => {
                    assert_eq!(items.len(), 1);
                    assert_eq!(items[0].phase, "q");
                    assert_eq!(items[0].mapping, MappingOption::Universal);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_paper_form_three_with_branch() {
        let src = "
            DISPATCH phase-name
              ENABLE/BRANCHINDEPENDENT
              [phase-name-1/MAPPING=IDENTITY
               phase-name-2/MAPPING=UNIVERSAL]
            IF (IMOD(LOOPCOUNTER,10).NE.0) THEN GO TO branch-target
            DISPATCH phase-name-1
            GO TO rejoin
            branch-target:
            DISPATCH phase-name-2
            rejoin:
        ";
        let s = parse(src).unwrap();
        assert_eq!(s.stmts.len(), 7);
        match &s.stmts[0] {
            AstStmt::Dispatch { enable, .. } => match enable {
                EnableClause::BranchIndependent(items) => assert_eq!(items.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&s.stmts[1], AstStmt::If { .. }));
        assert!(matches!(&s.stmts[4], AstStmt::Label { name, .. } if name == "branch-target"));
    }

    #[test]
    fn parses_paper_form_four() {
        let src = "
            DEFINE PHASE phase-name GRANULES 64 ENABLE [
              phase-name-1/MAPPING=IDENTITY
              phase-name-2/MAPPING=UNIVERSAL
              phase-name-3/MAPPING=NULL
            ]
            DISPATCH phase-name ENABLE/BRANCHDEPENDENT
        ";
        let s = parse(src).unwrap();
        let d = s.define_of("phase-name").unwrap();
        assert_eq!(d.enables.len(), 3);
        assert_eq!(d.granules, 64);
        match &s.stmts[1] {
            AstStmt::Dispatch { enable, .. } => {
                assert_eq!(enable, &EnableClause::BranchDependent)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_define_with_cost_and_lines() {
        let s = parse("DEFINE PHASE p GRANULES 10 COST UNIFORM 5 50 LINES 37").unwrap();
        let d = s.define_of("p").unwrap();
        assert_eq!(d.cost, Some(CostSpec::Uniform(5, 50)));
        assert_eq!(d.lines, Some(37));
    }

    #[test]
    fn parses_serial_and_increment() {
        let s = parse("SERIAL 500 convergence-check\nINCREMENT LOOPCOUNTER BY 2").unwrap();
        assert!(matches!(
            &s.stmts[0],
            AstStmt::Serial { ticks: 500, label: Some(l), .. } if l == "convergence-check"
        ));
        assert!(matches!(&s.stmts[1], AstStmt::Increment { by: 2, .. }));
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse("DISPATCH p ENABLE/MAPPING=SIDEWAYS").unwrap_err();
        assert!(err.message.contains("SIDEWAYS"));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn error_on_missing_granules() {
        let err = parse("DEFINE PHASE p COST CONST 5").unwrap_err();
        assert!(err.message.contains("GRANULES"));
    }

    #[test]
    fn error_on_empty_enable_list() {
        assert!(parse("DISPATCH p ENABLE []").is_err());
    }

    #[test]
    fn error_on_unterminated_list() {
        let err = parse("DISPATCH p ENABLE [q/MAPPING=IDENTITY").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn error_on_unknown_statement() {
        let err = parse("FROBNICATE x").unwrap_err();
        assert!(err.message.contains("FROBNICATE"));
    }
}
