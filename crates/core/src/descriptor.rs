//! Computation descriptions and their conflict queues.
//!
//! PAX described computations "as large, contiguous collections of
//! granules. The descriptions were split apart as necessary to produce
//! conveniently sized tasks for workers and then merged back into single
//! descriptions when the work was completed." Each description carries "a
//! queue head for a double circularly-linked list of computable but
//! conflicting computational granules" — on completion, everything on that
//! queue becomes unconditionally computable.
//!
//! [`DescArena`] is a slab of [`Descriptor`]s with a free list (completed
//! descriptions are recycled), and implements the circular doubly-linked
//! conflict queue over arena indices, so no unsafe code is needed.

use crate::ids::{DescId, GranuleRange, InstanceId, JobId, WorkerId};

/// Scheduling class of a description in the waiting computation queue.
///
/// "it was determined that such conflicting computations would be placed
/// ahead of the normal computations in the queue and, thus, given higher
/// priority."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueClass {
    /// Released conflicting/enabled computations — scheduled first.
    Elevated,
    /// Ordinary phase work, in dispatch order.
    Normal,
}

/// Lifecycle state of a description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescState {
    /// Newly created, not yet placed anywhere.
    Fresh,
    /// In the waiting computation queue.
    Waiting,
    /// Queued on another description's conflict queue, awaiting enablement.
    Conflicted,
    /// Detached into a successor-splitting task's information.
    Detached,
    /// Executing on a worker.
    Running(WorkerId),
    /// Completed (slot will be recycled).
    Done,
}

/// One computation description: a contiguous granule range of one phase
/// instance, plus its conflict-queue linkage.
#[derive(Debug, Clone)]
pub struct Descriptor {
    /// Phase instance the granules belong to.
    pub instance: InstanceId,
    /// Job stream (multi-job environments).
    pub job: JobId,
    /// Covered granules `[lo, hi)`.
    pub range: GranuleRange,
    /// Scheduling class when waiting.
    pub class: QueueClass,
    /// The paper's status bit: completion of this description must
    /// decrement enablement counters of dependent successor granules.
    pub enabling: bool,
    /// Set at dispatch when the owning instance's predecessor was still
    /// incomplete — i.e. this task executes *during* the predecessor's
    /// phase, which is the overlap the paper measures.
    pub overlap: bool,
    /// Lifecycle state.
    pub state: DescState,
    /// Head of this description's conflict queue (successor descriptions
    /// enabled by our completion).
    cq_head: Option<DescId>,
    /// Circular links used while *this* description sits on some conflict
    /// queue.
    next: Option<DescId>,
    prev: Option<DescId>,
    /// The description whose conflict queue we are on.
    owner: Option<DescId>,
    /// Slot generation, to catch stale ids in debug builds.
    gen: u32,
    /// Position of this description in its instance's live list, maintained
    /// by the engine so completion processing removes it in O(1) instead of
    /// scanning (`u32::MAX` = untracked).
    pub(crate) live_idx: u32,
}

impl Descriptor {
    fn new(instance: InstanceId, job: JobId, range: GranuleRange, gen: u32) -> Descriptor {
        Descriptor {
            instance,
            job,
            range,
            class: QueueClass::Normal,
            enabling: false,
            overlap: false,
            state: DescState::Fresh,
            cq_head: None,
            next: None,
            prev: None,
            owner: None,
            gen,
            live_idx: u32::MAX,
        }
    }

    /// Number of granules covered.
    pub fn len(&self) -> u32 {
        self.range.len()
    }

    /// True when the description covers no granules (never the case for
    /// live descriptions; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// True when the conflict queue of this description is non-empty.
    pub fn has_conflicts(&self) -> bool {
        self.cq_head.is_some()
    }
}

/// Slab arena of descriptions with free-list recycling and conflict-queue
/// operations.
#[derive(Debug, Default)]
pub struct DescArena {
    slots: Vec<Descriptor>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    created_total: u64,
}

impl DescArena {
    /// Empty arena.
    pub fn new() -> DescArena {
        DescArena::default()
    }

    /// Allocate a description for `range` of `instance`.
    pub fn alloc(&mut self, instance: InstanceId, job: JobId, range: GranuleRange) -> DescId {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.created_total += 1;
        if let Some(idx) = self.free.pop() {
            let gen = self.slots[idx as usize].gen.wrapping_add(1);
            self.slots[idx as usize] = Descriptor::new(instance, job, range, gen);
            DescId(idx)
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Descriptor::new(instance, job, range, 0));
            DescId(idx)
        }
    }

    /// Recycle a completed description. Its conflict queue must already be
    /// empty and it must not sit on anyone else's queue.
    pub fn release(&mut self, id: DescId) {
        let d = &mut self.slots[id.0 as usize];
        debug_assert!(d.cq_head.is_none(), "releasing descriptor with conflicts");
        debug_assert!(d.owner.is_none(), "releasing descriptor still on a queue");
        debug_assert!(!matches!(d.state, DescState::Done), "double release");
        d.state = DescState::Done;
        self.live -= 1;
        self.free.push(id.0);
    }

    /// Borrow a description.
    #[inline]
    pub fn get(&self, id: DescId) -> &Descriptor {
        &self.slots[id.0 as usize]
    }

    /// Mutably borrow a description.
    #[inline]
    pub fn get_mut(&mut self, id: DescId) -> &mut Descriptor {
        &mut self.slots[id.0 as usize]
    }

    /// Currently live descriptions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live descriptions.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total allocations over the run (storage-economy statistic; the
    /// paper chose contiguous collections precisely to keep this low).
    pub fn created_total(&self) -> u64 {
        self.created_total
    }

    // --- conflict queue (double circularly-linked list) ---------------

    /// Append `member` to `owner`'s conflict queue.
    pub fn cq_push(&mut self, owner: DescId, member: DescId) {
        debug_assert!(owner != member);
        debug_assert!(self.get(member).owner.is_none());
        match self.get(owner).cq_head {
            None => {
                let m = self.get_mut(member);
                m.next = Some(member);
                m.prev = Some(member);
                m.owner = Some(owner);
                m.state = DescState::Conflicted;
                self.get_mut(owner).cq_head = Some(member);
            }
            Some(head) => {
                // insert before head == append at tail of circular list
                let tail = self.get(head).prev.expect("circular list invariant");
                {
                    let m = self.get_mut(member);
                    m.next = Some(head);
                    m.prev = Some(tail);
                    m.owner = Some(owner);
                    m.state = DescState::Conflicted;
                }
                self.get_mut(tail).next = Some(member);
                self.get_mut(head).prev = Some(member);
            }
        }
    }

    /// Detach every member of `owner`'s conflict queue into `out` (which
    /// is *not* cleared), in insertion order. Members come back with state
    /// `Fresh` and no links. Taking the output buffer from the caller lets
    /// completion processing reuse one vector across every event.
    pub fn cq_drain_into(&mut self, owner: DescId, out: &mut Vec<DescId>) {
        let Some(head) = self.get(owner).cq_head else {
            return;
        };
        let mut cur = head;
        loop {
            let next = self.get(cur).next.expect("circular list invariant");
            {
                let m = self.get_mut(cur);
                m.next = None;
                m.prev = None;
                m.owner = None;
                m.state = DescState::Fresh;
            }
            out.push(cur);
            if next == head {
                break;
            }
            cur = next;
        }
        self.get_mut(owner).cq_head = None;
    }

    /// Detach and return every member of `owner`'s conflict queue, in
    /// insertion order. Allocating wrapper over
    /// [`DescArena::cq_drain_into`] for tests and cold paths.
    pub fn cq_drain(&mut self, owner: DescId) -> Vec<DescId> {
        let mut out = Vec::new();
        self.cq_drain_into(owner, &mut out);
        out
    }

    /// Remove a single `member` from whatever conflict queue it is on.
    pub fn cq_remove(&mut self, member: DescId) {
        let (owner, next, prev) = {
            let m = self.get(member);
            (
                m.owner.expect("cq_remove on unqueued descriptor"),
                m.next.expect("circular list invariant"),
                m.prev.expect("circular list invariant"),
            )
        };
        if next == member {
            // sole member
            self.get_mut(owner).cq_head = None;
        } else {
            self.get_mut(prev).next = Some(next);
            self.get_mut(next).prev = Some(prev);
            if self.get(owner).cq_head == Some(member) {
                self.get_mut(owner).cq_head = Some(next);
            }
        }
        let m = self.get_mut(member);
        m.next = None;
        m.prev = None;
        m.owner = None;
        m.state = DescState::Fresh;
    }

    /// Collect members of `owner`'s conflict queue into `out` (not
    /// cleared) without detaching them.
    pub fn cq_members_into(&self, owner: DescId, out: &mut Vec<DescId>) {
        let Some(head) = self.get(owner).cq_head else {
            return;
        };
        let mut cur = head;
        loop {
            out.push(cur);
            let next = self.get(cur).next.expect("circular list invariant");
            if next == head {
                break;
            }
            cur = next;
        }
    }

    /// Iterate members of `owner`'s conflict queue without detaching.
    /// Allocating wrapper over [`DescArena::cq_members_into`].
    pub fn cq_members(&self, owner: DescId) -> Vec<DescId> {
        let mut out = Vec::new();
        self.cq_members_into(owner, &mut out);
        out
    }

    /// Split the waiting description `id` at `at` granules: `id` keeps the
    /// front `[lo, lo+at)`; a new description takes the remainder. Any
    /// identity-mapped successors on the conflict queue are *not* touched
    /// here — the executive decides when and how to split them (demand
    /// split, presplit, or successor-splitting task).
    ///
    /// Returns the remainder's id.
    pub fn split(&mut self, id: DescId, at: u32) -> DescId {
        let (instance, job, range, class, enabling) = {
            let d = self.get(id);
            (d.instance, d.job, d.range, d.class, d.enabling)
        };
        assert!(at > 0 && at < range.len(), "split must be strictly inside");
        let (front, back) = range.split_at(at);
        self.get_mut(id).range = front;
        let rem = self.alloc(instance, job, back);
        {
            let r = self.get_mut(rem);
            r.class = class;
            r.enabling = enabling;
        }
        rem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with(n: usize) -> (DescArena, Vec<DescId>) {
        let mut a = DescArena::new();
        let ids = (0..n)
            .map(|i| {
                a.alloc(
                    InstanceId(0),
                    JobId(0),
                    GranuleRange::new(i as u32 * 10, i as u32 * 10 + 10),
                )
            })
            .collect();
        (a, ids)
    }

    #[test]
    fn alloc_and_recycle() {
        let (mut a, ids) = arena_with(3);
        assert_eq!(a.live(), 3);
        a.release(ids[1]);
        assert_eq!(a.live(), 2);
        let d = a.alloc(InstanceId(1), JobId(0), GranuleRange::new(0, 5));
        assert_eq!(d, ids[1], "free slot is reused");
        assert_eq!(a.live(), 3);
        assert_eq!(a.peak_live(), 3);
        assert_eq!(a.created_total(), 4);
    }

    #[test]
    fn conflict_queue_push_drain_order() {
        let (mut a, ids) = arena_with(4);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[0], ids[2]);
        a.cq_push(ids[0], ids[3]);
        assert!(a.get(ids[0]).has_conflicts());
        assert_eq!(a.get(ids[1]).state, DescState::Conflicted);
        let drained = a.cq_drain(ids[0]);
        assert_eq!(drained, vec![ids[1], ids[2], ids[3]]);
        assert!(!a.get(ids[0]).has_conflicts());
        assert_eq!(a.get(ids[1]).state, DescState::Fresh);
        assert!(a.cq_drain(ids[0]).is_empty());
    }

    #[test]
    fn conflict_queue_remove_middle() {
        let (mut a, ids) = arena_with(4);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[0], ids[2]);
        a.cq_push(ids[0], ids[3]);
        a.cq_remove(ids[2]);
        assert_eq!(a.cq_members(ids[0]), vec![ids[1], ids[3]]);
        let drained = a.cq_drain(ids[0]);
        assert_eq!(drained, vec![ids[1], ids[3]]);
    }

    #[test]
    fn conflict_queue_remove_head_and_sole() {
        let (mut a, ids) = arena_with(3);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[0], ids[2]);
        a.cq_remove(ids[1]); // head
        assert_eq!(a.cq_members(ids[0]), vec![ids[2]]);
        a.cq_remove(ids[2]); // sole member
        assert!(!a.get(ids[0]).has_conflicts());
    }

    #[test]
    fn split_preserves_attributes() {
        let mut a = DescArena::new();
        let d = a.alloc(InstanceId(2), JobId(1), GranuleRange::new(0, 100));
        a.get_mut(d).class = QueueClass::Elevated;
        a.get_mut(d).enabling = true;
        let rem = a.split(d, 30);
        assert_eq!(a.get(d).range, GranuleRange::new(0, 30));
        assert_eq!(a.get(rem).range, GranuleRange::new(30, 100));
        assert_eq!(a.get(rem).class, QueueClass::Elevated);
        assert!(a.get(rem).enabling);
        assert_eq!(a.get(rem).instance, InstanceId(2));
        assert_eq!(a.get(rem).job, JobId(1));
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn split_rejects_degenerate() {
        let mut a = DescArena::new();
        let d = a.alloc(InstanceId(0), JobId(0), GranuleRange::new(0, 10));
        let _ = a.split(d, 10);
    }

    #[test]
    fn nested_conflict_queues() {
        // successor queued on current; successor itself has a queue head
        // usable for its own successors (chained overlap structures).
        let (mut a, ids) = arena_with(3);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[1], ids[2]);
        assert_eq!(a.cq_members(ids[0]), vec![ids[1]]);
        assert_eq!(a.cq_members(ids[1]), vec![ids[2]]);
        // draining the outer queue leaves the inner intact
        let drained = a.cq_drain(ids[0]);
        assert_eq!(drained, vec![ids[1]]);
        assert_eq!(a.cq_members(ids[1]), vec![ids[2]]);
    }
}
