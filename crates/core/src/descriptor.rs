//! Computation descriptions and their conflict queues.
//!
//! PAX described computations "as large, contiguous collections of
//! granules. The descriptions were split apart as necessary to produce
//! conveniently sized tasks for workers and then merged back into single
//! descriptions when the work was completed." Each description carries "a
//! queue head for a double circularly-linked list of computable but
//! conflicting computational granules" — on completion, everything on that
//! queue becomes unconditionally computable.
//!
//! [`DescArena`] stores descriptions **struct-of-arrays**: one parallel
//! lane per field class, indexed by [`DescId`]. Completion processing — the
//! executive's hot loop — touches the `ranges`, identity, and `flags`
//! lanes of a few descriptors per event; with the old array-of-structs
//! slab every such touch dragged a whole ~56-byte `Descriptor` through the
//! cache, most of it (links, state, generation) dead weight for that
//! access. The lanes are:
//!
//! | lane        | element                 | used by                          |
//! |-------------|-------------------------|----------------------------------|
//! | `ranges`    | `GranuleRange` (8 B)    | dispatch, split, completion merge |
//! | `instances` | `InstanceId` (4 B)      | completion, dispatch             |
//! | `jobs`      | `JobId` (4 B)           | enqueue                          |
//! | `flags`     | `u8` bitset             | enabling / overlap / queue class |
//! | `links`     | `Links` + `DescState`   | conflict-queue ops, lifecycle    |
//! | `live_idx`  | `u32`                   | O(1) live-list removal           |
//!
//! Lifecycle state rides in the `links` lane rather than its own vector:
//! every conflict-queue operation writes state and links together
//! (queued ⇒ `Conflicted`, drained ⇒ `Fresh`), so a separate state lane
//! would cost each cq op one extra random cache line for nothing — and
//! the hot completion scan reads no state at all.
//!
//! Callers never see the layout: every operation goes through the typed
//! [`DescId`] accessor API (`range`, `instance`, `state`, `set_state`,
//! `enabling`, …), so `engine.rs`, `queue.rs`, and the dispatch path are
//! layout-agnostic. The conflict queue is still a double circularly-linked
//! list over arena indices (`u32::MAX` = nil), so no unsafe code is
//! needed. Completed descriptions are recycled through a free list.

use crate::ids::{DescId, GranuleRange, InstanceId, JobId, WorkerId};

/// Scheduling class of a description in the waiting computation queue.
///
/// "it was determined that such conflicting computations would be placed
/// ahead of the normal computations in the queue and, thus, given higher
/// priority."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueClass {
    /// Released conflicting/enabled computations — scheduled first.
    Elevated,
    /// Ordinary phase work, in dispatch order.
    Normal,
}

/// Lifecycle state of a description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescState {
    /// Newly created, not yet placed anywhere.
    Fresh,
    /// In the waiting computation queue.
    Waiting,
    /// Queued on another description's conflict queue, awaiting enablement.
    Conflicted,
    /// Detached into a successor-splitting task's information.
    Detached,
    /// Executing on a worker.
    Running(WorkerId),
    /// Completed (slot will be recycled).
    Done,
}

/// Nil link sentinel (`Option<DescId>` without the extra word).
const NIL: u32 = u32::MAX;

/// Flag lane bits.
const F_ENABLING: u8 = 1 << 0;
const F_OVERLAP: u8 = 1 << 1;
const F_ELEVATED: u8 = 1 << 2;

/// Conflict-queue linkage of one description: the head of its own queue,
/// the circular links used while *it* sits on some queue, and the owner
/// whose queue it is on. Grouped in one lane because the four fields are
/// only ever read and written together, by the cq operations.
#[derive(Debug, Clone, Copy)]
struct Links {
    cq_head: u32,
    next: u32,
    prev: u32,
    owner: u32,
    /// Lifecycle state lives with the links: every conflict-queue
    /// operation writes state and links together, so splitting them
    /// apart costs one extra cache line per op for nothing — the
    /// completion scan never reads state.
    state: DescState,
}

impl Links {
    const EMPTY: Links = Links {
        cq_head: NIL,
        next: NIL,
        prev: NIL,
        owner: NIL,
        state: DescState::Fresh,
    };
}

/// Struct-of-arrays arena of computation descriptions with free-list
/// recycling and conflict-queue operations. See the module docs for the
/// lane layout.
#[derive(Debug, Default)]
pub struct DescArena {
    ranges: Vec<GranuleRange>,
    instances: Vec<InstanceId>,
    jobs: Vec<JobId>,
    flags: Vec<u8>,
    links: Vec<Links>,
    /// Position in the owning instance's live list, maintained by the
    /// engine so completion removes a descriptor in O(1) (`NIL` = untracked).
    live_idx: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    created_total: u64,
}

impl DescArena {
    /// Empty arena.
    pub fn new() -> DescArena {
        DescArena::default()
    }

    /// Empty arena with every lane pre-sized for `cap` descriptions.
    pub fn with_capacity(cap: usize) -> DescArena {
        DescArena {
            ranges: Vec::with_capacity(cap),
            instances: Vec::with_capacity(cap),
            jobs: Vec::with_capacity(cap),
            flags: Vec::with_capacity(cap),
            links: Vec::with_capacity(cap),
            live_idx: Vec::with_capacity(cap),
            ..DescArena::default()
        }
    }

    /// Allocate a description for `range` of `instance`.
    pub fn alloc(&mut self, instance: InstanceId, job: JobId, range: GranuleRange) -> DescId {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.created_total += 1;
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.ranges[i] = range;
            self.instances[i] = instance;
            self.jobs[i] = job;
            self.flags[i] = 0;
            self.links[i] = Links::EMPTY;
            self.live_idx[i] = NIL;
            DescId(idx)
        } else {
            let idx = self.ranges.len() as u32;
            self.ranges.push(range);
            self.instances.push(instance);
            self.jobs.push(job);
            self.flags.push(0);
            self.links.push(Links::EMPTY);
            self.live_idx.push(NIL);
            DescId(idx)
        }
    }

    /// Recycle a completed description. Its conflict queue must already be
    /// empty and it must not sit on anyone else's queue.
    pub fn release(&mut self, id: DescId) {
        let i = id.0 as usize;
        debug_assert!(
            self.links[i].cq_head == NIL,
            "releasing descriptor with conflicts"
        );
        debug_assert!(
            self.links[i].owner == NIL,
            "releasing descriptor still on a queue"
        );
        debug_assert!(
            !matches!(self.links[i].state, DescState::Done),
            "double release"
        );
        self.links[i].state = DescState::Done;
        self.live -= 1;
        self.free.push(id.0);
    }

    // --- typed field accessors (the layout firewall) -------------------

    /// Covered granules `[lo, hi)`.
    #[inline]
    pub fn range(&self, id: DescId) -> GranuleRange {
        self.ranges[id.0 as usize]
    }

    /// Phase instance the granules belong to.
    #[inline]
    pub fn instance(&self, id: DescId) -> InstanceId {
        self.instances[id.0 as usize]
    }

    /// Job stream (multi-job environments).
    #[inline]
    pub fn job(&self, id: DescId) -> JobId {
        self.jobs[id.0 as usize]
    }

    /// Lifecycle state.
    #[inline]
    pub fn state(&self, id: DescId) -> DescState {
        self.links[id.0 as usize].state
    }

    /// Set the lifecycle state.
    #[inline]
    pub fn set_state(&mut self, id: DescId, s: DescState) {
        self.links[id.0 as usize].state = s;
    }

    /// Scheduling class when waiting.
    #[inline]
    pub fn class(&self, id: DescId) -> QueueClass {
        if self.flags[id.0 as usize] & F_ELEVATED != 0 {
            QueueClass::Elevated
        } else {
            QueueClass::Normal
        }
    }

    /// Set the scheduling class.
    #[inline]
    pub fn set_class(&mut self, id: DescId, c: QueueClass) {
        let f = &mut self.flags[id.0 as usize];
        match c {
            QueueClass::Elevated => *f |= F_ELEVATED,
            QueueClass::Normal => *f &= !F_ELEVATED,
        }
    }

    /// The paper's status bit: completion of this description must
    /// decrement enablement counters of dependent successor granules.
    #[inline]
    pub fn enabling(&self, id: DescId) -> bool {
        self.flags[id.0 as usize] & F_ENABLING != 0
    }

    /// Set the enabling status bit.
    #[inline]
    pub fn set_enabling(&mut self, id: DescId, v: bool) {
        let f = &mut self.flags[id.0 as usize];
        if v {
            *f |= F_ENABLING;
        } else {
            *f &= !F_ENABLING;
        }
    }

    /// Set at dispatch when the owning instance's predecessor was still
    /// incomplete — i.e. this task executes *during* the predecessor's
    /// phase, which is the overlap the paper measures.
    #[inline]
    pub fn overlap(&self, id: DescId) -> bool {
        self.flags[id.0 as usize] & F_OVERLAP != 0
    }

    /// Set the overlap marker.
    #[inline]
    pub fn set_overlap(&mut self, id: DescId, v: bool) {
        let f = &mut self.flags[id.0 as usize];
        if v {
            *f |= F_OVERLAP;
        } else {
            *f &= !F_OVERLAP;
        }
    }

    /// Number of granules covered by `id`.
    #[inline]
    pub fn granules(&self, id: DescId) -> u32 {
        self.ranges[id.0 as usize].len()
    }

    /// True when the conflict queue of `id` is non-empty.
    #[inline]
    pub fn has_conflicts(&self, id: DescId) -> bool {
        self.links[id.0 as usize].cq_head != NIL
    }

    /// Live-list slot of `id` (`u32::MAX` = untracked).
    #[inline]
    pub(crate) fn live_idx(&self, id: DescId) -> u32 {
        self.live_idx[id.0 as usize]
    }

    /// Record the live-list slot of `id`.
    #[inline]
    pub(crate) fn set_live_idx(&mut self, id: DescId, idx: u32) {
        self.live_idx[id.0 as usize] = idx;
    }

    // --- population statistics -----------------------------------------

    /// Currently live descriptions.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live descriptions.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total allocations over the run (storage-economy statistic; the
    /// paper chose contiguous collections precisely to keep this low).
    pub fn created_total(&self) -> u64 {
        self.created_total
    }

    /// Number of slots across all lanes (live + recyclable).
    pub fn slots(&self) -> usize {
        self.ranges.len()
    }

    // --- conflict queue (double circularly-linked list) ---------------

    /// Append `member` to `owner`'s conflict queue.
    pub fn cq_push(&mut self, owner: DescId, member: DescId) {
        debug_assert!(owner != member);
        debug_assert!(self.links[member.0 as usize].owner == NIL);
        let head = self.links[owner.0 as usize].cq_head;
        if head == NIL {
            let m = &mut self.links[member.0 as usize];
            m.next = member.0;
            m.prev = member.0;
            m.owner = owner.0;
            self.links[owner.0 as usize].cq_head = member.0;
        } else {
            // insert before head == append at tail of circular list
            let tail = self.links[head as usize].prev;
            debug_assert!(tail != NIL, "circular list invariant");
            {
                let m = &mut self.links[member.0 as usize];
                m.next = head;
                m.prev = tail;
                m.owner = owner.0;
            }
            self.links[tail as usize].next = member.0;
            self.links[head as usize].prev = member.0;
        }
        self.links[member.0 as usize].state = DescState::Conflicted;
    }

    /// Detach every member of `owner`'s conflict queue into `out` (which
    /// is *not* cleared), in insertion order. Members come back with state
    /// `Fresh` and no links. Taking the output buffer from the caller lets
    /// completion processing reuse one vector across every event.
    pub fn cq_drain_into(&mut self, owner: DescId, out: &mut Vec<DescId>) {
        let head = self.links[owner.0 as usize].cq_head;
        if head == NIL {
            return;
        }
        let mut cur = head;
        loop {
            let next = self.links[cur as usize].next;
            debug_assert!(next != NIL, "circular list invariant");
            {
                let m = &mut self.links[cur as usize];
                m.next = NIL;
                m.prev = NIL;
                m.owner = NIL;
            }
            self.links[cur as usize].state = DescState::Fresh;
            out.push(DescId(cur));
            if next == head {
                break;
            }
            cur = next;
        }
        self.links[owner.0 as usize].cq_head = NIL;
    }

    /// Detach and return every member of `owner`'s conflict queue, in
    /// insertion order. Allocating wrapper over
    /// [`DescArena::cq_drain_into`] for tests and cold paths.
    pub fn cq_drain(&mut self, owner: DescId) -> Vec<DescId> {
        let mut out = Vec::new();
        self.cq_drain_into(owner, &mut out);
        out
    }

    /// Remove a single `member` from whatever conflict queue it is on.
    pub fn cq_remove(&mut self, member: DescId) {
        let Links {
            owner, next, prev, ..
        } = self.links[member.0 as usize];
        assert!(owner != NIL, "cq_remove on unqueued descriptor");
        debug_assert!(next != NIL && prev != NIL, "circular list invariant");
        if next == member.0 {
            // sole member
            self.links[owner as usize].cq_head = NIL;
        } else {
            self.links[prev as usize].next = next;
            self.links[next as usize].prev = prev;
            if self.links[owner as usize].cq_head == member.0 {
                self.links[owner as usize].cq_head = next;
            }
        }
        let m = &mut self.links[member.0 as usize];
        m.next = NIL;
        m.prev = NIL;
        m.owner = NIL;
        self.links[member.0 as usize].state = DescState::Fresh;
    }

    /// Collect members of `owner`'s conflict queue into `out` (not
    /// cleared) without detaching them.
    pub fn cq_members_into(&self, owner: DescId, out: &mut Vec<DescId>) {
        let head = self.links[owner.0 as usize].cq_head;
        if head == NIL {
            return;
        }
        let mut cur = head;
        loop {
            out.push(DescId(cur));
            let next = self.links[cur as usize].next;
            debug_assert!(next != NIL, "circular list invariant");
            if next == head {
                break;
            }
            cur = next;
        }
    }

    /// Iterate members of `owner`'s conflict queue without detaching.
    /// Allocating wrapper over [`DescArena::cq_members_into`].
    pub fn cq_members(&self, owner: DescId) -> Vec<DescId> {
        let mut out = Vec::new();
        self.cq_members_into(owner, &mut out);
        out
    }

    /// Split the waiting description `id` at `at` granules: `id` keeps the
    /// front `[lo, lo+at)`; a new description takes the remainder. Any
    /// identity-mapped successors on the conflict queue are *not* touched
    /// here — the executive decides when and how to split them (demand
    /// split, presplit, or successor-splitting task).
    ///
    /// Returns the remainder's id.
    pub fn split(&mut self, id: DescId, at: u32) -> DescId {
        let i = id.0 as usize;
        let range = self.ranges[i];
        assert!(at > 0 && at < range.len(), "split must be strictly inside");
        let (instance, job) = (self.instances[i], self.jobs[i]);
        let inherited = self.flags[i] & (F_ELEVATED | F_ENABLING);
        let (front, back) = range.split_at(at);
        self.ranges[i] = front;
        let rem = self.alloc(instance, job, back);
        self.flags[rem.0 as usize] = inherited;
        rem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with(n: usize) -> (DescArena, Vec<DescId>) {
        let mut a = DescArena::new();
        let ids = (0..n)
            .map(|i| {
                a.alloc(
                    InstanceId(0),
                    JobId(0),
                    GranuleRange::new(i as u32 * 10, i as u32 * 10 + 10),
                )
            })
            .collect();
        (a, ids)
    }

    #[test]
    fn alloc_and_recycle() {
        let (mut a, ids) = arena_with(3);
        assert_eq!(a.live(), 3);
        a.release(ids[1]);
        assert_eq!(a.live(), 2);
        let d = a.alloc(InstanceId(1), JobId(0), GranuleRange::new(0, 5));
        assert_eq!(d, ids[1], "free slot is reused");
        assert_eq!(a.live(), 3);
        assert_eq!(a.peak_live(), 3);
        assert_eq!(a.created_total(), 4);
        assert_eq!(a.slots(), 3);
        // recycled slot comes back fully reset
        assert_eq!(a.state(d), DescState::Fresh);
        assert_eq!(a.class(d), QueueClass::Normal);
        assert!(!a.enabling(d) && !a.overlap(d));
        assert!(!a.has_conflicts(d));
    }

    #[test]
    fn conflict_queue_push_drain_order() {
        let (mut a, ids) = arena_with(4);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[0], ids[2]);
        a.cq_push(ids[0], ids[3]);
        assert!(a.has_conflicts(ids[0]));
        assert_eq!(a.state(ids[1]), DescState::Conflicted);
        let drained = a.cq_drain(ids[0]);
        assert_eq!(drained, vec![ids[1], ids[2], ids[3]]);
        assert!(!a.has_conflicts(ids[0]));
        assert_eq!(a.state(ids[1]), DescState::Fresh);
        assert!(a.cq_drain(ids[0]).is_empty());
    }

    #[test]
    fn conflict_queue_remove_middle() {
        let (mut a, ids) = arena_with(4);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[0], ids[2]);
        a.cq_push(ids[0], ids[3]);
        a.cq_remove(ids[2]);
        assert_eq!(a.cq_members(ids[0]), vec![ids[1], ids[3]]);
        let drained = a.cq_drain(ids[0]);
        assert_eq!(drained, vec![ids[1], ids[3]]);
    }

    #[test]
    fn conflict_queue_remove_head_and_sole() {
        let (mut a, ids) = arena_with(3);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[0], ids[2]);
        a.cq_remove(ids[1]); // head
        assert_eq!(a.cq_members(ids[0]), vec![ids[2]]);
        a.cq_remove(ids[2]); // sole member
        assert!(!a.has_conflicts(ids[0]));
    }

    #[test]
    fn split_preserves_attributes() {
        let mut a = DescArena::new();
        let d = a.alloc(InstanceId(2), JobId(1), GranuleRange::new(0, 100));
        a.set_class(d, QueueClass::Elevated);
        a.set_enabling(d, true);
        let rem = a.split(d, 30);
        assert_eq!(a.range(d), GranuleRange::new(0, 30));
        assert_eq!(a.range(rem), GranuleRange::new(30, 100));
        assert_eq!(a.class(rem), QueueClass::Elevated);
        assert!(a.enabling(rem));
        assert_eq!(a.instance(rem), InstanceId(2));
        assert_eq!(a.job(rem), JobId(1));
        // overlap is a dispatch-time marker and must NOT be inherited
        a.set_overlap(d, true);
        let rem2 = a.split(d, 10);
        assert!(!a.overlap(rem2));
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn split_rejects_degenerate() {
        let mut a = DescArena::new();
        let d = a.alloc(InstanceId(0), JobId(0), GranuleRange::new(0, 10));
        let _ = a.split(d, 10);
    }

    #[test]
    fn nested_conflict_queues() {
        // successor queued on current; successor itself has a queue head
        // usable for its own successors (chained overlap structures).
        let (mut a, ids) = arena_with(3);
        a.cq_push(ids[0], ids[1]);
        a.cq_push(ids[1], ids[2]);
        assert_eq!(a.cq_members(ids[0]), vec![ids[1]]);
        assert_eq!(a.cq_members(ids[1]), vec![ids[2]]);
        // draining the outer queue leaves the inner intact
        let drained = a.cq_drain(ids[0]);
        assert_eq!(drained, vec![ids[1]]);
        assert_eq!(a.cq_members(ids[1]), vec![ids[2]]);
    }

    #[test]
    fn flag_lane_bits_are_independent() {
        let (mut a, ids) = arena_with(1);
        let d = ids[0];
        a.set_enabling(d, true);
        a.set_overlap(d, true);
        a.set_class(d, QueueClass::Elevated);
        assert!(a.enabling(d) && a.overlap(d));
        assert_eq!(a.class(d), QueueClass::Elevated);
        a.set_enabling(d, false);
        assert!(!a.enabling(d) && a.overlap(d));
        assert_eq!(a.class(d), QueueClass::Elevated);
        a.set_class(d, QueueClass::Normal);
        assert!(a.overlap(d));
        assert_eq!(a.class(d), QueueClass::Normal);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let a = DescArena::with_capacity(64);
        assert_eq!(a.live(), 0);
        assert_eq!(a.slots(), 0);
        assert_eq!(a.created_total(), 0);
    }
}
