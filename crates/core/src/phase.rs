//! Phase definitions and per-dispatch statistics.

use pax_sim::dist::CostModel;
use pax_sim::time::{SimDuration, SimTime};

/// Static description of one parallel computational phase.
#[derive(Debug, Clone)]
pub struct PhaseDef {
    /// Human-readable name (used by the language layer and reports).
    pub name: String,
    /// Number of granules dispatched per execution of this phase.
    pub granules: u32,
    /// Per-granule execution cost model.
    pub cost: CostModel,
    /// Lines of parallel code this phase represents — the census weight
    /// used to reproduce the paper's percentage-of-code statistics.
    pub lines: u32,
    /// Names of secondary-resource pools
    /// ([`ResourcePool`](pax_sim::machine::ResourcePool)) a task of this
    /// phase must hold one token from for its whole execution. Empty (the
    /// default) means the task needs only a processor. Names are resolved
    /// against `MachineConfig::resources` at session build; an unknown
    /// name is a structured engine error, not a panic.
    pub requires: Vec<String>,
}

impl PhaseDef {
    /// A phase with the given name, granule count, and cost model.
    pub fn new(name: impl Into<String>, granules: u32, cost: CostModel) -> PhaseDef {
        assert!(granules > 0, "phase must have at least one granule");
        PhaseDef {
            name: name.into(),
            granules,
            cost,
            lines: 0,
            requires: Vec::new(),
        }
    }

    /// Attach a census line weight.
    pub fn with_lines(mut self, lines: u32) -> PhaseDef {
        self.lines = lines;
        self
    }

    /// Require one token from each named secondary-resource pool for
    /// every task of this phase.
    pub fn with_requires(mut self, pools: Vec<String>) -> PhaseDef {
        self.requires = pools;
        self
    }
}

/// Timing and overlap statistics for one phase instance (one dispatch).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// When the instance was initiated (descriptors created / gates set).
    /// Under overlap this precedes `current_at`.
    pub initiated_at: SimTime,
    /// When the instance became the current phase (its predecessor
    /// completed, or program start).
    pub current_at: SimTime,
    /// First compute start of any of its granules.
    pub first_start: Option<SimTime>,
    /// Completion of its last granule.
    pub completed_at: Option<SimTime>,
    /// Granules of this instance that *completed* before the predecessor
    /// instance completed — the overlap the paper is after.
    pub overlap_granules: u32,
    /// Granules executed in total (== def granules when complete).
    pub executed_granules: u32,
    /// Serial time spent before this phase could be dispatched
    /// (the null-mapping "serial actions and decisions").
    pub serial_gap: SimDuration,
}

impl PhaseStats {
    /// Fresh statistics at initiation time `at`.
    pub fn new(at: SimTime) -> PhaseStats {
        PhaseStats {
            initiated_at: at,
            current_at: at,
            first_start: None,
            completed_at: None,
            overlap_granules: 0,
            executed_granules: 0,
            serial_gap: SimDuration::ZERO,
        }
    }

    /// Wall-clock span from becoming current to completion, if complete.
    pub fn span(&self) -> Option<SimDuration> {
        self.completed_at.map(|end| end.since(self.current_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_sim::dist::CostModel;

    #[test]
    fn def_builder() {
        let p = PhaseDef::new("sweep", 64, CostModel::constant(10)).with_lines(37);
        assert_eq!(p.name, "sweep");
        assert_eq!(p.granules, 64);
        assert_eq!(p.lines, 37);
        assert!(p.requires.is_empty());
        let p = p.with_requires(vec!["operator".into()]);
        assert_eq!(p.requires, ["operator"]);
    }

    #[test]
    #[should_panic(expected = "at least one granule")]
    fn def_rejects_empty() {
        let _ = PhaseDef::new("bad", 0, CostModel::constant(1));
    }

    #[test]
    fn stats_span() {
        let mut s = PhaseStats::new(SimTime(10));
        assert_eq!(s.span(), None);
        s.current_at = SimTime(20);
        s.completed_at = Some(SimTime(50));
        assert_eq!(s.span(), Some(SimDuration(30)));
    }
}
