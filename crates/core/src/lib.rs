//! # pax-core — the paper's contribution
//!
//! A full re-implementation of the scheduling machinery described in
//! *Increasing Processor Utilization During Parallel Computation Rundown*
//! (W. H. Jones, NASA TM-87349, ICPP 1986): a PAX-style dynamic executive
//! that overlaps parallel computational phases to keep processors busy
//! while a phase runs down.
//!
//! ## Concepts
//!
//! * A **phase** ([`phase::PhaseDef`]) is a bag of **granules** —
//!   indivisible computations executed asynchronously by workers.
//! * Phases normally execute in strict sequence; as one drains, processors
//!   idle (**computational rundown**).
//! * An **enablement mapping** ([`mapping::EnablementMapping`]) between a
//!   phase and its successor says which successor granules become
//!   computable as current granules complete: universal, identity,
//!   forward/reverse indirect (via **composite granule maps** with
//!   **enablement counters**), seam (extension), or null.
//! * The **executive** ([`engine::Simulation`]) dispatches **computation
//!   descriptions** ([`descriptor`]) — contiguous granule collections that
//!   are split on demand into worker-sized tasks and merged back on
//!   completion — through a **waiting computation queue** ([`queue`])
//!   where released enabled work is "placed ahead of the normal
//!   computations".
//! * An [`policy::OverlapPolicy`] selects among the paper's control
//!   strategies: demand splitting vs presplitting vs successor-splitting
//!   tasks, immediate vs background composite-map construction, priority
//!   elevation of enabling granules, and the early-enablement subset size.
//!
//! ## Quick example
//!
//! ```
//! use pax_core::prelude::*;
//! use pax_sim::dist::CostModel;
//! use pax_sim::machine::MachineConfig;
//!
//! // Two 64-granule phases, identity-mapped (B(I)=A(I); C(I)=B(I)).
//! let mut b = ProgramBuilder::new();
//! let a = b.phase(PhaseDef::new("copy-a-to-b", 64, CostModel::constant(10)));
//! let c = b.phase(PhaseDef::new("copy-b-to-c", 64, CostModel::constant(10)));
//! b.dispatch_enable(a, vec![EnableSpec { successor: c, mapping: EnablementMapping::Identity }]);
//! b.dispatch(c);
//! let program = b.build().unwrap();
//!
//! let strict = {
//!     let mut s = Simulation::new(MachineConfig::ideal(8), OverlapPolicy::strict());
//!     s.add_job(program.clone());
//!     s.run().unwrap()
//! };
//! let overlapped = {
//!     let mut s = Simulation::new(MachineConfig::ideal(8), OverlapPolicy::overlap());
//!     s.add_job(program);
//!     s.run().unwrap()
//! };
//! assert!(overlapped.makespan <= strict.makespan);
//! ```

#![warn(missing_docs)]

pub mod descriptor;
pub mod engine;
pub mod ids;
pub mod mapping;
pub mod phase;
pub mod policy;
pub mod program;
pub mod queue;
pub mod rangeset;
pub mod report;
pub mod shard;

/// Convenient re-exports of the items almost every user needs: the whole
/// configure → build → run/session → report surface, including the
/// `pax-sim` machine-description types, so a scenario needs only
/// `use pax_core::prelude::*;`.
pub mod prelude {
    pub use crate::engine::{EngineError, Session, Simulation};
    pub use crate::ids::{GranuleRange, InstanceId, JobId, PhaseId, WorkerId};
    pub use crate::mapping::{
        CompositeMap, EnablementMapping, ForwardMap, MappingKind, ReverseMap, SeamMap,
    };
    pub use crate::phase::{PhaseDef, PhaseStats};
    pub use crate::policy::{
        AssignmentPolicy, CompositeBuild, OverlapPolicy, SplitStrategy, TaskSizing,
    };
    pub use crate::program::{BranchTest, EnableSpec, Lookahead, Program, ProgramBuilder, Step};
    pub use crate::report::{
        ClassReport, JobReport, PhaseReport, PoolReport, RunReport, RundownWindow,
    };
    pub use crate::shard::{
        run_sharded, Coordinator, EpochPlan, GroupLink, ShardEngine, ShardedRun,
    };
    pub use pax_sim::dist::{ArrivalProcess, CostModel, DurationDist};
    pub use pax_sim::faults::{FaultModel, FaultPlan, RetryPolicy, ScriptedFault};
    pub use pax_sim::locality::{DataLayout, LocalityModel};
    pub use pax_sim::machine::{
        AdmissionPolicy, BatchPolicy, ClassAffinity, ConfigError, ExecutivePlacement,
        MachineConfig, ManagementCosts, ProcessorClass, ResourcePool, RunStorageKind, ShardPolicy,
    };
    pub use pax_sim::seeded_rng;
    pub use pax_sim::time::{SimDuration, SimTime};
}

pub use prelude::*;
