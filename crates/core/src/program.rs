//! Phase programs: the control stream the executive interprets.
//!
//! A program is a list of steps — phase dispatches, serial regions,
//! counter arithmetic, and conditional branches — mirroring the control
//! structures of the paper's "Language Construction" section. The
//! `ENABLE` clause of a dispatch names the successor phase(s) and the
//! enablement mapping to apply, which is exactly the interlock the paper
//! asks the language to give the executive for verification.

use crate::ids::PhaseId;
use crate::mapping::EnablementMapping;
use crate::phase::PhaseDef;
use pax_sim::time::SimDuration;

/// One `phase-name/MAPPING=option` element of an `ENABLE` clause.
#[derive(Debug, Clone)]
pub struct EnableSpec {
    /// Named successor phase (checked against the phase that actually
    /// follows — the paper's verifiable interlock).
    pub successor: PhaseId,
    /// Mapping to apply when overlapping into that successor.
    pub mapping: EnablementMapping,
}

/// Branch predicates available to programs. All are functions of
/// program-level counters only, which is what makes a branch
/// *independent of the computational phase* and therefore preprocessable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchTest {
    /// `counter < value`.
    CounterLt(usize, i64),
    /// `counter % modulus == residue` (modulus > 0).
    CounterModEq {
        /// Counter index.
        counter: usize,
        /// Modulus (must be positive).
        modulus: i64,
        /// Residue compared against.
        residue: i64,
    },
    /// `counter % modulus != residue` — the paper's
    /// `IF (IMOD(LOOPCOUNTER,10).NE.0)`.
    CounterModNe {
        /// Counter index.
        counter: usize,
        /// Modulus (must be positive).
        modulus: i64,
        /// Residue compared against.
        residue: i64,
    },
    /// Always true.
    Always,
    /// Always false.
    Never,
}

impl BranchTest {
    /// Evaluate against a counter file.
    pub fn eval(&self, counters: &[i64]) -> bool {
        match *self {
            BranchTest::CounterLt(c, v) => counters[c] < v,
            BranchTest::CounterModEq {
                counter,
                modulus,
                residue,
            } => counters[counter].rem_euclid(modulus) == residue,
            BranchTest::CounterModNe {
                counter,
                modulus,
                residue,
            } => counters[counter].rem_euclid(modulus) != residue,
            BranchTest::Always => true,
            BranchTest::Never => false,
        }
    }
}

/// One step of a program.
#[derive(Debug, Clone)]
pub enum Step {
    /// Dispatch a phase; `enables` carries the `ENABLE` clause.
    Dispatch {
        /// Phase definition to dispatch.
        phase: PhaseId,
        /// Successor enablement declarations.
        enables: Vec<EnableSpec>,
        /// Whether a branch immediately downstream may be preprocessed
        /// (`ENABLE/BRANCHINDEPENDENT`). When false, lookahead stops at
        /// any branch (`ENABLE/BRANCHDEPENDENT` or unannotated).
        branch_independent: bool,
    },
    /// Serial executive work between phases ("serial actions and
    /// decisions had to occur between the phases" — the cause of every
    /// null mapping observed in PAX/CASPER).
    Serial {
        /// How long the serial actions take on the executive.
        duration: SimDuration,
        /// Label for reports.
        label: String,
    },
    /// Add `delta` to counter `idx`.
    Incr {
        /// Counter index.
        idx: usize,
        /// Amount added.
        delta: i64,
    },
    /// Conditional jump: if `test` then continue at `on_true`, else at
    /// `on_false` (absolute step indices).
    Branch {
        /// Predicate over program counters.
        test: BranchTest,
        /// Target when true.
        on_true: usize,
        /// Target when false.
        on_false: usize,
    },
    /// Unconditional jump.
    Goto(usize),
    /// Program end.
    End,
}

/// A complete program: phase definitions plus the control stream.
#[derive(Debug, Clone)]
pub struct Program {
    /// Phase definitions, indexed by [`PhaseId`].
    pub phases: Vec<PhaseDef>,
    /// Control steps; execution starts at step 0.
    pub steps: Vec<Step>,
    /// Number of program counters (for loops / branch tests).
    pub counters: usize,
}

/// Result of statically looking ahead from a dispatch step to find which
/// phase will follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookahead {
    /// The next dispatched phase and its step index.
    Phase {
        /// Phase definition that follows.
        phase: PhaseId,
        /// Step index of its dispatch.
        step: usize,
    },
    /// A serial region intervenes — overlap impossible (null gap).
    BlockedBySerial,
    /// A data-dependent (non-preprocessable) branch intervenes.
    BlockedByBranch,
    /// The program ends.
    ProgramEnd,
}

impl Program {
    /// Validate step targets and phase ids; returns a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.steps.iter().enumerate() {
            match s {
                Step::Dispatch { phase, enables, .. } => {
                    if phase.0 as usize >= self.phases.len() {
                        return Err(format!("step {i}: dispatch of unknown {phase}"));
                    }
                    for e in enables {
                        if e.successor.0 as usize >= self.phases.len() {
                            return Err(format!("step {i}: ENABLE names unknown {}", e.successor));
                        }
                        self.validate_enable(i, *phase, e)?;
                    }
                }
                Step::Branch {
                    test,
                    on_true,
                    on_false,
                } => {
                    if *on_true >= self.steps.len() || *on_false >= self.steps.len() {
                        return Err(format!("step {i}: branch target out of range"));
                    }
                    let c = match *test {
                        BranchTest::CounterLt(c, _) => Some(c),
                        BranchTest::CounterModEq { counter, .. }
                        | BranchTest::CounterModNe { counter, .. } => Some(counter),
                        _ => None,
                    };
                    if let Some(c) = c {
                        if c >= self.counters {
                            return Err(format!("step {i}: branch uses unknown counter {c}"));
                        }
                    }
                }
                Step::Goto(t) => {
                    if *t >= self.steps.len() {
                        return Err(format!("step {i}: goto target out of range"));
                    }
                }
                Step::Incr { idx, .. } => {
                    if *idx >= self.counters {
                        return Err(format!("step {i}: unknown counter {idx}"));
                    }
                }
                Step::Serial { .. } | Step::End => {}
            }
        }
        Ok(())
    }

    /// Check one ENABLE clause's mapping against the granule counts of
    /// the phases it connects — the executive-level half of the paper's
    /// interlock ("so that the executive system (or language processor)
    /// can verify").
    fn validate_enable(&self, step: usize, current: PhaseId, e: &EnableSpec) -> Result<(), String> {
        use crate::mapping::EnablementMapping as M;
        let cur = self.phases[current.0 as usize].granules;
        let succ = self.phases[e.successor.0 as usize].granules;
        match &e.mapping {
            M::Universal | M::Null => Ok(()),
            M::Identity => {
                if cur != succ {
                    Err(format!(
                        "step {step}: identity mapping connects phases of {cur} and \
                         {succ} granules; counts must match"
                    ))
                } else {
                    Ok(())
                }
            }
            M::ForwardIndirect(f) => {
                if f.successor_granules != succ {
                    Err(format!(
                        "step {step}: forward map built for {} successor granules, \
                         phase has {succ}",
                        f.successor_granules
                    ))
                } else if f.targets.len() > cur as usize {
                    Err(format!(
                        "step {step}: forward map has {} entries but the current \
                         phase has only {cur} granules",
                        f.targets.len()
                    ))
                } else {
                    Ok(())
                }
            }
            M::ReverseIndirect(r) => {
                if r.requires.len() != succ as usize {
                    Err(format!(
                        "step {step}: reverse map covers {} successor granules, \
                         phase has {succ}",
                        r.requires.len()
                    ))
                } else if let Some(&d) = r.requires.iter().flatten().find(|&&d| d >= cur) {
                    Err(format!(
                        "step {step}: reverse map requires current granule {d}, \
                         phase has only {cur}"
                    ))
                } else {
                    Ok(())
                }
            }
            M::Seam(s) => {
                if s.requires.len() != succ as usize {
                    Err(format!(
                        "step {step}: seam map covers {} successor granules, \
                         phase has {succ}",
                        s.requires.len()
                    ))
                } else if let Some(&d) = s.requires.iter().flatten().find(|&&d| d >= cur) {
                    Err(format!(
                        "step {step}: seam map requires current granule {d}, \
                         phase has only {cur}"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Statically look ahead from just past step `from` to find the next
    /// phase dispatch, simulating counter side effects on a scratch copy
    /// (so preprocessing a branch sees the counter values it *will* have).
    ///
    /// `branch_independent` controls whether branches may be preprocessed;
    /// it comes from the dispatch's `ENABLE` annotation.
    pub fn lookahead(&self, from: usize, counters: &[i64], branch_independent: bool) -> Lookahead {
        lookahead_steps(&self.steps, from, counters, branch_independent)
    }
}

/// [`Program::lookahead`] over a raw step list. The executive interns
/// each program's steps behind an `Arc<[Step]>` and preprocesses against
/// that single copy.
pub fn lookahead_steps(
    steps: &[Step],
    from: usize,
    counters: &[i64],
    branch_independent: bool,
) -> Lookahead {
    let mut scratch: Vec<i64> = counters.to_vec();
    let mut pc = from + 1;
    let mut fuel = steps.len() * 2 + 8; // cycle guard
    while fuel > 0 {
        fuel -= 1;
        match steps.get(pc) {
            None => return Lookahead::ProgramEnd,
            Some(Step::End) => return Lookahead::ProgramEnd,
            Some(Step::Dispatch { phase, .. }) => {
                return Lookahead::Phase {
                    phase: *phase,
                    step: pc,
                }
            }
            Some(Step::Serial { .. }) => return Lookahead::BlockedBySerial,
            Some(Step::Incr { idx, delta }) => {
                scratch[*idx] += delta;
                pc += 1;
            }
            Some(Step::Goto(t)) => pc = *t,
            Some(Step::Branch {
                test,
                on_true,
                on_false,
            }) => {
                if !branch_independent {
                    return Lookahead::BlockedByBranch;
                }
                pc = if test.eval(&scratch) {
                    *on_true
                } else {
                    *on_false
                };
            }
        }
    }
    // Pathological counter-free loop with no dispatch: treat as end.
    Lookahead::ProgramEnd
}

/// Convenience builder for linear and looping programs.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    phases: Vec<PhaseDef>,
    steps: Vec<Step>,
    counters: usize,
}

impl ProgramBuilder {
    /// Empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Register a phase definition, returning its id.
    pub fn phase(&mut self, def: PhaseDef) -> PhaseId {
        let id = PhaseId(self.phases.len() as u32);
        self.phases.push(def);
        id
    }

    /// Allocate a program counter, returning its index.
    pub fn counter(&mut self) -> usize {
        self.counters += 1;
        self.counters - 1
    }

    /// Append a dispatch with no enablement declarations.
    pub fn dispatch(&mut self, phase: PhaseId) -> &mut Self {
        self.steps.push(Step::Dispatch {
            phase,
            enables: Vec::new(),
            branch_independent: false,
        });
        self
    }

    /// Append a dispatch with an `ENABLE` clause.
    pub fn dispatch_enable(&mut self, phase: PhaseId, enables: Vec<EnableSpec>) -> &mut Self {
        self.steps.push(Step::Dispatch {
            phase,
            enables,
            branch_independent: false,
        });
        self
    }

    /// Append a dispatch with an `ENABLE/BRANCHINDEPENDENT` clause.
    pub fn dispatch_enable_branch_independent(
        &mut self,
        phase: PhaseId,
        enables: Vec<EnableSpec>,
    ) -> &mut Self {
        self.steps.push(Step::Dispatch {
            phase,
            enables,
            branch_independent: true,
        });
        self
    }

    /// Append a serial region.
    pub fn serial(&mut self, duration: u64, label: impl Into<String>) -> &mut Self {
        self.steps.push(Step::Serial {
            duration: SimDuration(duration),
            label: label.into(),
        });
        self
    }

    /// Append a counter increment.
    pub fn incr(&mut self, idx: usize, delta: i64) -> &mut Self {
        self.steps.push(Step::Incr { idx, delta });
        self
    }

    /// Append a raw step (branches/gotos need explicit indices).
    pub fn step(&mut self, s: Step) -> &mut Self {
        self.steps.push(s);
        self
    }

    /// Index the *next* step will get (for wiring branch targets).
    pub fn next_index(&self) -> usize {
        self.steps.len()
    }

    /// Finish with an `End` step and validate.
    pub fn build(mut self) -> Result<Program, String> {
        self.steps.push(Step::End);
        let p = Program {
            phases: self.phases,
            steps: self.steps,
            counters: self.counters,
        };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_sim::dist::CostModel;

    fn two_phase_program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new("a", 8, CostModel::constant(10)));
        let c = b.phase(PhaseDef::new("b", 8, CostModel::constant(10)));
        b.dispatch_enable(
            a,
            vec![EnableSpec {
                successor: c,
                mapping: EnablementMapping::Identity,
            }],
        );
        b.dispatch(c);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_program() {
        let p = two_phase_program();
        assert_eq!(p.phases.len(), 2);
        assert!(matches!(p.steps.last(), Some(Step::End)));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn lookahead_finds_next_dispatch() {
        let p = two_phase_program();
        match p.lookahead(0, &[], false) {
            Lookahead::Phase { phase, step } => {
                assert_eq!(phase, PhaseId(1));
                assert_eq!(step, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lookahead_blocked_by_serial() {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new("a", 4, CostModel::constant(1)));
        let c = b.phase(PhaseDef::new("b", 4, CostModel::constant(1)));
        b.dispatch(a);
        b.serial(100, "decide");
        b.dispatch(c);
        let p = b.build().unwrap();
        assert_eq!(p.lookahead(0, &[], true), Lookahead::BlockedBySerial);
    }

    #[test]
    fn lookahead_through_preprocessable_branch() {
        // dispatch a; if ctr % 10 != 0 goto dispatch b else dispatch c
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 4, CostModel::constant(1)));
        let pb = b.phase(PhaseDef::new("b", 4, CostModel::constant(1)));
        let pc = b.phase(PhaseDef::new("c", 4, CostModel::constant(1)));
        let ctr = b.counter();
        b.dispatch(pa); // step 0
        b.step(Step::Branch {
            test: BranchTest::CounterModNe {
                counter: ctr,
                modulus: 10,
                residue: 0,
            },
            on_true: 2,
            on_false: 3,
        });
        b.dispatch(pb); // step 2
        b.dispatch(pc); // step 3
        let p = b.build().unwrap();

        // counter = 7: branch true -> b
        assert_eq!(
            p.lookahead(0, &[7], true),
            Lookahead::Phase { phase: pb, step: 2 }
        );
        // counter = 10: branch false -> c
        assert_eq!(
            p.lookahead(0, &[10], true),
            Lookahead::Phase { phase: pc, step: 3 }
        );
        // branch-dependent: blocked
        assert_eq!(p.lookahead(0, &[7], false), Lookahead::BlockedByBranch);
    }

    #[test]
    fn lookahead_applies_incr_to_scratch_only() {
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 4, CostModel::constant(1)));
        let pb = b.phase(PhaseDef::new("b", 4, CostModel::constant(1)));
        let pc = b.phase(PhaseDef::new("c", 4, CostModel::constant(1)));
        let ctr = b.counter();
        b.dispatch(pa); // 0
        b.incr(ctr, 1); // 1
        b.step(Step::Branch {
            test: BranchTest::CounterLt(ctr, 1),
            on_true: 3,
            on_false: 4,
        }); // 2
        b.dispatch(pb); // 3
        b.dispatch(pc); // 4
        let p = b.build().unwrap();
        let counters = vec![0i64];
        // After the incr, counter==1, so CounterLt(1) is false -> c
        assert_eq!(
            p.lookahead(0, &counters, true),
            Lookahead::Phase { phase: pc, step: 4 }
        );
        // the real counter file was untouched
        assert_eq!(counters[0], 0);
    }

    #[test]
    fn validate_catches_bad_targets() {
        let p = Program {
            phases: vec![PhaseDef::new("a", 1, CostModel::constant(1))],
            steps: vec![Step::Goto(99), Step::End],
            counters: 0,
        };
        assert!(p.validate().unwrap_err().contains("goto target"));

        let p2 = Program {
            phases: vec![],
            steps: vec![Step::Dispatch {
                phase: PhaseId(0),
                enables: vec![],
                branch_independent: false,
            }],
            counters: 0,
        };
        assert!(p2.validate().is_err());
    }

    #[test]
    fn branch_tests_eval() {
        assert!(BranchTest::CounterLt(0, 5).eval(&[3]));
        assert!(!BranchTest::CounterLt(0, 5).eval(&[5]));
        assert!(BranchTest::CounterModEq {
            counter: 0,
            modulus: 10,
            residue: 0
        }
        .eval(&[20]));
        assert!(BranchTest::CounterModNe {
            counter: 0,
            modulus: 10,
            residue: 0
        }
        .eval(&[7]));
        assert!(BranchTest::Always.eval(&[]));
        assert!(!BranchTest::Never.eval(&[]));
    }

    #[test]
    fn lookahead_terminates_on_goto_cycle() {
        let p = Program {
            phases: vec![PhaseDef::new("a", 1, CostModel::constant(1))],
            steps: vec![
                Step::Dispatch {
                    phase: PhaseId(0),
                    enables: vec![],
                    branch_independent: false,
                },
                Step::Goto(1), // self-loop after the dispatch
            ],
            counters: 0,
        };
        assert_eq!(p.lookahead(0, &[], true), Lookahead::ProgramEnd);
    }
}
