//! The PAX-style executive, driven by a discrete-event simulation.
//!
//! One [`Simulation`] runs one machine ([`MachineConfig`]) executing one or
//! more job streams (each a [`Program`]) under an [`OverlapPolicy`]. The
//! executive implements the paper's mechanisms:
//!
//! * demand-driven **splitting** of large contiguous computation
//!   descriptions into worker-sized tasks, with merge-on-completion
//!   bookkeeping;
//! * the **waiting computation queue** with elevated placement of released
//!   conflicting/enabled computations;
//! * per-description **conflict queues** (double circularly-linked lists)
//!   used to hang identity-mapped successor pieces off the current-phase
//!   pieces that enable them;
//! * **composite granule maps** with status bits and **enablement
//!   counters** for forward/reverse indirect (and seam) mappings;
//! * **successor-splitting tasks** and **presplitting** as alternatives to
//!   demand splitting of queued successors;
//! * serial executive service (optionally multi-lane), either stealing
//!   worker time (UNIVAC 1100) or on a dedicated processor. With more
//!   than one lane the run loop drains up to `lanes` coincident
//!   completion events per service round (see
//!   [`BatchPolicy`]) — the batched drain
//!   is pinned run-identical to single-event service.
//!
//! State changes are applied at event time; the *costs* of management
//! operations are accumulated per event and charged to the executive
//! timeline, which delays subsequent dispatches exactly as a serial
//! executive would. (Releases are therefore visible at the instant their
//! completion event fires, while no released work can *start* before the
//! executive finishes the corresponding service — the same observable
//! order PAX produced.)

use crate::descriptor::{DescArena, DescState, QueueClass};
use crate::ids::{DescId, GranuleRange, InstanceId, JobId, PhaseId, WorkerId};
use crate::mapping::{CompositeMap, EnablementMapping, MappingKind};
use crate::phase::PhaseStats;
use crate::policy::{AssignmentPolicy, CompositeBuild, OverlapPolicy, SplitStrategy};
use crate::program::{Lookahead, Program, Step};
use crate::queue::WaitingQueue;
use crate::rangeset::{coalesce_indices_into, RangeSet};
use crate::report::{ClassReport, JobReport, PhaseReport, PoolReport, RunReport};
use pax_sim::calendar::Calendar;
use pax_sim::dist::{arrival_seed, ArrivalProcess, DurationDist};
use pax_sim::faults::{fault_seed, FaultModel, FaultPlan, RetryPolicy};
use pax_sim::machine::{
    AdmissionPolicy, BatchPolicy, ClassAffinity, ConfigError, ExecutivePlacement, MachineConfig,
    ProcessorClass, ResourcePool,
};
use pax_sim::metrics::{Activity, GanttTrace, Span, StepTrace};
use pax_sim::time::{SimDuration, SimTime};
use pax_sim::trace::TraceLog;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;
use std::mem::take;
use std::sync::Arc;

/// Lane-time slice for chunked background composite-map construction.
const BUILD_CHUNK_TICKS: u64 = 64;

/// Event rounds between calendar rebalance checkpoints. Each checkpoint
/// is a no-op unless the config asked for `CalendarKind::Auto`, in
/// which case the calendar revisits its tuning decision against the
/// spacing histogram gathered since the previous checkpoint. Counted in
/// rounds (not wall time or windows), so the checkpoint instants — and
/// therefore any retune — are identical across drivers and shard
/// counts. Retunes preserve pop order bit-exactly regardless; this only
/// keeps the *wall-time* profile reproducible too.
const CALENDAR_REBALANCE_ROUNDS: u64 = 1024;

/// Errors surfaced by a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The event queue drained while jobs were still incomplete: some
    /// gated work was never released (a scheduling bug or an impossible
    /// program).
    Deadlock {
        /// Indices of unfinished jobs.
        unfinished_jobs: Vec<usize>,
        /// Diagnostic text.
        detail: String,
    },
    /// A program failed validation before the run started.
    InvalidProgram(String),
    /// The machine configuration failed
    /// [`pax_sim::machine::MachineConfig::validate`] at session build.
    InvalidConfig(ConfigError),
    /// A processor crash lost a granule range that the machine's
    /// [`pax_sim::faults::RetryPolicy`] refused to reissue — the job can
    /// never complete, so the run fails structurally instead of
    /// deadlocking.
    JobAborted {
        /// Index of the aborted job.
        job: usize,
        /// Diagnostic text.
        detail: String,
    },
    /// A shard worker thread of the threaded driver panicked or missed
    /// the watchdog deadline, so the epoch protocol cannot complete.
    /// Raised by `pax-runtime`'s `run_sharded_threaded` in place of the
    /// process hang a naked barrier would produce.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Panic payload or watchdog diagnostic.
        cause: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Deadlock {
                unfinished_jobs,
                detail,
            } => write!(f, "deadlock: jobs {unfinished_jobs:?} unfinished; {detail}"),
            EngineError::InvalidProgram(s) => write!(f, "invalid program: {s}"),
            EngineError::InvalidConfig(e) => write!(f, "invalid machine config: {e}"),
            EngineError::JobAborted { job, detail } => {
                write!(f, "job {job} aborted: {detail}")
            }
            EngineError::ShardFailed { shard, cause } => {
                write!(f, "shard {shard} failed: {cause}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Simulator events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A worker asks the executive for work.
    Seek(WorkerId),
    /// A worker finished the task described by `desc`.
    TaskDone { worker: WorkerId, desc: DescId },
    /// Poke the executive to look at its background backlog.
    ExecKick,
    /// A serial inter-phase region finished for job `job`.
    SerialDone { job: usize },
    /// Fault injection: the worker's processor crashes.
    Crash { worker: WorkerId },
    /// Fault injection: the worker's processor comes back up.
    Repair { worker: WorkerId },
    /// Streaming admission: job `job` arrives at the executive's door.
    Arrive { job: usize },
}

/// Background executive work items.
#[derive(Debug, Clone, Copy)]
enum ExecTask {
    /// Build the composite granule map for an initiated successor.
    /// `prepaid` tracks lane time already spent: builds are chunked so the
    /// executive "works ahead in otherwise idle time" instead of blocking
    /// every dispatch behind one monolithic service.
    BuildComposite {
        inst: InstanceId,
        prepaid: SimDuration,
    },
    /// Split a detached successor description against the current live
    /// pieces of its predecessor ("the successor computation could be
    /// split and requeued to the appropriate current computation
    /// descriptions").
    SplitSuccessor { succ_desc: DescId, pred: InstanceId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    /// Created early by overlap initiation; gates still in place.
    Initiated,
    /// The running phase of its job.
    Current,
    /// All granules complete.
    Complete,
    /// Recycled after its job finished (service mode): the slot is on the
    /// free list, its run sets cleared in place, awaiting a new arrival.
    Evicted,
}

/// Enablement-counter state held by an initiated successor instance.
#[derive(Debug)]
struct CounterState {
    mapping: EnablementMapping,
    /// The active composite granule map (decrements flow through it).
    /// `Arc`-shared so the cost probe, the builder, and completion
    /// processing all reference one constructed map instead of cloning
    /// counter vectors.
    composite: Option<Arc<CompositeMap>>,
    /// A map constructed by the background cost probe but not yet applied;
    /// [`Engine::build_composite`] takes it instead of rebuilding.
    prebuilt: Option<Arc<CompositeMap>>,
    /// Remaining requirement per successor granule, only the first
    /// `early_limit` entries are active.
    counters: Vec<u32>,
    early_limit: u32,
}

#[derive(Debug)]
struct Instance {
    def: PhaseId,
    job: usize,
    dispatch_step: usize,
    state: InstState,
    granules: u32,
    remaining: u32,
    task_size: u32,
    /// Granules with an existing descriptor or already completed. Both
    /// sets run on the storage backend `MachineConfig::run_storage`
    /// selects (result-identical; a host-performance knob).
    released: RangeSet,
    completed: RangeSet,
    live_descs: Vec<DescId>,
    predecessor: Option<InstanceId>,
    successor: Option<InstanceId>,
    enabled_by: Option<MappingKind>,
    counter_state: Option<CounterState>,
    stats: PhaseStats,
}

/// Per-job runtime state. The job's [`Program`] is decomposed at engine
/// construction: phase definitions move here, and the step list is
/// interned behind an `Arc<[Step]>` — a single copy that the interpreter
/// can hold across `&mut self` calls without cloning `Vec`/`String`
/// payloads per step executed.
#[derive(Debug)]
struct JobRt {
    phases: Vec<crate::phase::PhaseDef>,
    steps: Arc<[Step]>,
    pc: usize,
    counters: Vec<i64>,
    /// Successor instance initiated by overlap, keyed by the dispatch step
    /// it was predicted for.
    pending_successor: Option<(usize, InstanceId)>,
    pending_serial_gap: SimDuration,
    done: bool,
    arrived_at: SimTime,
    started_at: SimTime,
    finished_at: Option<SimTime>,
    /// Shed by the admission policy (never ran).
    rejected: bool,
    /// This job's instances, tracked only under eviction so completion
    /// can recycle them in O(own instances). Buffers rotate through
    /// [`Engine::inst_list_pool`] to keep the steady state alloc-free.
    instances: Vec<InstanceId>,
}

/// A configured simulation, ready to run.
///
/// ```
/// use pax_core::engine::Simulation;
/// use pax_core::policy::OverlapPolicy;
/// use pax_core::program::ProgramBuilder;
/// use pax_core::phase::PhaseDef;
/// use pax_sim::dist::CostModel;
/// use pax_sim::machine::MachineConfig;
///
/// let mut b = ProgramBuilder::new();
/// let p = b.phase(PhaseDef::new("only", 32, CostModel::constant(5)));
/// b.dispatch(p);
/// let program = b.build().unwrap();
///
/// let mut sim = Simulation::new(MachineConfig::ideal(4), OverlapPolicy::strict());
/// sim.add_job(program);
/// let report = sim.run().unwrap();
/// assert_eq!(report.phases.len(), 1);
/// // 32 granules × 5 ticks on 4 processors = 40 ticks
/// assert_eq!(report.makespan.ticks(), 40);
/// ```
pub struct Simulation {
    pub(crate) cfg: MachineConfig,
    pub(crate) policy: OverlapPolicy,
    pub(crate) programs: Vec<Program>,
    /// Machine group of each job in `programs` (parallel vector). Jobs in
    /// one group share one simulated machine; distinct groups are
    /// independent machines, coupled only through [`Simulation::link_groups`]
    /// admission edges — the unit the sharded drivers distribute.
    pub(crate) groups: Vec<usize>,
    /// Arrival instant of each job (parallel to `programs`); `t = 0` for
    /// batch jobs. In multi-group simulations instants are *local* to the
    /// group's timeline (global = group admission + instant), which keeps
    /// them shard-count-invariant.
    pub(crate) arrivals: Vec<SimTime>,
    /// Arrival streams not yet expanded into concrete jobs (see
    /// [`Simulation::expand_streams`]).
    pub(crate) streams: Vec<StreamSpec>,
    /// Recycle the instances of finished jobs (bounded-memory service).
    pub(crate) evict: bool,
    pub(crate) links: Vec<crate::shard::GroupLink>,
    pub(crate) seed: u64,
    pub(crate) gantt: bool,
    pub(crate) trace: bool,
}

/// A deferred arrival stream: `count` copies of one program admitted at
/// instants drawn from an [`ArrivalProcess`], all in one machine group.
pub(crate) struct StreamSpec {
    program: Program,
    process: ArrivalProcess,
    count: usize,
    group: usize,
}

impl Simulation {
    /// A simulation of `cfg` under `policy`, with no jobs yet.
    pub fn new(cfg: MachineConfig, policy: OverlapPolicy) -> Simulation {
        Simulation {
            cfg,
            policy,
            programs: Vec::new(),
            groups: Vec::new(),
            arrivals: Vec::new(),
            streams: Vec::new(),
            evict: false,
            links: Vec::new(),
            seed: 0x5EED_CA5E,
            gantt: false,
            trace: false,
        }
    }

    /// Add a job stream; returns its id.
    pub fn add_job(&mut self, program: Program) -> JobId {
        self.add_job_in_group(program, 0)
    }

    /// Add a job arriving at instant `at` (open-system admission): the
    /// job enters the machine's admission policy when simulated time
    /// reaches `at`, while earlier jobs are still running down. `at = 0`
    /// is exactly [`Simulation::add_job`].
    pub fn add_job_at(&mut self, program: Program, at: SimTime) -> JobId {
        self.add_job_at_in_group(program, at, 0)
    }

    /// Add a job arriving at instant `at` in machine group `group`. The
    /// instant is local to the group's timeline: a gated group's jobs
    /// arrive `at` ticks after the group is admitted.
    pub fn add_job_at_in_group(&mut self, program: Program, at: SimTime, group: usize) -> JobId {
        self.programs.push(program);
        self.groups.push(group);
        self.arrivals.push(at);
        JobId(self.programs.len() as u32 - 1)
    }

    /// Add `count` copies of `program` arriving at instants drawn from
    /// `process` (Poisson inter-arrival gaps, or a recorded trace). The
    /// instants are expanded deterministically at session build from a
    /// per-stream RNG ([`pax_sim::dist::arrival_seed`]), so the same seed
    /// reproduces the same arrival pattern at every shard count.
    pub fn add_job_stream(&mut self, program: Program, process: ArrivalProcess, count: usize) {
        self.add_job_stream_in_group(program, process, count, 0);
    }

    /// [`Simulation::add_job_stream`] targeted at machine group `group`.
    pub fn add_job_stream_in_group(
        &mut self,
        program: Program,
        process: ArrivalProcess,
        count: usize,
        group: usize,
    ) {
        self.streams.push(StreamSpec {
            program,
            process,
            count,
            group,
        });
    }

    /// Evict (recycle) the phase instances of each job as it finishes, so
    /// live memory stays bounded over unbounded arrival streams. The
    /// report then keeps only the instances still live at run end (its
    /// `instances_peak` field records the high-water mark); per-job
    /// latency accounting is unaffected.
    pub fn with_eviction(mut self) -> Simulation {
        self.evict = true;
        self
    }

    /// Expand every pending arrival stream into concrete `(program, at)`
    /// jobs, appended after all directly-added jobs in stream order.
    /// Idempotent (streams are drained); called once at session build so
    /// expansion precedes sharding — job↔group assignment and instants
    /// are therefore identical at every shard count.
    pub(crate) fn expand_streams(&mut self) {
        if self.streams.is_empty() {
            return;
        }
        let streams = take(&mut self.streams);
        for (i, s) in streams.into_iter().enumerate() {
            let mut rng = pax_sim::seeded_rng(arrival_seed(self.seed, i as u64));
            for at in s.process.instants(s.count, &mut rng) {
                self.add_job_at_in_group(s.program.clone(), at, s.group);
            }
        }
    }

    /// Add a job stream to machine group `group`; returns its id.
    ///
    /// Jobs in one group run on one shared simulated machine (contending
    /// for its processors, executive lanes, and waiting queue, exactly as
    /// [`Simulation::add_job`] jobs do). Jobs in different groups run on
    /// independent replicas of the machine `cfg` describes. Group indices
    /// must be dense: adding to group `g` requires groups `0..g` to exist
    /// already (`run` validates this).
    pub fn add_job_in_group(&mut self, program: Program, group: usize) -> JobId {
        self.add_job_at_in_group(program, SimTime::ZERO, group)
    }

    /// Gate machine group `succ` on machine group `pred`: `succ` is
    /// admitted (its jobs start) `latency` ticks after the last job of
    /// `pred` finishes. `latency` must be ≥ 1 tick — it is the minimum
    /// cross-group event latency the sharded drivers derive their
    /// conservative epoch windows from.
    pub fn link_groups(&mut self, pred: usize, succ: usize, latency: SimDuration) {
        assert!(pred != succ, "a group cannot gate itself");
        assert!(
            latency >= SimDuration(1),
            "cross-group admission latency must be at least one tick"
        );
        self.links.push(crate::shard::GroupLink {
            pred,
            succ,
            latency,
        });
    }

    /// Set the RNG seed (deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Simulation {
        self.seed = seed;
        self
    }

    /// Record a per-worker Gantt trace (needed by overlap-invariant
    /// tests; costs memory proportional to task count).
    pub fn with_gantt(mut self) -> Simulation {
        self.gantt = true;
        self
    }

    /// Record a textual debug trace.
    pub fn with_trace(mut self) -> Simulation {
        self.trace = true;
        self
    }

    /// Execute to completion: a thin wrapper over the session API —
    /// [`Simulation::into_session`], [`Session::drain`],
    /// [`Session::report`].
    ///
    /// Single-group runs with `cfg.shards ≤ 1` take the classic
    /// single-threaded drive loop. Everything else goes through the
    /// sharded core driver ([`crate::shard`]), which is pinned
    /// bit-identical to it; the threaded driver lives in `pax-runtime`.
    pub fn run(self) -> Result<RunReport, EngineError> {
        let mut session = self.into_session()?;
        session.drain()?;
        session.report()
    }

    /// Build a long-lived [`Session`]: expand arrival streams, validate
    /// the machine configuration and every program, construct the
    /// engine(s), and admit the `t = 0` jobs. The caller then drives the
    /// session with [`Session::step_until`] / [`Session::drain`] and
    /// extracts the result with [`Session::report`].
    pub fn into_session(mut self) -> Result<Session, EngineError> {
        self.expand_streams();
        self.cfg.validate().map_err(EngineError::InvalidConfig)?;
        self.validate()?;
        if self.is_single_group() && self.cfg.shards.shards <= 1 {
            let mut eng = Engine::new(self);
            eng.start();
            Ok(Session {
                inner: SessionInner::Inline(Box::new(eng)),
            })
        } else {
            Ok(Session {
                inner: SessionInner::Sharded(self.into_sharded()?),
            })
        }
    }

    /// True when every job is in group 0 and no admission edges exist —
    /// the shape [`Simulation::add_job`] alone produces.
    pub(crate) fn is_single_group(&self) -> bool {
        self.links.is_empty() && self.groups.iter().all(|&g| g == 0)
    }

    pub(crate) fn validate(&self) -> Result<(), EngineError> {
        for (i, p) in self.programs.iter().enumerate() {
            p.validate()
                .map_err(|e| EngineError::InvalidProgram(format!("job {i}: {e}")))?;
            // `requires` lists resolve against the machine's pools here,
            // once, so the engine's per-dispatch lookup is by index.
            for ph in &p.phases {
                for (k, name) in ph.requires.iter().enumerate() {
                    if !self.cfg.resources.iter().any(|pool| pool.name == *name) {
                        return Err(EngineError::InvalidProgram(format!(
                            "job {i}: phase '{}' requires unknown resource pool '{name}'",
                            ph.name
                        )));
                    }
                    if ph.requires[..k].contains(name) {
                        return Err(EngineError::InvalidProgram(format!(
                            "job {i}: phase '{}' requires pool '{name}' twice",
                            ph.name
                        )));
                    }
                }
            }
        }
        if self.programs.is_empty() {
            return Err(EngineError::InvalidProgram("no jobs".into()));
        }
        Ok(())
    }
}

/// A long-lived, non-consuming simulation drive: the open-system service
/// loop. Built by [`Simulation::into_session`]; stepped in bounded time
/// windows ([`Session::step_until`]) or to completion ([`Session::drain`]);
/// consumed once by [`Session::report`].
///
/// Every drive path — the inline engine, the sharded reference driver,
/// and `pax-runtime`'s threaded driver — goes through the same windowed
/// loop, so chopping a run into `step_until` windows at *any* boundaries
/// is result-invariant: a session stepped to `t = ∞` in one go and a
/// session stepped tick by tick produce bit-identical reports.
pub struct Session {
    inner: SessionInner,
}

enum SessionInner {
    /// Single-group, unsharded: one engine driven directly.
    Inline(Box<Engine>),
    /// Multi-group or multi-shard: the epoch coordinator plus its shard
    /// engines, driven by the conservative-window protocol.
    Sharded(crate::shard::ShardedRun),
}

impl Session {
    /// Drain every event due at or before `limit` (global time). Returns
    /// `true` once the simulation has fully run down — no pending events
    /// (and, sharded, no pending admissions) remain at any time.
    pub fn step_until(&mut self, limit: SimTime) -> Result<bool, EngineError> {
        match &mut self.inner {
            SessionInner::Inline(eng) => Ok(eng.run_window(Some(limit))),
            SessionInner::Sharded(run) => run.step_until(Some(limit)),
        }
    }

    /// Run the session to completion (equivalent to `step_until(∞)`).
    pub fn drain(&mut self) -> Result<(), EngineError> {
        match &mut self.inner {
            SessionInner::Inline(eng) => {
                let drained = eng.run_window(None);
                debug_assert!(drained, "unbounded window must drain the calendar");
                Ok(())
            }
            SessionInner::Sharded(run) => run.step_until(None).map(|_| ()),
        }
    }

    /// Finish the session: drain any remaining work, run the deadlock
    /// checks, and merge the final [`RunReport`].
    pub fn report(mut self) -> Result<RunReport, EngineError> {
        self.drain()?;
        match self.inner {
            SessionInner::Inline(eng) => eng.finish(),
            SessionInner::Sharded(run) => {
                let (coordinator, shards) = run.into_parts();
                coordinator.finish(shards)
            }
        }
    }
}

/// Reusable buffers for the executive's per-event processing. Every
/// vector is taken (`std::mem::take`), filled, drained, cleared, and put
/// back, so the steady-state completion path performs no heap allocation:
/// each buffer reaches its high-water capacity during warm-up and is
/// recycled for the rest of the run. Fields are grouped by the path that
/// uses them; no two users of one field are ever live at the same time
/// (release paths called while a buffer is out never touch that buffer).
#[derive(Debug, Default)]
struct Scratch {
    /// Conflict-queue members drained at completion. Owned by the batched
    /// completion service for a whole drain (several events), so it must
    /// not be shared with paths reachable from completion processing —
    /// `members` below serves those.
    wakeups: Vec<DescId>,
    /// Conflict-queue members snapshotted at overlap initiation.
    members: Vec<DescId>,
    /// Conflict-queue members mirrored during a demand split.
    split_members: Vec<DescId>,
    /// Successor granules whose enablement counters just reached zero.
    freed: Vec<u32>,
    /// Null-set-enabled granules discovered at composite-map build.
    zero_now: Vec<u32>,
    /// Enabling current-phase granules (priority elevation).
    indices: Vec<u32>,
    /// Coalesced granule runs about to be released.
    runs: Vec<GranuleRange>,
    /// `(descriptor, range)` pairs snapshotted from live lists.
    desc_ranges: Vec<(DescId, GranuleRange)>,
    /// Successor-splitting tiles: range plus the predecessor piece (if
    /// any) whose conflict queue receives it.
    pieces: Vec<(GranuleRange, Option<DescId>)>,
}

/// Runtime state of the fault-injection layer. Lives behind
/// `Engine::faults` (`None` when the machine has no [`FaultPlan`]), so a
/// failure-free run pays nothing: no extra RNG draws, no extra events,
/// and no per-completion allocations (the counting-allocator test pins
/// the faults-enabled-but-fault-free leg too).
struct FaultRt {
    model: FaultModel,
    retry: RetryPolicy,
    /// Dedicated fault RNG ([`fault_seed`]-derived), never shared with
    /// the engine's task-sampling stream.
    rng: SmallRng,
    /// Down processors (indexed by worker).
    down: Vec<bool>,
    /// In-flight task per worker: `(descriptor, compute start, scheduled
    /// end)`. The `end` doubles as a staleness token: a `TaskDone` whose
    /// `(desc, end)` no longer matches was preempted by a crash and is
    /// dropped.
    running: Vec<Option<(DescId, SimTime, SimTime)>>,
    /// Scripted down-spans pending per processor; front = the span of
    /// the next scheduled crash event for that processor.
    scripted: Vec<VecDeque<Option<u64>>>,
    /// Reissue counts, tracked only for descriptors that lost work to a
    /// crash (cleared on completion so recycled descriptor ids start
    /// fresh).
    attempts: Vec<(DescId, u32)>,
    /// `(time, ±delta)` availability spans: `+processors` at start, `-1`
    /// per crash, `+1` per repair.
    avail_deltas: Vec<(SimTime, i32)>,
    /// Compute ticks spent on ranges later lost to crashes.
    lost_work: SimDuration,
    /// Lost ranges reissued into the waiting queue.
    retries: u64,
    /// Accepted crashes.
    crashes: u64,
}

impl FaultRt {
    fn new(mut plan: FaultPlan, processors: usize, seed: u64) -> FaultRt {
        if let FaultModel::Scripted(evs) = &mut plan.model {
            // Out-of-range processors are ignored; a stable sort by crash
            // instant aligns the per-processor span queues with calendar
            // insertion order.
            evs.retain(|e| e.processor < processors);
            evs.sort_by_key(|e| e.crash_at);
        }
        FaultRt {
            retry: plan.retry,
            rng: pax_sim::seeded_rng(fault_seed(seed)),
            down: vec![false; processors],
            running: vec![None; processors],
            scripted: vec![VecDeque::new(); processors],
            attempts: Vec::new(),
            avail_deltas: Vec::new(),
            lost_work: SimDuration::ZERO,
            retries: 0,
            crashes: 0,
            model: plan.model,
        }
    }
}

/// Runtime state of the heterogeneous-classes / secondary-resources
/// layer. Lives behind `Engine::hetero` (`None` when the machine declares
/// neither processor classes nor resource pools), so a homogeneous,
/// unconstrained run takes exactly the classic dispatch path: no scaling
/// arithmetic, no token checks, and no extra RNG draws — the golden
/// shapes are untouched. Duration scaling happens *after* the cost model
/// has sampled, so heterogeneity never changes the RNG draw count either.
struct HeteroRt {
    /// Worker index → class index. Empty when the machine declares no
    /// classes (resources-only configs): every worker is then nominal
    /// speed with unrestricted affinity.
    class_of: Vec<u16>,
    /// The declared classes (speed, affinity, name), in worker order.
    classes: Vec<ProcessorClass>,
    /// Useful compute ticks executed by each class (crash-preempted work
    /// is reversed here exactly as in `compute_total`).
    class_busy: Vec<SimDuration>,
    /// Tasks dispatched to each class.
    class_tasks: Vec<u64>,
    /// Tokens currently available per pool.
    tokens: Vec<u32>,
    /// The declared pools (capacity + name, for the report).
    pools: Vec<ResourcePool>,
    /// Resolved `requires` lists: job → phase → pool indices. Resolved
    /// once at engine build (names validated at session build).
    phase_pools: Vec<Vec<Vec<u16>>>,
    /// Pool indices held by the task running on each worker.
    held: Vec<Vec<u16>>,
    /// Workers parked because a required pool was empty:
    /// `(worker, parked since, blocking pool)`, woken on any release.
    parked: Vec<(WorkerId, SimTime, u16)>,
    /// Dispatch attempts that blocked on each pool.
    pool_waits: Vec<u64>,
    /// Worker-ticks spent parked on each pool.
    pool_wait_ticks: Vec<SimDuration>,
}

impl HeteroRt {
    /// The class of worker `w`, or `None` on a classless (resources-only)
    /// machine.
    #[inline]
    fn class_idx(&self, w: WorkerId) -> Option<usize> {
        if self.class_of.is_empty() {
            None
        } else {
            Some(self.class_of[w.0 as usize] as usize)
        }
    }
}

pub(crate) struct Engine {
    cfg: MachineConfig,
    policy: OverlapPolicy,
    jobs: Vec<JobRt>,
    instances: Vec<Instance>,
    arena: DescArena,
    waiting: WaitingQueue,
    events: Calendar<Ev>,
    scratch: Scratch,
    now: SimTime,
    exec_lanes: Vec<SimTime>,
    exec_backlog: VecDeque<ExecTask>,
    idle_workers: Vec<WorkerId>,
    rng: SmallRng,
    // raw measurement spans; step traces are built after the run
    compute_deltas: Vec<(SimTime, i32)>,
    mgmt_deltas: Vec<(SimTime, i32)>,
    compute_total: SimDuration,
    mgmt_total: SimDuration,
    serial_total: SimDuration,
    last_event_end: SimTime,
    gantt: GanttTrace,
    tlog: TraceLog,
    events_processed: u64,
    tasks_dispatched: u64,
    splits: u64,
    local_granules: u64,
    remote_granules: u64,
    remote_stall: SimDuration,
    warnings: Vec<String>,
    /// Round buffers for `run_window`, kept on the engine so repeated
    /// epoch windows reuse one allocation instead of growing fresh
    /// vectors per window (pinned by the alloc-free regression test).
    round_batch: Vec<(SimTime, Ev)>,
    round_dones: Vec<(WorkerId, DescId)>,
    /// Jobs admitted and not yet finished (admission-policy accounting).
    in_flight: usize,
    /// Jobs held back by `AdmissionPolicy::BoundedDefer`, in arrival
    /// order; each job completion admits the front one.
    deferred: VecDeque<usize>,
    /// Jobs shed by `AdmissionPolicy::Shed`.
    jobs_rejected: u64,
    /// Recycle finished jobs' instances (service mode).
    evict: bool,
    /// Evicted instance slots available for reuse (LIFO, so the peak of
    /// `instances.len()` is the true live high-water mark).
    free_instances: Vec<u32>,
    /// Recycled per-job instance-list buffers (see [`JobRt::instances`]).
    inst_list_pool: Vec<Vec<InstanceId>>,
    /// Fault-injection runtime; `None` on failure-free machines.
    faults: Option<FaultRt>,
    /// Heterogeneous-classes / secondary-resources runtime; `None` on
    /// homogeneous, unconstrained machines.
    hetero: Option<HeteroRt>,
    /// First structural abort (e.g. a retry policy giving up on lost
    /// work); set mid-run, surfaced by [`Engine::finish`].
    abort: Option<EngineError>,
    /// Event rounds served, across all windows. Drives the calendar
    /// rebalance checkpoints (`CalendarKind::Auto` retunes); purely a
    /// count of deterministic simulation work, so checkpoints land at
    /// the same instants on every driver and shard count.
    rounds: u64,
}

impl Engine {
    pub(crate) fn new(s: Simulation) -> Engine {
        debug_assert_eq!(
            s.programs.len(),
            s.arrivals.len(),
            "arrival instants parallel the job list"
        );
        debug_assert!(s.streams.is_empty(), "streams expanded before build");
        let jobs: Vec<JobRt> = s
            .programs
            .into_iter()
            .zip(s.arrivals)
            .map(|(program, arrived_at)| {
                let Program {
                    phases,
                    steps,
                    counters,
                } = program;
                let counters = vec![0i64; counters];
                JobRt {
                    phases,
                    steps: steps.into(),
                    pc: 0,
                    counters,
                    pending_successor: None,
                    pending_serial_gap: SimDuration::ZERO,
                    done: false,
                    arrived_at,
                    started_at: SimTime::ZERO,
                    finished_at: None,
                    rejected: false,
                    instances: Vec::new(),
                }
            })
            .collect();
        let njobs = jobs.len();
        let faults = s
            .cfg
            .faults
            .clone()
            .map(|plan| FaultRt::new(plan, s.cfg.processors, s.seed));
        let hetero = if s.cfg.classes.is_empty() && s.cfg.resources.is_empty() {
            None
        } else {
            let mut class_of = Vec::with_capacity(s.cfg.processors);
            for (ci, c) in s.cfg.classes.iter().enumerate() {
                class_of.extend(std::iter::repeat_n(ci as u16, c.count));
            }
            debug_assert!(
                class_of.is_empty() || class_of.len() == s.cfg.processors,
                "class counts validated at session build"
            );
            // Resolve `requires` names to pool indices once; unknown
            // names were rejected by `Simulation::validate`.
            let phase_pools: Vec<Vec<Vec<u16>>> = jobs
                .iter()
                .map(|j| {
                    j.phases
                        .iter()
                        .map(|ph| {
                            ph.requires
                                .iter()
                                .map(|name| {
                                    s.cfg
                                        .resources
                                        .iter()
                                        .position(|p| p.name == *name)
                                        .expect("pool names validated at session build")
                                        as u16
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let npools = s.cfg.resources.len();
            let nclasses = s.cfg.classes.len();
            Some(HeteroRt {
                class_of,
                classes: s.cfg.classes.clone(),
                class_busy: vec![SimDuration::ZERO; nclasses],
                class_tasks: vec![0; nclasses],
                tokens: s.cfg.resources.iter().map(|p| p.tokens).collect(),
                pools: s.cfg.resources.clone(),
                phase_pools,
                held: vec![Vec::new(); s.cfg.processors],
                parked: Vec::new(),
                pool_waits: vec![0; npools],
                pool_wait_ticks: vec![SimDuration::ZERO; npools],
            })
        };
        Engine {
            waiting: WaitingQueue::new(njobs.max(1)),
            jobs,
            instances: Vec::new(),
            arena: DescArena::new(),
            events: Calendar::from_kind(s.cfg.calendar),
            scratch: Scratch::default(),
            now: SimTime::ZERO,
            exec_lanes: vec![SimTime::ZERO; s.cfg.executive_lanes],
            exec_backlog: VecDeque::new(),
            idle_workers: Vec::with_capacity(s.cfg.processors),
            rng: pax_sim::seeded_rng(s.seed),
            compute_deltas: Vec::new(),
            mgmt_deltas: Vec::new(),
            compute_total: SimDuration::ZERO,
            mgmt_total: SimDuration::ZERO,
            serial_total: SimDuration::ZERO,
            last_event_end: SimTime::ZERO,
            gantt: if s.gantt {
                GanttTrace::enabled()
            } else {
                GanttTrace::disabled()
            },
            tlog: if s.trace {
                TraceLog::enabled(100_000)
            } else {
                TraceLog::disabled()
            },
            events_processed: 0,
            tasks_dispatched: 0,
            splits: 0,
            local_granules: 0,
            remote_granules: 0,
            remote_stall: SimDuration::ZERO,
            warnings: Vec::new(),
            round_batch: Vec::with_capacity(s.cfg.executive_lanes),
            round_dones: Vec::with_capacity(s.cfg.executive_lanes),
            in_flight: 0,
            deferred: VecDeque::new(),
            jobs_rejected: 0,
            evict: s.evict,
            free_instances: Vec::new(),
            inst_list_pool: Vec::new(),
            faults,
            hetero,
            abort: None,
            rounds: 0,
            cfg: s.cfg,
            policy: s.policy,
        }
    }

    // ------------------------------------------------------------------
    // executive service timeline
    // ------------------------------------------------------------------

    /// Charge `cost` to the least-loaded executive lane starting no
    /// earlier than `at`; returns `(service_start, service_end)`.
    fn exec_service(&mut self, at: SimTime, cost: SimDuration) -> (SimTime, SimTime) {
        let lane = self
            .exec_lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let start = at.max(self.exec_lanes[lane]);
        let end = start + cost;
        self.exec_lanes[lane] = end;
        if !cost.is_zero() {
            self.mgmt_deltas.push((start, 1));
            self.mgmt_deltas.push((end, -1));
            self.mgmt_total += cost;
        }
        self.last_event_end = self.last_event_end.max(end);
        (start, end)
    }

    /// Like [`Engine::exec_service`] but accounted as *serial algorithm
    /// work* rather than management: the paper's null mappings arise from
    /// "serial actions and decisions" that are part of the computation,
    /// so they must not pollute the computation-to-management ratio.
    fn exec_service_serial(&mut self, at: SimTime, cost: SimDuration) -> (SimTime, SimTime) {
        let (start, end) = self.exec_service(at, cost);
        if !cost.is_zero() {
            // move the charge from management to serial
            self.mgmt_total -= cost;
            self.serial_total += cost;
        }
        (start, end)
    }

    fn earliest_exec_free(&self) -> SimTime {
        self.exec_lanes.iter().copied().min().unwrap_or(self.now)
    }

    // ------------------------------------------------------------------
    // waiting-queue helpers
    // ------------------------------------------------------------------

    fn enqueue(&mut self, desc: DescId, class: QueueClass, front: bool) {
        let job = self.arena.job(desc);
        self.arena.set_class(desc, class);
        self.arena.set_state(desc, DescState::Waiting);
        if front {
            self.waiting.push_front(desc, class, job);
        } else {
            self.waiting.push_back(desc, class, job);
        }
        self.wake_workers(1);
    }

    /// Queue class for released successor work, per policy.
    fn released_class(&self) -> QueueClass {
        if self.policy.elevate_released {
            QueueClass::Elevated
        } else {
            QueueClass::Normal
        }
    }

    fn wake_workers(&mut self, n: usize) {
        for _ in 0..n {
            match self.idle_workers.pop() {
                Some(w) => self.events.schedule(self.now, Ev::Seek(w)),
                None => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // instance lifecycle
    // ------------------------------------------------------------------

    fn new_instance(
        &mut self,
        job: usize,
        def: PhaseId,
        dispatch_step: usize,
        state: InstState,
        predecessor: Option<InstanceId>,
        enabled_by: Option<MappingKind>,
    ) -> InstanceId {
        let d = &self.jobs[job].phases[def.0 as usize];
        let granules = d.granules;
        let task_size = self
            .policy
            .sizing
            .task_granules(granules, self.cfg.processors);
        let mut stats = PhaseStats::new(self.now);
        stats.serial_gap = std::mem::take(&mut self.jobs[job].pending_serial_gap);
        // Under eviction, reuse a recycled slot: its run sets were cleared
        // in place (buffers kept warm) and its live list is empty, so the
        // steady-state service loop creates instances without allocating.
        let id = match self.evict.then(|| self.free_instances.pop()).flatten() {
            Some(slot) => {
                let inst = &mut self.instances[slot as usize];
                debug_assert_eq!(inst.state, InstState::Evicted, "free slot not evicted");
                debug_assert!(inst.live_descs.is_empty());
                inst.def = def;
                inst.job = job;
                inst.dispatch_step = dispatch_step;
                inst.state = state;
                inst.granules = granules;
                inst.remaining = granules;
                inst.task_size = task_size;
                inst.predecessor = predecessor;
                inst.successor = None;
                inst.enabled_by = enabled_by;
                inst.counter_state = None;
                inst.stats = stats;
                InstanceId(slot)
            }
            None => {
                let id = InstanceId(self.instances.len() as u32);
                self.instances.push(Instance {
                    def,
                    job,
                    dispatch_step,
                    state,
                    granules,
                    remaining: granules,
                    task_size,
                    released: RangeSet::with_storage(self.cfg.run_storage),
                    completed: RangeSet::with_storage(self.cfg.run_storage),
                    live_descs: Vec::new(),
                    predecessor,
                    successor: None,
                    enabled_by,
                    counter_state: None,
                    stats,
                });
                id
            }
        };
        if self.evict {
            self.jobs[job].instances.push(id);
        }
        id
    }

    #[inline]
    fn inst(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    #[inline]
    fn inst_mut(&mut self, id: InstanceId) -> &mut Instance {
        &mut self.instances[id.0 as usize]
    }

    /// Track `d` on its instance's live list, recording the slot index on
    /// the descriptor so completion can remove it in O(1).
    #[inline]
    fn live_push(&mut self, inst_id: InstanceId, d: DescId) {
        let live = &mut self.instances[inst_id.0 as usize].live_descs;
        self.arena.set_live_idx(d, live.len() as u32);
        live.push(d);
    }

    /// Untrack `d` from its instance's live list (O(1) swap-remove via the
    /// index stored at [`Engine::live_push`] time).
    #[inline]
    fn live_remove(&mut self, inst_id: InstanceId, d: DescId) {
        let idx = self.arena.live_idx(d) as usize;
        let live = &mut self.instances[inst_id.0 as usize].live_descs;
        debug_assert_eq!(live.get(idx), Some(&d), "live index out of sync");
        live.swap_remove(idx);
        if let Some(&moved) = live.get(idx) {
            self.arena.set_live_idx(moved, idx as u32);
        }
        self.arena.set_live_idx(d, u32::MAX);
    }

    /// Release a granule range of `inst` into the waiting queue. With the
    /// presplit strategy the range is carved into task-sized descriptors
    /// immediately; otherwise one descriptor covers the whole range and is
    /// split on demand by dispatches.
    fn release_range(
        &mut self,
        inst_id: InstanceId,
        range: GranuleRange,
        class: QueueClass,
        cost: &mut SimDuration,
    ) {
        if range.is_empty() {
            return;
        }
        let (job, task_size, enabling) = {
            let inst = self.inst(inst_id);
            let enabling = inst
                .successor
                .map(|s| self.inst(s).counter_state.is_some())
                .unwrap_or(false);
            (inst.job, inst.task_size, enabling)
        };
        self.inst_mut(inst_id).released.insert(range);
        // "One possibility is to presplit the tasks before idle workers
        // present themselves to the executive" — applies to any release,
        // not just overlap successors, so strict-barrier runs can presplit
        // too (the data-proximity scan needs the visible pieces, E12).
        let presplit =
            self.policy.split_strategy == SplitStrategy::PreSplit && range.len() > task_size;
        if presplit {
            let mut lo = range.lo;
            while lo < range.hi {
                let hi = (lo + task_size).min(range.hi);
                let d = self
                    .arena
                    .alloc(inst_id, JobId(job as u32), GranuleRange::new(lo, hi));
                self.arena.set_enabling(d, enabling);
                self.live_push(inst_id, d);
                self.enqueue(d, class, false);
                if hi < range.hi {
                    *cost += self.cfg.costs.split;
                    self.splits += 1;
                }
                lo = hi;
            }
        } else {
            let d = self.arena.alloc(inst_id, JobId(job as u32), range);
            self.arena.set_enabling(d, enabling);
            self.live_push(inst_id, d);
            self.enqueue(d, class, false);
        }
    }

    /// Release everything of `succ` not yet released (the phase barrier
    /// falling when its predecessor completes).
    fn release_residual(&mut self, succ_id: InstanceId, cost: &mut SimDuration) {
        let full = GranuleRange::new(0, self.inst(succ_id).granules);
        let mut gaps = take(&mut self.scratch.runs);
        self.inst(succ_id).released.subtract_into(full, &mut gaps);
        for &g in &gaps {
            *cost += self.cfg.costs.release;
            self.release_range(succ_id, g, QueueClass::Normal, cost);
        }
        gaps.clear();
        self.scratch.runs = gaps;
    }

    // ------------------------------------------------------------------
    // program interpretation
    // ------------------------------------------------------------------

    /// Execute program steps for `job` starting at step `pc` until a
    /// dispatch takes effect, a serial region is scheduled, or the program
    /// ends.
    ///
    /// The step list is interned behind an `Arc` at engine construction;
    /// holding a reference-counted handle (one pointer bump per call, not
    /// per step) lets the interpreter borrow each step across the `&mut
    /// self` state changes it triggers, where indexing `self.jobs` afresh
    /// used to force a deep `Step::clone` per step executed.
    fn run_program(&mut self, job: usize, mut pc: usize) {
        let steps = Arc::clone(&self.jobs[job].steps);
        loop {
            match &steps[pc] {
                Step::End => {
                    self.finish_job(job);
                    return;
                }
                Step::Incr { idx, delta } => {
                    self.jobs[job].counters[*idx] += delta;
                    pc += 1;
                }
                Step::Goto(t) => pc = *t,
                Step::Branch {
                    test,
                    on_true,
                    on_false,
                } => {
                    pc = if test.eval(&self.jobs[job].counters) {
                        *on_true
                    } else {
                        *on_false
                    };
                }
                Step::Serial { duration, label } => {
                    let duration = *duration;
                    let (_s, end) = self.exec_service_serial(self.now, duration);
                    self.jobs[job].pc = pc;
                    self.jobs[job].pending_serial_gap += duration;
                    self.tlog.log(self.now, || {
                        format!("job{job} serial '{label}' until {end}")
                    });
                    self.events.schedule(end, Ev::SerialDone { job });
                    return;
                }
                Step::Dispatch { phase, .. } => {
                    let phase = *phase;
                    // Was a successor already initiated for this step?
                    if let Some((pred_step, inst_id)) = self.jobs[job].pending_successor.take() {
                        if pred_step == pc {
                            self.promote(inst_id, pc);
                            return;
                        }
                        // Misprediction cannot happen with counter-only
                        // branch tests; surface loudly if it ever does.
                        self.warnings.push(format!(
                            "job{job}: lookahead predicted step {pred_step}, actual {pc}; \
                             initiated instance {inst_id} abandoned"
                        ));
                    }
                    let inst_id = self.new_instance(job, phase, pc, InstState::Current, None, None);
                    let mut cost = self.cfg.costs.phase_init;
                    let full = GranuleRange::new(0, self.inst(inst_id).granules);
                    self.release_range(inst_id, full, QueueClass::Normal, &mut cost);
                    self.exec_service(self.now, cost);
                    self.initiate_successor(inst_id);
                    return;
                }
            }
        }
    }

    /// An initiated successor becomes the current phase of its job.
    fn promote(&mut self, inst_id: InstanceId, pc: usize) {
        {
            let now = self.now;
            let inst = self.inst_mut(inst_id);
            inst.state = InstState::Current;
            inst.stats.current_at = now;
            inst.dispatch_step = pc;
        }
        self.initiate_successor(inst_id);
        if self.inst(inst_id).remaining == 0 {
            // The overlapped successor finished all its released work
            // before its predecessor completed (fully drained universal
            // phase): complete it immediately.
            let mut cost = SimDuration::ZERO;
            self.complete_instance(inst_id, &mut cost);
            self.exec_service(self.now, cost);
        }
    }

    /// All granules of `inst` are complete: record it, lift the successor
    /// barrier, and advance the program.
    fn complete_instance(&mut self, inst_id: InstanceId, cost: &mut SimDuration) {
        let now = self.now;
        {
            let inst = self.inst_mut(inst_id);
            debug_assert_eq!(inst.remaining, 0);
            debug_assert_eq!(inst.state, InstState::Current);
            inst.state = InstState::Complete;
            inst.stats.completed_at = Some(now);
        }
        let (job, step, succ) = {
            let i = self.inst(inst_id);
            (i.job, i.dispatch_step, i.successor)
        };
        if let Some(succ_id) = succ {
            self.release_residual(succ_id, cost);
        }
        self.tlog.log(now, || {
            format!("{inst_id} complete (job{job}, step {step})")
        });
        self.run_program(job, step + 1);
    }

    /// Apply the overlap policy at the moment `pred` becomes current:
    /// look ahead for the next dispatch and initiate it under the declared
    /// enablement mapping.
    fn initiate_successor(&mut self, pred_id: InstanceId) {
        if !self.policy.enabled {
            return;
        }
        let (job, dispatch_step) = {
            let p = self.inst(pred_id);
            (p.job, p.dispatch_step)
        };
        // Borrow the ENABLE clause from the interned step list instead of
        // cloning the spec vector (and its mapping payloads) per overlap.
        let steps = Arc::clone(&self.jobs[job].steps);
        let (enables, branch_independent) = match &steps[dispatch_step] {
            Step::Dispatch {
                enables,
                branch_independent,
                ..
            } => (enables, *branch_independent),
            _ => return,
        };
        let la = crate::program::lookahead_steps(
            &steps,
            dispatch_step,
            &self.jobs[job].counters,
            branch_independent,
        );
        let (succ_phase, succ_step) = match la {
            Lookahead::Phase { phase, step } => (phase, step),
            _ => return, // serial gap, opaque branch, or program end
        };
        let Some(spec) = enables.iter().find(|e| e.successor == succ_phase) else {
            if !enables.is_empty() {
                let names: Vec<&str> = enables
                    .iter()
                    .map(|e| self.jobs[job].phases[e.successor.0 as usize].name.as_str())
                    .collect();
                self.warnings.push(format!(
                    "interlock: ENABLE clause of step {dispatch_step} names {names:?} but \
                     the following phase is '{}' — no overlap applied",
                    self.jobs[job].phases[succ_phase.0 as usize].name
                ));
            }
            return;
        };
        let kind = spec.mapping.kind();
        if kind == MappingKind::Null {
            return;
        }
        if kind == MappingKind::Identity {
            let pg = self.inst(pred_id).granules;
            let sg = self.jobs[job].phases[succ_phase.0 as usize].granules;
            if pg != sg {
                self.warnings.push(format!(
                    "identity mapping requires equal granule counts ({pg} vs {sg}); \
                     overlap skipped at step {dispatch_step}"
                ));
                return;
            }
        }
        let succ_id = self.new_instance(
            job,
            succ_phase,
            succ_step,
            InstState::Initiated,
            Some(pred_id),
            Some(kind),
        );
        self.inst_mut(pred_id).successor = Some(succ_id);
        self.jobs[job].pending_successor = Some((succ_step, succ_id));
        let mut cost = self.cfg.costs.phase_init;
        match &spec.mapping {
            EnablementMapping::Universal => {
                // "the successor phase is also initiated and the resulting
                // computation description placed in the waiting computation
                // queue behind the current phase description."
                let full = GranuleRange::new(0, self.inst(succ_id).granules);
                self.release_range(succ_id, full, QueueClass::Normal, &mut cost);
            }
            EnablementMapping::Identity => {
                self.init_identity(pred_id, succ_id, &mut cost);
            }
            m @ (EnablementMapping::ForwardIndirect(_)
            | EnablementMapping::ReverseIndirect(_)
            | EnablementMapping::Seam(_)) => {
                self.init_counted(pred_id, succ_id, m.clone(), &mut cost);
            }
            EnablementMapping::Null => unreachable!(),
        }
        self.exec_service(self.now, cost);
        self.tlog.log(self.now, || {
            format!(
                "{pred_id} initiated successor {succ_id} via {}",
                kind.label()
            )
        });
    }

    /// Identity overlap: queue a matching successor description on every
    /// live current-phase description's conflict queue; ranges already
    /// completed release immediately.
    fn init_identity(&mut self, pred_id: InstanceId, succ_id: InstanceId, cost: &mut SimDuration) {
        let job = JobId(self.inst(succ_id).job as u32);
        let mut pred_live = take(&mut self.scratch.desc_ranges);
        pred_live.extend(
            self.inst(pred_id)
                .live_descs
                .iter()
                .map(|&d| (d, self.arena.range(d))),
        );
        for &(pd, range) in &pred_live {
            let sd = self.arena.alloc(succ_id, job, range);
            self.live_push(succ_id, sd);
            self.inst_mut(succ_id).released.insert(range);
            self.arena.cq_push(pd, sd);
        }
        pred_live.clear();
        self.scratch.desc_ranges = pred_live;
        let mut done_runs = take(&mut self.scratch.runs);
        done_runs.extend(self.inst(pred_id).completed.iter_runs());
        let rclass = self.released_class();
        for &r in &done_runs {
            *cost += self.cfg.costs.release;
            self.release_range(succ_id, r, rclass, cost);
        }
        done_runs.clear();
        self.scratch.runs = done_runs;
    }

    /// Indirect (forward/reverse/seam) overlap: set status bits on the
    /// current phase, arrange composite-map construction, and gate the
    /// successor behind enablement counters.
    fn init_counted(
        &mut self,
        pred_id: InstanceId,
        succ_id: InstanceId,
        mapping: EnablementMapping,
        cost: &mut SimDuration,
    ) {
        let early_limit = self.policy.indirect_subset.min(self.inst(succ_id).granules);
        self.inst_mut(succ_id).counter_state = Some(CounterState {
            mapping,
            composite: None,
            prebuilt: None,
            counters: Vec::new(),
            early_limit,
        });
        // Status bit on every live description of the current phase.
        let mut live = take(&mut self.scratch.members);
        live.extend_from_slice(&self.inst(pred_id).live_descs);
        for &d in &live {
            self.arena.set_enabling(d, true);
        }
        live.clear();
        self.scratch.members = live;
        match self.policy.composite_build {
            CompositeBuild::Immediate => self.build_composite(succ_id, cost),
            CompositeBuild::Background => {
                self.exec_backlog.push_back(ExecTask::BuildComposite {
                    inst: succ_id,
                    prepaid: SimDuration::ZERO,
                });
                self.kick_exec();
            }
        }
    }

    /// Construct the composite granule map for `succ_id`, apply decrements
    /// for already-completed predecessor granules, release whatever that
    /// enables, and optionally elevate the enabling current-phase granules.
    fn build_composite(&mut self, succ_id: InstanceId, cost: &mut SimDuration) {
        let full = GranuleRange::new(0, self.inst(succ_id).granules);
        if self.inst(succ_id).state != InstState::Initiated
            || self.inst(succ_id).released.contains_range(full)
        {
            return; // barrier already lifted; the map would be useless
        }
        let Some(pred_id) = self.inst(succ_id).predecessor else {
            return;
        };
        let pred_granules = self.inst(pred_id).granules;
        let (comp, early_limit) = {
            let cs = self
                .inst_mut(succ_id)
                .counter_state
                .as_mut()
                .expect("counted gate");
            if cs.composite.is_some() {
                return;
            }
            // The background cost probe may have constructed the map
            // already; share that one instead of building twice.
            let comp = cs
                .prebuilt
                .take()
                .unwrap_or_else(|| Arc::new(CompositeMap::build(&cs.mapping, pred_granules)));
            (comp, cs.early_limit)
        };
        // Only entries that feed the chosen early subset are constructed
        // (the paper's subset advice caps the enablement problem's size).
        let useful_entries = comp.targets.iter().filter(|&&r| r < early_limit).count() as u64;
        *cost += self.cfg.costs.composite_map_per_entry * useful_entries;

        let mut counters: Vec<u32> = comp.requires[..early_limit as usize].to_vec();
        // Null-set-enabled granules in the early window behave like a
        // universal successor: queue them behind the current phase.
        let mut zero_now = take(&mut self.scratch.zero_now);
        zero_now.extend((0..early_limit).filter(|&r| counters[r as usize] == 0));
        // Decrements for predecessor granules that completed before the
        // map was built (background construction). `comp` is an owned
        // handle, so the completed runs iterate without materializing.
        let mut freed = take(&mut self.scratch.freed);
        let decrement_cost = self.cfg.costs.counter_decrement;
        for run in self.inst(pred_id).completed.iter_runs() {
            for g in run.iter() {
                for &r in comp.dependents_of(g) {
                    if r < early_limit {
                        let c = &mut counters[r as usize];
                        debug_assert!(*c > 0);
                        *c -= 1;
                        *cost += decrement_cost;
                        if *c == 0 {
                            freed.push(r);
                        }
                    }
                }
            }
        }
        let mut runs = take(&mut self.scratch.runs);
        coalesce_indices_into(&mut zero_now, &mut runs);
        for &run in &runs {
            *cost += self.cfg.costs.release;
            self.release_range(succ_id, run, QueueClass::Normal, cost);
        }
        runs.clear();
        let rclass = self.released_class();
        coalesce_indices_into(&mut freed, &mut runs);
        for &run in &runs {
            *cost += self.cfg.costs.release;
            self.release_range(succ_id, run, rclass, cost);
        }
        runs.clear();
        self.scratch.runs = runs;
        zero_now.clear();
        self.scratch.zero_now = zero_now;
        freed.clear();
        self.scratch.freed = freed;
        if self.policy.elevate_enabling {
            // Only granules that enable the chosen early subset are worth
            // elevating ("identify a subset group of successor-phase
            // granules ... so as to avoid solving an unnecessarily large
            // enablement problem"); and if most of the current phase is
            // enabling, elevation is a no-op by definition — skip it
            // rather than shatter the master description.
            let mut enabling = take(&mut self.scratch.indices);
            enabling.extend(
                (0..pred_granules)
                    .filter(|&i| comp.dependents_of(i).iter().any(|&r| r < early_limit)),
            );
            if enabling.len() * 2 <= pred_granules as usize {
                self.elevate_enabling_granules(pred_id, &mut enabling, cost);
            }
            enabling.clear();
            self.scratch.indices = enabling;
        }
        let cs = self
            .inst_mut(succ_id)
            .counter_state
            .as_mut()
            .expect("counted gate");
        cs.composite = Some(comp);
        cs.counters = counters;
    }

    /// Carve the enabling current-phase granules into elevated individual
    /// descriptions, "placed in the waiting computation queue in such a
    /// manner as to elevate their computational priority".
    fn elevate_enabling_granules(
        &mut self,
        pred_id: InstanceId,
        enabling: &mut Vec<u32>,
        cost: &mut SimDuration,
    ) {
        let mut runs = take(&mut self.scratch.runs);
        coalesce_indices_into(enabling, &mut runs);
        let mut candidates = take(&mut self.scratch.desc_ranges);
        for &run in &runs {
            // Find waiting descriptors of the predecessor intersecting run.
            candidates.clear();
            candidates.extend(
                self.inst(pred_id)
                    .live_descs
                    .iter()
                    .filter(|&&d| matches!(self.arena.state(d), DescState::Waiting))
                    .filter_map(|&d| self.arena.range(d).intersect(run).map(|ovl| (d, ovl))),
            );
            for &(d, ovl) in &candidates {
                // The descriptor may have been replaced by an earlier carve
                // in this same loop; re-check.
                if !matches!(self.arena.state(d), DescState::Waiting) {
                    continue;
                }
                let drange = self.arena.range(d);
                let Some(ovl) = drange.intersect(ovl) else {
                    continue;
                };
                if ovl == drange {
                    // Whole descriptor is enabling: move it to the
                    // elevated segment.
                    self.waiting.remove(d);
                    let class = QueueClass::Elevated;
                    let job = self.arena.job(d);
                    self.arena.set_class(d, class);
                    self.waiting.push_back(d, class, job);
                    continue;
                }
                // Split out the overlapping middle. At most a leading and
                // a trailing non-enabling piece exist; two slots replace
                // the old per-candidate vector.
                self.waiting.remove(d);
                let job = self.arena.job(d);
                let mut lead: Option<DescId> = None;
                let mut tail: Option<DescId> = None;
                let mut cur = d;
                if ovl.lo > drange.lo {
                    let rem = self.arena.split(cur, ovl.lo - drange.lo);
                    self.splits += 1;
                    *cost += self.cfg.costs.split;
                    self.live_push(pred_id, rem);
                    lead = Some(cur); // leading non-enabling part
                    cur = rem;
                }
                if ovl.hi < self.arena.range(cur).hi {
                    let tail_at = ovl.hi - self.arena.range(cur).lo;
                    let rem = self.arena.split(cur, tail_at);
                    self.splits += 1;
                    *cost += self.cfg.costs.split;
                    self.live_push(pred_id, rem);
                    tail = Some(rem); // trailing non-enabling part
                }
                // `cur` is now exactly the enabling overlap.
                self.arena.set_class(cur, QueueClass::Elevated);
                self.waiting.push_back(cur, QueueClass::Elevated, job);
                self.arena.set_state(cur, DescState::Waiting);
                for p in [lead, tail].into_iter().flatten() {
                    self.arena.set_class(p, QueueClass::Normal);
                    self.waiting.push_front(p, QueueClass::Normal, job);
                    self.arena.set_state(p, DescState::Waiting);
                }
                self.wake_workers(2);
            }
        }
        candidates.clear();
        self.scratch.desc_ranges = candidates;
        runs.clear();
        self.scratch.runs = runs;
    }

    // ------------------------------------------------------------------
    // event handlers
    // ------------------------------------------------------------------

    /// Select waiting work for worker `w` per the assignment policy.
    ///
    /// Queue order is PAX's the-more-the-merrier allocation. Data
    /// proximity scans a bounded window for a description whose *front*
    /// granule (the part the worker will actually receive after any
    /// demand split) is homed in the worker's memory cluster.
    fn pick_work(&mut self, w: WorkerId) -> Option<DescId> {
        // Affinity-restricted classes see only the queue segments they may
        // serve; the restricted pop bypasses the data-proximity scan
        // (affinity is the stronger constraint). `Any` classes fall
        // through to the homogeneous path unchanged.
        if let Some(h) = self.hetero.as_ref() {
            if let Some(c) = h.class_idx(w) {
                let aff = h.classes[c].affinity;
                if aff != ClassAffinity::Any {
                    return self
                        .waiting
                        .pop_class(aff.serves_elevated(), aff.serves_normal());
                }
            }
        }
        match (self.policy.assignment, self.cfg.locality.as_ref()) {
            (AssignmentPolicy::DataProximity { scan_window }, Some(loc)) => {
                let wc = loc.worker_cluster(w.0 as usize, self.cfg.processors);
                let arena = &self.arena;
                let instances = &self.instances;
                self.waiting.pop_matching(scan_window, |id| {
                    let total = instances[arena.instance(id).0 as usize].granules;
                    loc.home_cluster(arena.range(id).lo, total) == wc
                })
            }
            _ => self.waiting.pop(),
        }
    }

    /// Remote-access stall for `range` executed by worker `w`, with
    /// local/remote accounting. Zero on uniform-memory machines.
    fn locality_stall(
        &mut self,
        w: WorkerId,
        inst_id: InstanceId,
        range: GranuleRange,
    ) -> SimDuration {
        let Some(loc) = self.cfg.locality.as_ref() else {
            return SimDuration::ZERO;
        };
        let total = self.inst(inst_id).granules;
        let wc = loc.worker_cluster(w.0 as usize, self.cfg.processors);
        let remote = loc.remote_granules(range.lo, range.hi, total, wc);
        let stall = loc.stall(remote);
        self.remote_granules += remote;
        self.local_granules += u64::from(range.len()) - remote;
        self.remote_stall += stall;
        stall
    }

    /// Return every pool token held by the task on worker `w` and wake
    /// all token-parked workers (each re-seeks in park order and re-parks
    /// if its pool is still dry — the re-check draws no RNG, so parking
    /// churn never perturbs determinism). Called on completion *and* on
    /// crash preemption: a crash that leaked tokens would starve the pool
    /// and break fault determinism.
    fn release_tokens(&mut self, w: WorkerId) {
        let Some(h) = self.hetero.as_mut() else {
            return;
        };
        let wi = w.0 as usize;
        if h.held[wi].is_empty() {
            return;
        }
        for i in 0..h.held[wi].len() {
            let p = h.held[wi][i] as usize;
            h.tokens[p] += 1;
        }
        h.held[wi].clear();
        let now = self.now;
        for (pw, since, pool) in h.parked.drain(..) {
            h.pool_wait_ticks[pool as usize] += now.since(since);
            self.events.schedule(now, Ev::Seek(pw));
        }
    }

    fn on_seek(&mut self, w: WorkerId) {
        // A seek scheduled before the processor crashed can fire while it
        // is down: drop it (without parking the worker on the idle stack —
        // the repair event re-seeks it).
        if let Some(f) = self.faults.as_ref() {
            if f.down[w.0 as usize] {
                return;
            }
        }
        let Some(mut d) = self.pick_work(w) else {
            self.idle_workers.push(w);
            return;
        };
        let inst_id = self.arena.instance(d);
        // Secondary-resource gate: a task dispatches only when one token
        // from every pool its phase requires is available. Checked before
        // any split/cost/RNG activity, so a blocked attempt leaves no
        // trace beyond the wait accounting — the description returns to
        // the head of its segment and the worker parks until a completion
        // (or crash preemption) returns a token.
        if let Some(h) = self.hetero.as_mut() {
            let inst = &self.instances[inst_id.0 as usize];
            let (job, phase) = (inst.job, inst.def.0 as usize);
            let req = &h.phase_pools[job][phase];
            if let Some(&blocked) = req.iter().find(|&&p| h.tokens[p as usize] == 0) {
                let class = self.arena.class(d);
                let jobid = self.arena.job(d);
                self.waiting.push_front(d, class, jobid);
                h.pool_waits[blocked as usize] += 1;
                h.parked.push((w, self.now, blocked));
                return;
            }
            let wi = w.0 as usize;
            for i in 0..h.phase_pools[job][phase].len() {
                let p = h.phase_pools[job][phase][i];
                h.tokens[p as usize] -= 1;
                h.held[wi].push(p);
            }
        }
        let task_size = self.inst(inst_id).task_size;
        let mut cost = self.cfg.costs.dispatch;
        if self.arena.range(d).len() > task_size {
            d = self.dispatch_split(d, task_size, &mut cost);
        }
        // Sample execution time for the granules of this task, plus any
        // remote-access stall under a clustered-memory machine.
        let range = self.arena.range(d);
        let mut exec =
            self.sample_task_time(inst_id, range) + self.locality_stall(w, inst_id, range);
        // Heterogeneous speed: scale the sampled duration by the
        // dispatching worker's class — *after* sampling, so the RNG draw
        // count is independent of class layout, and a 100-percent class
        // is bit-identical to the homogeneous machine.
        if let Some(h) = self.hetero.as_mut() {
            if let Some(c) = h.class_idx(w) {
                exec = SimDuration(h.classes[c].scale_ticks(exec.0));
                h.class_busy[c] += exec;
                h.class_tasks[c] += 1;
            }
        }
        let (svc_start, svc_end) = self.exec_service(self.now, cost);
        self.record_dispatch_gantt(w, svc_start, svc_end);
        let overlapping = self
            .inst(inst_id)
            .predecessor
            .map(|p| self.inst(p).state != InstState::Complete)
            .unwrap_or(false);
        self.arena.set_state(d, DescState::Running(w));
        self.arena.set_overlap(d, overlapping);
        let start = svc_end;
        let end = start + exec;
        self.compute_deltas.push((start, 1));
        self.compute_deltas.push((end, -1));
        self.compute_total += exec;
        // The makespan frontier advances when the completion is *serviced*
        // (its `exec_service` ends at or after `end`), never at dispatch:
        // a task preempted by a crash must not leave a phantom end time.
        if let Some(f) = self.faults.as_mut() {
            f.running[w.0 as usize] = Some((d, start, end));
        }
        {
            let inst = self.inst_mut(inst_id);
            inst.stats.first_start = Some(match inst.stats.first_start {
                Some(t) => t.min(start),
                None => start,
            });
        }
        if self.gantt.is_enabled() {
            self.gantt.push(Span {
                worker: w.0,
                start,
                end,
                activity: Activity::Compute {
                    phase: inst_id.0,
                    lo: range.lo,
                    hi: range.hi,
                },
            });
        }
        self.tasks_dispatched += 1;
        self.events
            .schedule(end, Ev::TaskDone { worker: w, desc: d });
    }

    /// Split descriptor `d` so the front `task_size` granules go to the
    /// worker; handle any queued identity successors per the policy's
    /// split strategy. Returns the descriptor to dispatch.
    fn dispatch_split(&mut self, d: DescId, task_size: u32, cost: &mut SimDuration) -> DescId {
        let inst_id = self.arena.instance(d);
        let has_conflicts = self.arena.has_conflicts(d);
        if has_conflicts && self.policy.split_strategy == SplitStrategy::SuccessorSplitTask {
            // Detach successors into background splitting tasks first.
            let mut members = take(&mut self.scratch.split_members);
            self.arena.cq_drain_into(d, &mut members);
            for &m in &members {
                self.arena.set_state(m, DescState::Detached);
                self.exec_backlog.push_back(ExecTask::SplitSuccessor {
                    succ_desc: m,
                    pred: inst_id,
                });
            }
            members.clear();
            self.scratch.split_members = members;
            self.kick_exec();
        }
        let rem = self.arena.split(d, task_size);
        self.splits += 1;
        *cost += self.cfg.costs.split;
        self.live_push(inst_id, rem);
        if self.arena.has_conflicts(d) {
            // Demand split (also the fallback when presplit pieces grew
            // conflicts): mirror the split onto every queued successor.
            let front = self.arena.range(d);
            let mut members = take(&mut self.scratch.split_members);
            self.arena.cq_members_into(d, &mut members);
            for &m in &members {
                let mrange = self.arena.range(m);
                if mrange.hi <= front.hi {
                    continue; // wholly within the dispatched piece
                }
                if mrange.lo >= front.hi {
                    // wholly within the remainder: move it over
                    self.arena.cq_remove(m);
                    self.arena.cq_push(rem, m);
                    continue;
                }
                let at = front.hi - mrange.lo;
                let mrem = self.arena.split(m, at);
                self.splits += 1;
                *cost += self.cfg.costs.split;
                let succ_inst = self.arena.instance(m);
                self.live_push(succ_inst, mrem);
                self.arena.cq_push(rem, mrem);
            }
            members.clear();
            self.scratch.split_members = members;
        }
        // Remainder keeps its place at the head of its class.
        let class = self.arena.class(rem);
        let job = self.arena.job(rem);
        self.arena.set_state(rem, DescState::Waiting);
        self.waiting.push_front(rem, class, job);
        self.wake_workers(1);
        d
    }

    fn sample_task_time(&mut self, inst_id: InstanceId, range: GranuleRange) -> SimDuration {
        let inst = &self.instances[inst_id.0 as usize];
        // Disjoint field borrows: the model stays borrowed from `jobs`
        // while the RNG advances, so nothing is cloned per dispatch
        // (bimodal models heap-allocate their arms on clone).
        let model = &self.jobs[inst.job].phases[inst.def.0 as usize].cost;
        // Fast path: constant cost, no conditional skip.
        if model.skip_probability == 0.0 {
            if let DurationDist::Constant(c) = model.dist {
                return c * range.len() as u64;
            }
        }
        let rng = &mut self.rng;
        let mut total = SimDuration::ZERO;
        for _ in range.iter() {
            total += model.sample(rng);
        }
        total
    }

    fn record_dispatch_gantt(&mut self, w: WorkerId, svc_start: SimTime, svc_end: SimTime) {
        if !self.gantt.is_enabled() {
            return;
        }
        match self.cfg.executive {
            ExecutivePlacement::StealsWorker => {
                if svc_start > self.now {
                    self.gantt.push(Span {
                        worker: w.0,
                        start: self.now,
                        end: svc_start,
                        activity: Activity::ExecutiveWait,
                    });
                }
                if svc_end > svc_start {
                    self.gantt.push(Span {
                        worker: w.0,
                        start: svc_start,
                        end: svc_end,
                        activity: Activity::Management,
                    });
                }
            }
            ExecutivePlacement::Dedicated => {
                if svc_end > self.now {
                    self.gantt.push(Span {
                        worker: w.0,
                        start: self.now,
                        end: svc_end,
                        activity: Activity::ExecutiveWait,
                    });
                }
            }
        }
    }

    /// Service a run of coincident completion events in calendar order —
    /// the multi-lane executive's batched drain. The conflict-queue
    /// wakeup buffer is taken once for the whole batch and every event's
    /// merge, wakeups, enablement decrements, and (possible) instance
    /// completion are applied in event order with per-event service
    /// charges, so a batched drain is observably identical to servicing
    /// the same events one pop at a time ([`BatchPolicy::Single`]) —
    /// the equivalence the fingerprint tests pin. Coalescings that would
    /// change descriptor granularity (merging freed runs *across* events
    /// into wider releases) are deliberately not performed: they would
    /// alter split/release charges and break the reference semantics.
    fn service_completions(&mut self, dones: &[(WorkerId, DescId)]) {
        let mut wakeups = take(&mut self.scratch.wakeups);
        for &(w, d) in dones {
            if let Some(f) = self.faults.as_mut() {
                f.running[w.0 as usize] = None;
                // Forget the reissue budget: the descriptor id can be
                // recycled by the arena after release.
                if let Some(pos) = f.attempts.iter().position(|&(id, _)| id == d) {
                    f.attempts.swap_remove(pos);
                }
            }
            // The finished task's secondary-resource tokens return to
            // their pools before anything else is serviced, so released
            // conflict-queue work and parked workers see them.
            self.release_tokens(w);
            let inst_id = self.arena.instance(d);
            let range = self.arena.range(d);
            let enabling = self.arena.enabling(d);
            let mut cost = self.cfg.costs.completion;

            // Merge the completed range back into the phase's accounting.
            {
                let ran_during_predecessor = self.arena.overlap(d);
                let inst = self.inst_mut(inst_id);
                inst.completed.insert(range);
                inst.remaining -= range.len();
                inst.stats.executed_granules += range.len();
                if ran_during_predecessor {
                    inst.stats.overlap_granules += range.len();
                }
            }
            self.live_remove(inst_id, d);

            // Release everything on the conflict queue: "Upon completion
            // of the described computation, all the queued conflicting
            // computations became unconditionally computable and were
            // placed in the waiting computation queue" (ahead of normal
            // work).
            wakeups.clear();
            self.arena.cq_drain_into(d, &mut wakeups);
            let rclass = self.released_class();
            for &m in &wakeups {
                cost += self.cfg.costs.release;
                self.enqueue(m, rclass, false);
            }

            // Status bit: decrement enablement counters of the successor.
            if enabling {
                if let Some(succ_id) = self.inst(inst_id).successor {
                    self.apply_decrements(succ_id, range, &mut cost);
                }
            }

            self.arena.release(d);

            if self.inst(inst_id).remaining == 0 && self.inst(inst_id).state == InstState::Current {
                self.complete_instance(inst_id, &mut cost);
            }

            let (svc_start, svc_end) = self.exec_service(self.now, cost);
            self.record_dispatch_gantt(w, svc_start, svc_end);
            let seek_at = match self.cfg.executive {
                ExecutivePlacement::StealsWorker => svc_end,
                ExecutivePlacement::Dedicated => self.now,
            };
            self.events.schedule(seek_at, Ev::Seek(w));
        }
        wakeups.clear();
        self.scratch.wakeups = wakeups;
    }

    fn apply_decrements(
        &mut self,
        succ_id: InstanceId,
        range: GranuleRange,
        cost: &mut SimDuration,
    ) {
        let decrement_cost = self.cfg.costs.counter_decrement;
        let release_cost = self.cfg.costs.release;
        let mut freed = take(&mut self.scratch.freed);
        {
            let Some(cs) = self.inst_mut(succ_id).counter_state.as_mut() else {
                self.scratch.freed = freed;
                return;
            };
            let Some(comp) = cs.composite.as_ref() else {
                self.scratch.freed = freed;
                return; // map not built yet; build applies these later
            };
            let early = cs.early_limit;
            for g in range.iter() {
                for &r in comp.dependents_of(g) {
                    if r < early {
                        let c = &mut cs.counters[r as usize];
                        debug_assert!(*c > 0, "enablement counter underflow");
                        *c -= 1;
                        *cost += decrement_cost;
                        if *c == 0 {
                            freed.push(r);
                        }
                    }
                }
            }
        }
        let rclass = self.released_class();
        let mut runs = take(&mut self.scratch.runs);
        coalesce_indices_into(&mut freed, &mut runs);
        for &run in &runs {
            *cost += release_cost;
            self.release_range(succ_id, run, rclass, cost);
        }
        runs.clear();
        self.scratch.runs = runs;
        freed.clear();
        self.scratch.freed = freed;
    }

    fn kick_exec(&mut self) {
        let at = self.now.max(self.earliest_exec_free());
        self.events.schedule(at, Ev::ExecKick);
    }

    fn on_exec_kick(&mut self) {
        let Some(task) = self.exec_backlog.front().copied() else {
            return;
        };
        let free = self.earliest_exec_free();
        if free > self.now {
            self.events.schedule(free, Ev::ExecKick);
            return;
        }
        self.exec_backlog.pop_front();
        let mut cost = SimDuration::ZERO;
        match task {
            ExecTask::BuildComposite { inst, prepaid } => {
                let total = self.composite_build_cost(inst);
                match total {
                    None => {
                        // Stale: barrier already lifted, drop the task —
                        // and any map the cost probe cached for it, which
                        // would otherwise be retained until run end.
                        if let Some(cs) = self.inst_mut(inst).counter_state.as_mut() {
                            cs.prebuilt = None;
                        }
                    }
                    Some(total) => {
                        let chunk = SimDuration(BUILD_CHUNK_TICKS);
                        if prepaid + chunk < total {
                            // pay one slice and yield the lane so worker
                            // dispatch/completion services interleave
                            cost += chunk;
                            self.exec_backlog.push_back(ExecTask::BuildComposite {
                                inst,
                                prepaid: prepaid + chunk,
                            });
                        } else {
                            cost += total.saturating_sub(prepaid);
                            let mut state_cost = SimDuration::ZERO;
                            self.build_composite(inst, &mut state_cost);
                            // state_cost re-counts the build; the chunks
                            // already paid for it, so only charge the
                            // decrement/release/carve portion on top
                            cost += state_cost.saturating_sub(total);
                        }
                    }
                }
            }
            ExecTask::SplitSuccessor { succ_desc, pred } => {
                self.exec_split_successor(succ_desc, pred, &mut cost)
            }
        }
        self.exec_service(self.now, cost);
        if !self.exec_backlog.is_empty() {
            self.kick_exec();
        }
    }

    /// Lane time required to construct the composite map for `succ`
    /// (subset-limited), or `None` when the build is stale (the successor
    /// already became current or fully released). The map constructed for
    /// the estimate is cached on the counter state ([`CounterState::prebuilt`])
    /// and handed to [`Engine::build_composite`], which used to build the
    /// whole CSR structure a second time.
    fn composite_build_cost(&mut self, succ_id: InstanceId) -> Option<SimDuration> {
        let full = GranuleRange::new(0, self.inst(succ_id).granules);
        if self.inst(succ_id).state != InstState::Initiated
            || self.inst(succ_id).released.contains_range(full)
        {
            return None;
        }
        let pred_id = self.inst(succ_id).predecessor?;
        let pred_granules = self.inst(pred_id).granules;
        let per_entry = self.cfg.costs.composite_map_per_entry;
        let cs = self.inst_mut(succ_id).counter_state.as_mut()?;
        if cs.composite.is_some() {
            return None;
        }
        if cs.prebuilt.is_none() {
            cs.prebuilt = Some(Arc::new(CompositeMap::build(&cs.mapping, pred_granules)));
        }
        let comp = cs.prebuilt.as_ref().expect("just built");
        let useful = comp.targets.iter().filter(|&&r| r < cs.early_limit).count() as u64;
        Some(per_entry * useful)
    }

    /// Execute a successor-splitting task: distribute the detached
    /// successor description across the predecessor's current pieces,
    /// releasing parts whose enablers already completed.
    fn exec_split_successor(
        &mut self,
        succ_desc: DescId,
        pred: InstanceId,
        cost: &mut SimDuration,
    ) {
        if !matches!(self.arena.state(succ_desc), DescState::Detached) {
            return; // already handled elsewhere
        }
        let range = self.arena.range(succ_desc);
        let succ_inst = self.arena.instance(succ_desc);
        let job = self.arena.job(succ_desc);

        // Pieces: completed predecessor sub-ranges release immediately;
        // live predecessor descriptors get matching conflicted pieces.
        let mut pieces = take(&mut self.scratch.pieces);
        pieces.extend(
            self.inst(pred)
                .completed
                .covered_in_iter(range)
                .map(|r| (r, None)),
        );
        pieces.extend(self.inst(pred).live_descs.iter().filter_map(|&pd| {
            self.arena
                .range(pd)
                .intersect(range)
                .map(|ovl| (ovl, Some(pd)))
        }));
        // Piece lo values are distinct (they tile the range), so the
        // unstable sort is behavior-identical and allocation-free.
        pieces.sort_unstable_by_key(|(r, _)| r.lo);
        debug_assert_eq!(
            pieces.iter().map(|(r, _)| r.len() as u64).sum::<u64>(),
            range.len() as u64,
            "predecessor pieces must tile the successor range"
        );

        if pieces.len() == 1 {
            let (_, target) = pieces[0];
            match target {
                Some(pd) => {
                    self.arena.set_state(succ_desc, DescState::Fresh);
                    self.arena.cq_push(pd, succ_desc);
                }
                None => {
                    *cost += self.cfg.costs.release;
                    let rc = self.released_class();
                    self.enqueue(succ_desc, rc, false);
                }
            }
            pieces.clear();
            self.scratch.pieces = pieces;
            return;
        }

        // Slice the detached descriptor front-to-back.
        let mut cur = succ_desc;
        self.arena.set_state(cur, DescState::Fresh);
        for (i, &(r, target)) in pieces.iter().enumerate() {
            let piece = if i + 1 == pieces.len() {
                cur
            } else {
                let at = r.hi - self.arena.range(cur).lo;
                let rem = self.arena.split(cur, at);
                self.splits += 1;
                *cost += self.cfg.costs.split;
                self.live_push(succ_inst, rem);
                let piece = cur;
                cur = rem;
                piece
            };
            debug_assert_eq!(self.arena.range(piece), r);
            match target {
                Some(pd) => self.arena.cq_push(pd, piece),
                None => {
                    *cost += self.cfg.costs.release;
                    let _ = job;
                    let rc = self.released_class();
                    self.enqueue(piece, rc, false);
                }
            }
        }
        pieces.clear();
        self.scratch.pieces = pieces;
    }

    fn on_serial_done(&mut self, job: usize) {
        let pc = self.jobs[job].pc;
        self.run_program(job, pc + 1);
    }

    // ------------------------------------------------------------------
    // streaming admission & eviction (service mode)
    // ------------------------------------------------------------------

    /// Job `job` reached its arrival instant: apply the machine's
    /// admission policy.
    fn on_arrive(&mut self, job: usize) {
        self.admit_or_queue(job);
    }

    fn admit_or_queue(&mut self, job: usize) {
        match self.cfg.admission {
            AdmissionPolicy::AcceptAll => self.admit_job(job),
            AdmissionPolicy::BoundedDefer { max_in_flight } => {
                if self.in_flight < max_in_flight {
                    self.admit_job(job);
                } else {
                    self.deferred.push_back(job);
                }
            }
            AdmissionPolicy::Shed { max_in_flight } => {
                if self.in_flight < max_in_flight {
                    self.admit_job(job);
                } else {
                    // Shed: the job never runs. `done` keeps the drained
                    // calendar from reading as a deadlock; `finished_at`
                    // stays `None` so latency accounting skips it.
                    self.jobs[job].rejected = true;
                    self.jobs[job].done = true;
                    self.jobs_rejected += 1;
                    self.tlog
                        .log(self.now, || format!("job{job} shed by admission"));
                }
            }
        }
    }

    /// Start `job` now: its first dispatch enters the executive exactly
    /// as a batch job's would.
    fn admit_job(&mut self, job: usize) {
        self.in_flight += 1;
        if self.evict {
            if let Some(buf) = self.inst_list_pool.pop() {
                self.jobs[job].instances = buf;
            }
        }
        self.jobs[job].started_at = self.now;
        self.run_program(job, 0);
    }

    /// The program of `job` reached `End`: record completion, recycle its
    /// instances under eviction, and let the admission policy pull the
    /// next deferred arrival through the freed slot.
    fn finish_job(&mut self, job: usize) {
        self.jobs[job].done = true;
        self.jobs[job].finished_at = Some(self.now);
        self.in_flight -= 1;
        if self.evict {
            self.evict_job_instances(job);
        }
        if let Some(next) = self.deferred.pop_front() {
            self.admit_job(next);
        }
    }

    /// Return every instance of finished job `job` to the free list: run
    /// sets cleared in place (allocations kept), counter state dropped,
    /// slot marked [`InstState::Evicted`]. All of a job's instances die
    /// together, so no surviving predecessor/successor reference can
    /// dangle (those links never cross jobs).
    fn evict_job_instances(&mut self, job: usize) {
        let mut ids = take(&mut self.jobs[job].instances);
        for id in ids.drain(..) {
            let inst = &mut self.instances[id.0 as usize];
            if inst.state != InstState::Complete {
                // An abandoned lookahead misprediction could leave an
                // Initiated instance behind; keep it (leaked, warned
                // about at initiation) rather than evict live state.
                debug_assert_eq!(inst.state, InstState::Initiated, "evicting live instance");
                continue;
            }
            debug_assert!(
                inst.live_descs.is_empty(),
                "complete instance has live descs"
            );
            inst.state = InstState::Evicted;
            inst.released.clear();
            inst.completed.clear();
            inst.counter_state = None;
            self.free_instances.push(id.0);
        }
        self.inst_list_pool.push(ids);
    }

    // ------------------------------------------------------------------
    // run loop & report
    // ------------------------------------------------------------------

    // ------------------------------------------------------------------
    // fault injection
    // ------------------------------------------------------------------

    /// Is this completion event stale? A crash preempting worker `w`
    /// clears its in-flight record, so a `TaskDone` whose `(desc, end)`
    /// no longer matches the record was scheduled for work that never
    /// finished. (If the same descriptor was re-dispatched to the same
    /// worker with the same end time, the events are interchangeable at
    /// that tick — the first one serviced completes the task and the
    /// other is dropped here.)
    #[inline]
    fn task_done_is_stale(&self, w: WorkerId, d: DescId) -> bool {
        match self.faults.as_ref() {
            None => false,
            Some(f) => !matches!(
                f.running[w.0 as usize],
                Some((desc, _, end)) if desc == d && end == self.now
            ),
        }
    }

    /// Schedule the initial crash events of the machine's fault plan.
    /// Random up-spans come from the dedicated fault RNG in processor
    /// order; scripted crashes are scheduled in crash-instant order, with
    /// their down-spans queued per processor in the same order.
    fn start_faults(&mut self) {
        if self.jobs.iter().all(|j| j.done) {
            return; // nothing will run: schedule no fault stream
        }
        let now = self.now;
        let procs = self.cfg.processors;
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        f.avail_deltas.push((now, procs as i32));
        match &f.model {
            FaultModel::Random {
                time_to_failure, ..
            } => {
                for w in 0..procs {
                    let up = time_to_failure.sample(&mut f.rng).ticks().max(1);
                    self.events.schedule(
                        now + SimDuration(up),
                        Ev::Crash {
                            worker: WorkerId(w as u32),
                        },
                    );
                }
            }
            FaultModel::Scripted(evs) => {
                for e in evs {
                    f.scripted[e.processor].push_back(e.repair_after);
                    self.events.schedule(
                        SimTime(e.crash_at),
                        Ev::Crash {
                            worker: WorkerId(e.processor as u32),
                        },
                    );
                }
            }
        }
    }

    /// A processor goes down. Preempts any in-flight task (the lost range
    /// re-enters dispatch per the retry policy), removes the worker from
    /// circulation, and schedules the repair. Once every job is done the
    /// stream stops renewing itself, so the calendar always drains.
    fn on_crash(&mut self, w: WorkerId) {
        let wi = w.0 as usize;
        let all_done = self.jobs.iter().all(|j| j.done);
        let f = self
            .faults
            .as_mut()
            .expect("crash event without a fault plan");
        // The event's scripted span must be consumed even when the crash
        // itself is ignored, to keep the span queue aligned.
        let scripted_span = match &f.model {
            FaultModel::Scripted(_) => Some(
                f.scripted[wi]
                    .pop_front()
                    .expect("scheduled crash has a queued span"),
            ),
            FaultModel::Random { .. } => None,
        };
        if all_done || f.down[wi] {
            return;
        }
        f.down[wi] = true;
        f.crashes += 1;
        f.avail_deltas.push((self.now, -1));
        let down_span: Option<u64> = match scripted_span {
            Some(span) => span,
            None => {
                let FaultModel::Random { time_to_repair, .. } = &f.model else {
                    unreachable!("non-scripted crash under a scripted model")
                };
                Some(time_to_repair.sample(&mut f.rng).ticks().max(1))
            }
        };
        match f.running[wi].take() {
            Some((d, start, end)) => self.preempt_lost_task(w, d, start, end),
            None => {
                // Idle (or mid-seek) worker: pull it off the idle stack so
                // wake-ups cannot hand work to a dead processor; an
                // in-flight seek is dropped by the `on_seek` guard.
                if let Some(pos) = self.idle_workers.iter().position(|&x| x == w) {
                    self.idle_workers.remove(pos);
                }
                // A worker parked on a resource pool likewise leaves the
                // park list (its wait ends at the crash); the repair event
                // re-seeks it, and it re-parks if the pool is still dry.
                if let Some(h) = self.hetero.as_mut() {
                    if let Some(pos) = h.parked.iter().position(|&(x, _, _)| x == w) {
                        let (_, since, pool) = h.parked.remove(pos);
                        let waited = self.now.since(since);
                        h.pool_wait_ticks[pool as usize] += waited;
                    }
                }
            }
        }
        if let Some(ticks) = down_span {
            self.events
                .schedule(self.now + SimDuration(ticks), Ev::Repair { worker: w });
        }
    }

    /// Reverse the dispatch-time accounting of a preempted task and route
    /// its granule range per the retry policy. The busy trace keeps the
    /// span the worker really computed (start → crash) — that time is
    /// *lost work*, counted separately from useful compute.
    fn preempt_lost_task(&mut self, w: WorkerId, d: DescId, start: SimTime, end: SimTime) {
        let exec = end.since(start);
        // Tokens held by the preempted task return immediately — before
        // the retry policy can abort the run — so a crash never leaks
        // pool capacity, whatever the policy decides.
        self.release_tokens(w);
        if let Some(h) = self.hetero.as_mut() {
            if let Some(c) = h.class_idx(w) {
                // Reverse the per-class useful-compute accounting exactly
                // as `compute_total` below; the span really computed is
                // lost work, not utilization.
                h.class_busy[c] -= exec;
            }
        }
        // The crash can land before the task's compute even started (the
        // dispatch service was still queued): nothing was computed then.
        let cancel_from = start.max(self.now);
        self.compute_deltas.push((cancel_from, -1));
        self.compute_deltas.push((end, 1));
        self.compute_total -= exec;
        let f = self
            .faults
            .as_mut()
            .expect("preemption without a fault plan");
        f.lost_work += cancel_from.since(start);
        let retry = f.retry;
        let attempts = match f.attempts.iter_mut().find(|(id, _)| *id == d) {
            Some(e) => {
                e.1 += 1;
                e.1
            }
            None => {
                f.attempts.push((d, 1));
                1
            }
        };
        let give_up = match retry {
            RetryPolicy::Abandon => true,
            RetryPolicy::Bounded { max_attempts } => attempts > max_attempts,
            RetryPolicy::ReissueFront => false,
        };
        if give_up {
            let job = self.arena.job(d).0 as usize;
            let detail = match retry {
                RetryPolicy::Abandon => format!(
                    "processor {} crashed at {} and the retry policy abandons lost work",
                    w.0, self.now
                ),
                _ => format!(
                    "descriptor lost to processor crashes {attempts} times \
                     (reissue budget {})",
                    match retry {
                        RetryPolicy::Bounded { max_attempts } => max_attempts,
                        _ => 0,
                    }
                ),
            };
            self.abort
                .get_or_insert(EngineError::JobAborted { job, detail });
            return;
        }
        self.faults.as_mut().expect("fault plan present").retries += 1;
        let class = self.arena.class(d);
        let job = self.arena.job(d);
        self.arena.set_state(d, DescState::Waiting);
        self.waiting.push_front(d, class, job);
        self.wake_workers(1);
    }

    /// A processor comes back up: rejoin the pool (via a fresh seek),
    /// and — under the random model — draw the next up-span.
    fn on_repair(&mut self, w: WorkerId) {
        let wi = w.0 as usize;
        let all_done = self.jobs.iter().all(|j| j.done);
        let f = self
            .faults
            .as_mut()
            .expect("repair event without a fault plan");
        if !f.down[wi] {
            debug_assert!(false, "repair of an up processor");
            return;
        }
        f.down[wi] = false;
        f.avail_deltas.push((self.now, 1));
        if !all_done {
            if let FaultModel::Random {
                time_to_failure, ..
            } = &f.model
            {
                let up = time_to_failure.sample(&mut f.rng).ticks().max(1);
                self.events
                    .schedule(self.now + SimDuration(up), Ev::Crash { worker: w });
            }
        }
        self.events.schedule(self.now, Ev::Seek(w));
    }

    pub(crate) fn start(&mut self) {
        for j in 0..self.jobs.len() {
            // `t = 0` arrivals are admitted directly, with no `Arrive`
            // event: under the default accept-all policy the event stream
            // (and hence the whole run) is bit-identical to the closed
            // batch engine. Later arrivals enter through the calendar.
            let at = self.jobs[j].arrived_at;
            if at == SimTime::ZERO {
                self.admit_or_queue(j);
            } else {
                self.events.schedule(at, Ev::Arrive { job: j });
            }
        }
        for w in 0..self.cfg.processors {
            self.events
                .schedule(SimTime::ZERO, Ev::Seek(WorkerId(w as u32)));
        }
        self.start_faults();
    }

    /// Due time of the next pending event, if any — the sharded
    /// coordinator's per-group progress lower bound.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// End time of the last event serviced so far (the local makespan
    /// once the calendar has drained).
    pub(crate) fn frontier(&self) -> SimTime {
        self.last_event_end
    }

    /// Events the executive drains per service round: one in the pinned
    /// reference mode, up to the lane count otherwise (the paper's
    /// parallel executive services the queue with every idle lane).
    fn batch_capacity(&self) -> usize {
        match self.cfg.batch {
            BatchPolicy::Single => 1,
            BatchPolicy::Coincident | BatchPolicy::Lookahead { .. } => {
                self.cfg.executive_lanes.max(1)
            }
        }
    }

    /// Handle one drained coincident group in calendar order. Runs of
    /// adjacent completion events go through the batched completion
    /// service; state evolution is identical to popping the same events
    /// one at a time.
    fn process_batch(&mut self, batch: &[(SimTime, Ev)], dones: &mut Vec<(WorkerId, DescId)>) {
        let mut i = 0;
        while i < batch.len() {
            let (t, ev) = batch[i];
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            match ev {
                Ev::TaskDone { worker, desc } => {
                    dones.clear();
                    self.events_processed += 1;
                    if !self.task_done_is_stale(worker, desc) {
                        dones.push((worker, desc));
                    }
                    while let Some(&(t2, Ev::TaskDone { worker, desc })) = batch.get(i + 1) {
                        debug_assert_eq!(t2, t, "coincident group spans ticks");
                        self.events_processed += 1;
                        if !self.task_done_is_stale(worker, desc) {
                            dones.push((worker, desc));
                        }
                        i += 1;
                    }
                    self.service_completions(dones);
                }
                Ev::Seek(w) => {
                    self.events_processed += 1;
                    self.on_seek(w);
                }
                Ev::ExecKick => {
                    self.events_processed += 1;
                    self.on_exec_kick();
                }
                Ev::SerialDone { job } => {
                    self.events_processed += 1;
                    self.on_serial_done(job);
                }
                Ev::Crash { worker } => {
                    self.events_processed += 1;
                    self.on_crash(worker);
                }
                Ev::Repair { worker } => {
                    self.events_processed += 1;
                    self.on_repair(worker);
                }
                Ev::Arrive { job } => {
                    self.events_processed += 1;
                    self.on_arrive(job);
                }
            }
            i += 1;
        }
    }

    /// Drain events due at or before `limit` (all remaining events when
    /// `None`). Returns `true` when the calendar is empty afterwards.
    ///
    /// Pausing between windows mutates no engine state, and every batch a
    /// windowed drain forms is a batch the unbounded loop would form (the
    /// batch groupings are pinned observably identical to
    /// [`BatchPolicy::Single`] service anyway), so chopping a run into
    /// windows at *any* boundaries is result-invariant — the property the
    /// sharded drivers' determinism contract rests on.
    pub(crate) fn run_window(&mut self, limit: Option<SimTime>) -> bool {
        let cap = self.batch_capacity();
        let mut batch = take(&mut self.round_batch);
        let mut dones = take(&mut self.round_dones);
        let drained_all = loop {
            if self.abort.is_some() {
                // Structural abort (e.g. retry policy gave up): stop
                // draining; `finish` surfaces the error. Reported as
                // drained so the sharded epoch protocol can terminate.
                break true;
            }
            match self.events.peek_time() {
                None => break true,
                Some(t) => {
                    if limit.is_some_and(|l| t > l) {
                        break false;
                    }
                }
            }
            batch.clear();
            let drained = self.events.pop_coincident_into(cap, &mut batch);
            debug_assert!(drained > 0, "peeked event must drain");
            let round_start = batch[0].0;
            self.process_batch(&batch, &mut dones);
            if let BatchPolicy::Lookahead { horizon } = self.cfg.batch {
                // Top the round up with later coincident groups inside the
                // horizon. Each group is drained from the live calendar
                // only after the previous one was fully serviced, so
                // events scheduled mid-round keep their deterministic
                // (time, insertion) place. The window limit does not clip
                // the horizon: a round the unbounded loop would form is
                // serviced atomically here too (a round never spans a
                // window boundary because conservative windows end at
                // least one full latency past any event they admit).
                let mut served = drained;
                while served < cap {
                    match self.events.peek_time() {
                        Some(t) if t.0 <= round_start.0.saturating_add(horizon) => {
                            batch.clear();
                            let n = self.events.pop_coincident_into(cap - served, &mut batch);
                            debug_assert!(n > 0, "peeked event must drain");
                            served += n;
                            self.process_batch(&batch, &mut dones);
                            if self.abort.is_some() {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
            }
            self.rounds += 1;
            if self.rounds.is_multiple_of(CALENDAR_REBALANCE_ROUNDS) {
                // Auto-calendar rebalance checkpoint (no-op otherwise).
                // Between rounds the calendar holds only future events,
                // so a retune rebuild is safe and order-preserving.
                self.events.rebalance();
            }
        };
        self.round_batch = batch;
        self.round_dones = dones;
        drained_all
    }

    /// Deadlock check plus report construction, once the calendar is dry.
    pub(crate) fn finish(mut self) -> Result<RunReport, EngineError> {
        if let Some(err) = self.abort.take() {
            return Err(err);
        }
        let unfinished: Vec<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.done)
            .map(|(i, _)| i)
            .collect();
        if !unfinished.is_empty() {
            let down = self
                .faults
                .as_ref()
                .map(|f| f.down.iter().filter(|&&d| d).count())
                .unwrap_or(0);
            let detail = format!(
                "waiting queue len {}, backlog {}, live descriptors {}, \
                 down processors {down}, trace:\n{}",
                self.waiting.len(),
                self.exec_backlog.len(),
                self.arena.live(),
                self.tlog
            );
            return Err(EngineError::Deadlock {
                unfinished_jobs: unfinished,
                detail,
            });
        }
        Ok(self.build_report())
    }

    fn build_report(self) -> RunReport {
        let makespan = self.last_event_end.since(SimTime::ZERO);
        let busy_trace = deltas_to_trace(self.compute_deltas);
        let mgmt_trace = deltas_to_trace(self.mgmt_deltas);
        let (avail_trace, lost_work, retries, crashes) = match self.faults {
            Some(f) => (
                deltas_to_trace(f.avail_deltas),
                f.lost_work,
                f.retries,
                f.crashes,
            ),
            None => (StepTrace::new(), SimDuration::ZERO, 0, 0),
        };
        let (class_reports, pool_reports) = match self.hetero {
            Some(h) => (
                h.classes
                    .iter()
                    .enumerate()
                    .map(|(i, c)| ClassReport {
                        name: c.name.clone(),
                        processors: c.count,
                        speed_percent: c.speed_percent,
                        busy: h.class_busy[i],
                        tasks: h.class_tasks[i],
                    })
                    .collect(),
                h.pools
                    .iter()
                    .enumerate()
                    .map(|(i, p)| PoolReport {
                        name: p.name.clone(),
                        tokens: p.tokens,
                        waits: h.pool_waits[i],
                        wait_ticks: h.pool_wait_ticks[i],
                    })
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        // Evicted slots are holes, not phases: with eviction on, `phases`
        // holds only the instances still live when the run ended (the
        // recycled ones were reported through job latency accounting).
        let phases: Vec<PhaseReport> = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, inst)| inst.state != InstState::Evicted)
            .map(|(i, inst)| PhaseReport {
                instance: InstanceId(i as u32),
                name: self.jobs[inst.job].phases[inst.def.0 as usize].name.clone(),
                job: inst.job as u32,
                granules: inst.granules,
                enabled_by: inst.enabled_by,
                stats: inst.stats.clone(),
            })
            .collect();
        let jobs: Vec<JobReport> = self
            .jobs
            .iter()
            .map(|j| JobReport {
                arrived_at: j.arrived_at,
                started_at: j.started_at,
                finished_at: j.finished_at,
                rejected: j.rejected,
            })
            .collect();
        RunReport {
            processors: self.cfg.processors,
            makespan,
            compute_time: self.compute_total,
            mgmt_time: self.mgmt_total,
            serial_time: self.serial_total,
            mgmt_steals_workers: self.cfg.executive == ExecutivePlacement::StealsWorker,
            busy_trace,
            mgmt_trace,
            avail_trace,
            lost_work,
            retries,
            crashes,
            phases,
            jobs,
            jobs_rejected: self.jobs_rejected,
            instances_peak: self.instances.len(),
            events: self.events_processed,
            tasks_dispatched: self.tasks_dispatched,
            splits: self.splits,
            local_granules: self.local_granules,
            remote_granules: self.remote_granules,
            remote_stall: self.remote_stall,
            descriptors_created: self.arena.created_total(),
            descriptors_peak: self.arena.peak_live(),
            gantt: if self.gantt.is_enabled() {
                Some(self.gantt)
            } else {
                None
            },
            warnings: self.warnings,
            class_reports,
            pool_reports,
        }
    }
}

/// Convert `(time, ±1)` deltas into a step trace. Also used by the
/// sharded merge, where the deltas of several re-based group traces are
/// superimposed.
pub(crate) fn deltas_to_trace(mut deltas: Vec<(SimTime, i32)>) -> StepTrace {
    deltas.sort_by_key(|&(t, d)| (t, -d));
    let mut trace = StepTrace::new();
    let mut level: i32 = 0;
    let mut i = 0;
    while i < deltas.len() {
        let t = deltas[i].0;
        while i < deltas.len() && deltas[i].0 == t {
            level += deltas[i].1;
            i += 1;
        }
        debug_assert!(level >= 0);
        trace.record(t, level.max(0) as u32);
    }
    trace
}

// An RNG sanity helper: keep the unused `Rng` import meaningful if the
// fast-path elides sampling entirely in a build.
#[allow(dead_code)]
fn _rng_guard<R: Rng>(_r: &mut R) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseDef;
    use crate::program::{EnableSpec, ProgramBuilder};
    use pax_sim::dist::CostModel;

    fn linear_program(
        granules: u32,
        phases: usize,
        cost_ticks: u64,
        mapping: impl Fn(usize) -> EnablementMapping,
    ) -> Program {
        let mut b = ProgramBuilder::new();
        let ids: Vec<PhaseId> = (0..phases)
            .map(|i| {
                b.phase(PhaseDef::new(
                    format!("p{i}"),
                    granules,
                    CostModel::constant(cost_ticks),
                ))
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            if i + 1 < phases {
                b.dispatch_enable(
                    id,
                    vec![EnableSpec {
                        successor: ids[i + 1],
                        mapping: mapping(i),
                    }],
                );
            } else {
                b.dispatch(id);
            }
        }
        b.build().unwrap()
    }

    fn run(program: Program, processors: usize, policy: OverlapPolicy) -> RunReport {
        let mut sim = Simulation::new(MachineConfig::ideal(processors), policy);
        sim.add_job(program);
        sim.run().expect("run failed")
    }

    #[test]
    fn single_phase_perfect_division() {
        // 32 granules × 5 ticks on 4 procs, task size = 4 (2 tasks/proc):
        // ideal makespan = 32*5/4 = 40.
        let p = linear_program(32, 1, 5, |_| EnablementMapping::Null);
        let r = run(p, 4, OverlapPolicy::strict());
        assert_eq!(r.makespan.ticks(), 40);
        assert_eq!(r.compute_time.ticks(), 160);
        assert!((r.utilization() - 1.0).abs() < 1e-9);
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].stats.executed_granules, 32);
    }

    #[test]
    fn strict_barrier_sequences_phases() {
        let p = linear_program(16, 3, 10, |_| EnablementMapping::Identity);
        let r = run(p, 4, OverlapPolicy::strict());
        assert_eq!(r.phases.len(), 3);
        // With a barrier, each phase spans 16*10/4 = 40 ticks.
        assert_eq!(r.makespan.ticks(), 120);
        for ph in &r.phases {
            assert_eq!(ph.stats.overlap_granules, 0);
            assert_eq!(ph.enabled_by, None);
        }
    }

    #[test]
    fn rundown_idle_without_overlap() {
        // 5 granules of 10 ticks on 4 processors: wave 1 runs 4, wave 2
        // runs 1 → 3 processors idle for 10 ticks.
        let p = linear_program(5, 1, 10, |_| EnablementMapping::Null);
        let r = run(
            p,
            4,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(r.makespan.ticks(), 20);
        assert_eq!(r.compute_time.ticks(), 50);
        let rd = r.rundown_of(0).unwrap();
        assert_eq!(rd.idle_processor_time, 30);
    }

    #[test]
    fn universal_overlap_fills_rundown() {
        // Two universal phases, 6 granules × 10 ticks each, 4 procs,
        // task=1. Strict: 2 ticks idle-waves per phase (6 = 4+2).
        // Overlap: second phase granules fill the first phase's tail.
        let p = linear_program(6, 2, 10, |_| EnablementMapping::Universal);
        let strict = run(
            p.clone(),
            4,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        let overlap = run(
            p,
            4,
            OverlapPolicy::overlap().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(strict.makespan.ticks(), 40); // 20 per phase
        assert_eq!(overlap.makespan.ticks(), 30); // 12 granules / 4 procs × 10
        assert!(overlap.phases[1].stats.overlap_granules > 0);
        assert_eq!(overlap.phases[1].enabled_by, Some(MappingKind::Universal));
        assert!(overlap.utilization() > strict.utilization());
    }

    #[test]
    fn identity_overlap_respects_enablement() {
        // 10 granules on 4 processors leaves a 2-granule final wave — the
        // rundown the overlap must fill.
        let p = linear_program(10, 2, 10, |_| EnablementMapping::Identity);
        let policy = OverlapPolicy::overlap()
            .with_sizing(crate::policy::TaskSizing::Fixed(1))
            .with_split_strategy(SplitStrategy::DemandSplit);
        let mut sim = Simulation::new(MachineConfig::ideal(4), policy).with_gantt();
        sim.add_job(p);
        let r = sim.run().unwrap();
        assert_eq!(r.phases.len(), 2);
        assert!(
            r.phases[1].stats.overlap_granules > 0,
            "no overlap achieved"
        );
        // Invariant: successor granule i must start at or after the
        // completion of current granule i.
        let g = r.gantt.as_ref().unwrap();
        for i in 0..10u32 {
            let pred_done = g.granule_completion(0, i).unwrap();
            let succ_start = g.granule_start(1, i).unwrap();
            assert!(
                succ_start >= pred_done,
                "granule {i}: successor started {succ_start} before enabler finished {pred_done}"
            );
        }
        // Overlap must beat the strict barrier (2 × 3 waves × 10 = 60).
        assert!(r.makespan.ticks() < 60, "makespan {}", r.makespan.ticks());
    }

    #[test]
    fn identity_overlap_all_split_strategies_agree_on_invariant() {
        for strat in [
            SplitStrategy::DemandSplit,
            SplitStrategy::PreSplit,
            SplitStrategy::SuccessorSplitTask,
        ] {
            let p = linear_program(12, 2, 7, |_| EnablementMapping::Identity);
            let policy = OverlapPolicy::overlap()
                .with_sizing(crate::policy::TaskSizing::Fixed(2))
                .with_split_strategy(strat);
            let mut sim = Simulation::new(MachineConfig::ideal(3), policy).with_gantt();
            sim.add_job(p);
            let r = sim.run().unwrap_or_else(|e| panic!("{strat:?}: {e}"));
            let g = r.gantt.as_ref().unwrap();
            for i in 0..12u32 {
                let pred_done = g.granule_completion(0, i).unwrap();
                let succ_start = g.granule_start(1, i).unwrap();
                assert!(
                    succ_start >= pred_done,
                    "{strat:?} granule {i}: {succ_start} < {pred_done}"
                );
            }
            assert_eq!(r.phases[1].stats.executed_granules, 12);
        }
    }

    #[test]
    fn null_mapping_never_overlaps() {
        let p = linear_program(8, 2, 10, |_| EnablementMapping::Null);
        let r = run(
            p,
            4,
            OverlapPolicy::overlap().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(r.phases[1].stats.overlap_granules, 0);
        assert_eq!(r.makespan.ticks(), 40);
    }

    #[test]
    fn serial_region_blocks_overlap_and_takes_time() {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new("a", 8, CostModel::constant(10)));
        let c = b.phase(PhaseDef::new("c", 8, CostModel::constant(10)));
        b.dispatch_enable(
            a,
            vec![EnableSpec {
                successor: c,
                mapping: EnablementMapping::Universal,
            }],
        );
        b.serial(15, "decide");
        b.dispatch(c);
        let p = b.build().unwrap();
        let r = run(
            p,
            4,
            OverlapPolicy::overlap().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        // No overlap through the serial region; makespan = 20 + 15 + 20.
        assert_eq!(r.phases[1].stats.overlap_granules, 0);
        assert_eq!(r.makespan.ticks(), 55);
        assert_eq!(r.phases[1].stats.serial_gap.ticks(), 15);
    }

    #[test]
    fn forward_indirect_overlap() {
        // Phase a (10 granules) forward-maps i -> 9-i into phase b.
        let fwd = crate::mapping::ForwardMap::new((0..10).rev().collect(), 10);
        let mapping = EnablementMapping::ForwardIndirect(std::sync::Arc::new(fwd));
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 10, CostModel::constant(10)));
        let pb = b.phase(PhaseDef::new("b", 10, CostModel::constant(10)));
        b.dispatch_enable(
            pa,
            vec![EnableSpec {
                successor: pb,
                mapping,
            }],
        );
        b.dispatch(pb);
        let p = b.build().unwrap();
        let policy = OverlapPolicy::overlap().with_sizing(crate::policy::TaskSizing::Fixed(1));
        let mut sim = Simulation::new(MachineConfig::ideal(4), policy).with_gantt();
        sim.add_job(p);
        let r = sim.run().unwrap();
        assert!(r.phases[1].stats.overlap_granules > 0);
        // Invariant: b's granule r starts after a's granule (9-r) ends.
        let g = r.gantt.as_ref().unwrap();
        for i in 0..10u32 {
            let pred_done = g.granule_completion(0, i).unwrap();
            let succ_start = g.granule_start(1, 9 - i).unwrap();
            assert!(succ_start >= pred_done);
        }
        assert!(r.makespan.ticks() < 60);
    }

    #[test]
    fn reverse_indirect_overlap() {
        // Successor granule r requires current granules {r, (r+1)%8}.
        let req: Vec<Vec<u32>> = (0..8).map(|r| vec![r, (r + 1) % 8]).collect();
        let rmap = crate::mapping::ReverseMap::new(req.clone(), 8);
        let mapping = EnablementMapping::ReverseIndirect(std::sync::Arc::new(rmap));
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 8, CostModel::constant(10)));
        let pb = b.phase(PhaseDef::new("b", 8, CostModel::constant(10)));
        b.dispatch_enable(
            pa,
            vec![EnableSpec {
                successor: pb,
                mapping,
            }],
        );
        b.dispatch(pb);
        let p = b.build().unwrap();
        let policy = OverlapPolicy::overlap().with_sizing(crate::policy::TaskSizing::Fixed(1));
        let mut sim = Simulation::new(MachineConfig::ideal(3), policy).with_gantt();
        sim.add_job(p);
        let r = sim.run().unwrap();
        let g = r.gantt.as_ref().unwrap();
        for (rr, deps) in req.iter().enumerate() {
            let succ_start = g.granule_start(1, rr as u32).unwrap();
            for &d in deps {
                let dep_done = g.granule_completion(0, d).unwrap();
                assert!(
                    succ_start >= dep_done,
                    "succ {rr} started {succ_start} before dep {d} done {dep_done}"
                );
            }
        }
        assert_eq!(r.phases[1].stats.executed_granules, 8);
    }

    #[test]
    fn interlock_warning_on_wrong_enable() {
        // ENABLE names phase c but b follows.
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 4, CostModel::constant(1)));
        let pb = b.phase(PhaseDef::new("b", 4, CostModel::constant(1)));
        let pc = b.phase(PhaseDef::new("c", 4, CostModel::constant(1)));
        b.dispatch_enable(
            pa,
            vec![EnableSpec {
                successor: pc,
                mapping: EnablementMapping::Universal,
            }],
        );
        b.dispatch(pb);
        b.dispatch(pc);
        let p = b.build().unwrap();
        let r = run(p, 2, OverlapPolicy::overlap());
        assert!(!r.warnings.is_empty());
        assert!(r.warnings[0].contains("interlock"));
        // phase b got no overlap
        assert_eq!(r.phases[1].stats.overlap_granules, 0);
    }

    #[test]
    fn looping_program_dispatches_multiple_instances() {
        // for k in 0..3 { dispatch a } via counter + branch
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 4, CostModel::constant(5)));
        let k = b.counter();
        let loop_top = b.next_index();
        b.dispatch(pa);
        b.incr(k, 1);
        b.step(Step::Branch {
            test: crate::program::BranchTest::CounterLt(k, 3),
            on_true: loop_top,
            on_false: loop_top + 3,
        });
        let p = b.build().unwrap();
        let r = run(p, 2, OverlapPolicy::strict());
        assert_eq!(r.phases.len(), 3);
        assert!(r.jobs[0].finished_at.is_some());
        // 3 × (4 granules × 5 ticks / 2 procs) = 30
        assert_eq!(r.makespan.ticks(), 30);
    }

    #[test]
    fn branch_preprocessing_overlaps_taken_arm() {
        // dispatch a ENABLE/BRANCHINDEPENDENT [b/universal c/universal];
        // counter==0 → branch false → c.
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 7, CostModel::constant(10)));
        let pb = b.phase(PhaseDef::new("b", 7, CostModel::constant(10)));
        let pc = b.phase(PhaseDef::new("c", 7, CostModel::constant(10)));
        let k = b.counter();
        b.dispatch_enable_branch_independent(
            pa,
            vec![
                EnableSpec {
                    successor: pb,
                    mapping: EnablementMapping::Universal,
                },
                EnableSpec {
                    successor: pc,
                    mapping: EnablementMapping::Universal,
                },
            ],
        ); // step 0
        b.step(Step::Branch {
            test: crate::program::BranchTest::CounterModNe {
                counter: k,
                modulus: 10,
                residue: 0,
            },
            on_true: 2,
            on_false: 3,
        }); // step 1
        b.dispatch(pb); // step 2 (skipped; falls through to End? use goto)
        b.dispatch(pc); // step 3
        let p = b.build().unwrap();
        let r = run(
            p,
            3,
            OverlapPolicy::overlap().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        // counter 0 → MOD == 0 → false arm → c overlapped, b never ran...
        // (note: with the fallthrough program shape, after c the program
        // hits End; b is only reachable through the true arm)
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
        assert!(r.phases[1].stats.overlap_granules > 0);
    }

    #[test]
    fn chunked_run_storage_is_run_identical() {
        // The run-storage knob is a host-performance choice: the same
        // program on the same machine must produce bit-identical runs on
        // every backend, fragmentation-heavy chunk sizes included.
        use pax_sim::machine::RunStorageKind;
        let mk = |storage| {
            let p = linear_program(64, 3, 10, |_| EnablementMapping::Identity);
            let cfg = MachineConfig::ideal(4).with_run_storage(storage);
            let policy = OverlapPolicy::overlap()
                .with_sizing(crate::policy::TaskSizing::Fixed(1))
                .with_split_strategy(SplitStrategy::DemandSplit);
            let mut sim = Simulation::new(cfg, policy).with_seed(11);
            sim.add_job(p);
            sim.run().unwrap()
        };
        let vec = mk(RunStorageKind::VecRuns);
        for storage in [
            RunStorageKind::chunked(),
            RunStorageKind::ChunkedRuns { chunk_runs: 2 },
        ] {
            let c = mk(storage);
            assert_eq!(c.makespan, vec.makespan, "{storage:?}");
            assert_eq!(c.events, vec.events, "{storage:?}");
            assert_eq!(c.tasks_dispatched, vec.tasks_dispatched, "{storage:?}");
            assert_eq!(c.splits, vec.splits, "{storage:?}");
            assert_eq!(
                c.descriptors_created, vec.descriptors_created,
                "{storage:?}"
            );
        }
    }

    #[test]
    fn steals_worker_vs_dedicated_accounting() {
        let p = linear_program(64, 2, 100, |_| EnablementMapping::Universal);
        let mk = |placement| {
            let cfg = MachineConfig::new(4)
                .with_executive(placement)
                .with_costs(pax_sim::machine::ManagementCosts::pax_default());
            let mut sim = Simulation::new(cfg, OverlapPolicy::strict());
            sim.add_job(linear_program(64, 2, 100, |_| EnablementMapping::Universal));
            sim.run().unwrap()
        };
        let _ = p;
        let stolen = mk(ExecutivePlacement::StealsWorker);
        let dedicated = mk(ExecutivePlacement::Dedicated);
        assert!(stolen.mgmt_time.ticks() > 0);
        assert!(stolen.mgmt_steals_workers);
        assert!(!dedicated.mgmt_steals_workers);
        // The computation-to-management ratio: 64 granules × 100 ticks
        // compute vs ~2 ticks per task management.
        assert!(stolen.comp_to_mgmt_ratio() > 10.0);
    }

    #[test]
    fn multi_job_streams_share_machine() {
        let mut sim = Simulation::new(MachineConfig::ideal(4), OverlapPolicy::strict());
        sim.add_job(linear_program(16, 2, 10, |_| EnablementMapping::Null));
        sim.add_job(linear_program(16, 2, 10, |_| EnablementMapping::Null));
        let r = sim.run().unwrap();
        assert_eq!(r.jobs.len(), 2);
        assert!(r.jobs.iter().all(|j| j.finished_at.is_some()));
        // Two jobs of 320 compute ticks each on 4 procs: both finish, and
        // round-robin sharing means both take longer than alone (80).
        for j in &r.jobs {
            assert!(j.makespan().unwrap().ticks() > 80);
        }
        assert_eq!(r.compute_time.ticks(), 640);
    }

    #[test]
    fn deterministic_runs_with_same_seed() {
        let mk = || {
            let p = linear_program(64, 3, 0, |_| EnablementMapping::Universal);
            // use stochastic costs
            let mut b = ProgramBuilder::new();
            let mut prev: Option<PhaseId> = None;
            let mut ids = Vec::new();
            for i in 0..3 {
                let id = b.phase(PhaseDef::new(
                    format!("p{i}"),
                    64,
                    pax_sim::dist::CostModel::new(DurationDist::uniform(5, 50)),
                ));
                ids.push(id);
                let _ = prev.replace(id);
            }
            for (i, &id) in ids.iter().enumerate() {
                if i + 1 < 3 {
                    b.dispatch_enable(
                        id,
                        vec![EnableSpec {
                            successor: ids[i + 1],
                            mapping: EnablementMapping::Universal,
                        }],
                    );
                } else {
                    b.dispatch(id);
                }
            }
            let _ = p;
            let program = b.build().unwrap();
            let mut sim =
                Simulation::new(MachineConfig::ideal(8), OverlapPolicy::overlap()).with_seed(42);
            sim.add_job(program);
            sim.run().unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.tasks_dispatched, b.tasks_dispatched);
    }

    #[test]
    fn elevated_subset_limits_indirect_problem_size() {
        let req: Vec<Vec<u32>> = (0..30).map(|r| vec![r]).collect();
        let rmap = crate::mapping::ReverseMap::new(req, 30);
        let mapping = EnablementMapping::ReverseIndirect(std::sync::Arc::new(rmap));
        let mut b = ProgramBuilder::new();
        let pa = b.phase(PhaseDef::new("a", 30, CostModel::constant(10)));
        let pb = b.phase(PhaseDef::new("b", 30, CostModel::constant(10)));
        b.dispatch_enable(
            pa,
            vec![EnableSpec {
                successor: pb,
                mapping,
            }],
        );
        b.dispatch(pb);
        let p = b.build().unwrap();
        let policy = OverlapPolicy::overlap()
            .with_sizing(crate::policy::TaskSizing::Fixed(1))
            .with_indirect_subset(4);
        let r = run(p, 4, policy);
        // Only the first 4 successor granules were counter-gated; all 30
        // still execute.
        assert_eq!(r.phases[1].stats.executed_granules, 30);
        assert!(r.phases[1].stats.overlap_granules >= 1);
    }

    #[test]
    fn zero_management_costs_mean_infinite_ratio() {
        let p = linear_program(8, 1, 10, |_| EnablementMapping::Null);
        let r = run(p, 2, OverlapPolicy::strict());
        assert!(r.comp_to_mgmt_ratio().is_infinite());
        assert_eq!(r.idle_time(), 0);
    }

    // ------------------------------------------------------------------
    // data-proximity work assignment (E12 machinery)
    // ------------------------------------------------------------------

    use pax_sim::locality::{DataLayout, LocalityModel};
    use pax_sim::time::SimDuration;

    fn locality_machine(
        processors: usize,
        clusters: usize,
        remote_extra: u64,
        layout: DataLayout,
    ) -> MachineConfig {
        MachineConfig::ideal(processors).with_locality(
            LocalityModel::new(clusters, SimDuration(remote_extra)).with_layout(layout),
        )
    }

    fn run_on(program: Program, cfg: MachineConfig, policy: OverlapPolicy) -> RunReport {
        let mut sim = Simulation::new(cfg, policy);
        sim.add_job(program);
        sim.run().expect("run failed")
    }

    #[test]
    fn uniform_memory_reports_no_locality_traffic() {
        let p = linear_program(32, 1, 5, |_| EnablementMapping::Null);
        let r = run(p, 4, OverlapPolicy::strict());
        assert_eq!(r.local_granules, 0);
        assert_eq!(r.remote_granules, 0);
        assert_eq!(r.remote_stall, SimDuration::ZERO);
        assert_eq!(r.remote_fraction(), 0.0);
    }

    #[test]
    fn locality_accounts_every_granule() {
        let p = linear_program(96, 2, 5, |_| EnablementMapping::Identity);
        let cfg = locality_machine(4, 4, 3, DataLayout::Block);
        let r = run_on(p, cfg, OverlapPolicy::strict());
        assert_eq!(r.local_granules + r.remote_granules, 2 * 96);
        // stall is exactly remote_extra per remote granule, charged to
        // compute (workers occupied)
        assert_eq!(r.remote_stall.ticks(), 3 * r.remote_granules);
        let pure = 2 * 96 * 5;
        assert_eq!(r.compute_time.ticks(), pure + r.remote_stall.ticks());
    }

    #[test]
    fn proximity_assignment_beats_queue_order_under_drift() {
        // Jittered granule costs make queue-order assignment drift off the
        // initial (accidentally local) block alignment; the proximity scan
        // holds workers to their home blocks.
        let mut b = ProgramBuilder::new();
        let ids: Vec<PhaseId> = (0..4)
            .map(|i| {
                b.phase(PhaseDef::new(
                    format!("p{i}"),
                    256,
                    CostModel::new(pax_sim::dist::DurationDist::uniform(20, 60)),
                ))
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            if i + 1 < 4 {
                b.dispatch_enable(
                    id,
                    vec![EnableSpec {
                        successor: ids[i + 1],
                        mapping: EnablementMapping::Identity,
                    }],
                );
            } else {
                b.dispatch(id);
            }
        }
        let program = b.build().unwrap();
        let cfg = locality_machine(8, 4, 40, DataLayout::Block);

        let fifo = run_on(
            program.clone(),
            cfg.clone(),
            OverlapPolicy::overlap().with_assignment(AssignmentPolicy::QueueOrder),
        );
        let prox = run_on(
            program,
            cfg,
            OverlapPolicy::overlap()
                .with_assignment(AssignmentPolicy::DataProximity { scan_window: 32 }),
        );
        assert!(
            prox.remote_fraction() < fifo.remote_fraction(),
            "proximity must reduce remote traffic: {:.3} vs {:.3}",
            prox.remote_fraction(),
            fifo.remote_fraction()
        );
        assert!(
            prox.makespan <= fifo.makespan,
            "less stall must not lengthen the run: {} vs {}",
            prox.makespan,
            fifo.makespan
        );
        // Work conservation: both execute every granule.
        assert_eq!(prox.local_granules + prox.remote_granules, 4 * 256);
        assert_eq!(fifo.local_granules + fifo.remote_granules, 4 * 256);
    }

    #[test]
    fn proximity_without_locality_model_is_queue_order() {
        let p = linear_program(64, 2, 10, |_| EnablementMapping::Identity);
        let base = run(
            p.clone(),
            4,
            OverlapPolicy::overlap().with_assignment(AssignmentPolicy::QueueOrder),
        );
        let prox = run(
            p,
            4,
            OverlapPolicy::overlap()
                .with_assignment(AssignmentPolicy::DataProximity { scan_window: 16 }),
        );
        assert_eq!(base.makespan, prox.makespan);
        assert_eq!(base.tasks_dispatched, prox.tasks_dispatched);
        assert_eq!(prox.remote_granules, 0);
    }

    #[test]
    fn cyclic_layout_defeats_proximity_with_contiguous_tasks() {
        // Interleaved data: any contiguous multi-granule task straddles all
        // clusters, so proximity matching on the front granule cannot
        // reduce the remote fraction below (C-1)/C.
        let p = linear_program(256, 1, 10, |_| EnablementMapping::Null);
        let cfg = locality_machine(8, 4, 5, DataLayout::Cyclic);
        let r = run_on(
            p,
            cfg,
            OverlapPolicy::strict()
                .with_assignment(AssignmentPolicy::DataProximity { scan_window: 32 }),
        );
        let frac = r.remote_fraction();
        assert!(
            frac > 0.70,
            "cyclic layout should stay mostly remote, got {frac:.3}"
        );
    }

    #[test]
    fn zero_scan_window_degenerates_to_queue_order() {
        let p = linear_program(128, 2, 10, |_| EnablementMapping::Identity);
        let cfg = locality_machine(4, 2, 5, DataLayout::Block);
        let a = run_on(
            p.clone(),
            cfg.clone(),
            OverlapPolicy::overlap().with_assignment(AssignmentPolicy::QueueOrder),
        );
        let b = run_on(
            p,
            cfg,
            OverlapPolicy::overlap()
                .with_assignment(AssignmentPolicy::DataProximity { scan_window: 0 }),
        );
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.remote_granules, b.remote_granules);
    }

    #[test]
    fn locality_runs_deterministically() {
        let mk = || {
            let p = linear_program(200, 3, 15, |_| EnablementMapping::Identity);
            let cfg = locality_machine(8, 4, 10, DataLayout::Block);
            run_on(
                p,
                cfg,
                OverlapPolicy::overlap()
                    .with_assignment(AssignmentPolicy::DataProximity { scan_window: 16 }),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.remote_granules, b.remote_granules);
        assert_eq!(a.remote_stall, b.remote_stall);
    }

    #[test]
    fn uniform_class_matches_homogeneous_run() {
        // A single 100%-speed class covering every processor is the
        // homogeneous machine: same makespan, same compute, zero extra
        // RNG draws — only the report grows a class section.
        let p = linear_program(32, 2, 7, |_| EnablementMapping::Identity);
        let base = run(p.clone(), 4, OverlapPolicy::strict());
        let cfg = MachineConfig::ideal(4).with_classes(vec![ProcessorClass::new("base", 4, 100)]);
        let r = run_on(p, cfg, OverlapPolicy::strict());
        assert_eq!(r.makespan, base.makespan);
        assert_eq!(r.compute_time, base.compute_time);
        assert_eq!(r.tasks_dispatched, base.tasks_dispatched);
        assert!(base.class_reports.is_empty());
        assert_eq!(r.class_reports.len(), 1);
        assert_eq!(r.class_reports[0].tasks, r.tasks_dispatched);
        assert_eq!(r.class_reports[0].busy, r.compute_time);
    }

    #[test]
    fn slow_class_stretches_every_task() {
        // 8 granules × 10 ticks on one 50%-speed processor: each task
        // takes ceil(10·100/50) = 20 ticks → makespan 160, not 80.
        let p = linear_program(8, 1, 10, |_| EnablementMapping::Null);
        let cfg = MachineConfig::ideal(1).with_classes(vec![ProcessorClass::new("slow", 1, 50)]);
        let r = run_on(
            p,
            cfg,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(r.makespan.ticks(), 160);
        assert_eq!(r.class_reports[0].busy.ticks(), 160);
        assert_eq!(r.class_reports[0].tasks, 8);
    }

    #[test]
    fn fast_class_takes_more_work() {
        // One 200% processor and one 100% processor splitting 16
        // single-granule tasks of 10 ticks: the fast worker finishes
        // each task in 5 ticks and should clear about twice the tasks.
        let p = linear_program(16, 1, 10, |_| EnablementMapping::Null);
        let cfg = MachineConfig::ideal(2).with_classes(vec![
            ProcessorClass::new("fast", 1, 200),
            ProcessorClass::new("base", 1, 100),
        ]);
        let r = run_on(
            p,
            cfg,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        let fast = &r.class_reports[0];
        let base = &r.class_reports[1];
        assert_eq!(fast.tasks + base.tasks, 16);
        assert!(
            fast.tasks > base.tasks,
            "fast class should clear more tasks: fast={} base={}",
            fast.tasks,
            base.tasks
        );
        // 16 granules, fast does ~2 per base task: optimum is ~53 ticks.
        assert!(r.makespan.ticks() < 80, "makespan {}", r.makespan.ticks());
    }

    #[test]
    fn affinity_keeps_elevated_only_class_off_normal_work() {
        // A strict run produces only Normal-queue descriptors, so an
        // ElevatedOnly class must sit idle while the NormalOnly class
        // does everything.
        let p = linear_program(12, 1, 10, |_| EnablementMapping::Null);
        let cfg = MachineConfig::ideal(2).with_classes(vec![
            ProcessorClass::new("helper", 1, 100).with_affinity(ClassAffinity::ElevatedOnly),
            ProcessorClass::new("main", 1, 100).with_affinity(ClassAffinity::NormalOnly),
        ]);
        let r = run_on(
            p,
            cfg,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(r.class_reports[0].tasks, 0);
        assert_eq!(r.class_reports[1].tasks, 12);
        assert_eq!(r.makespan.ticks(), 120);
    }

    #[test]
    fn single_token_pool_serializes_phase() {
        // 4 processors but one "operator" token: tasks of the gated
        // phase run one at a time. 4 granules × 10 ticks → 40 ticks.
        let mut b = ProgramBuilder::new();
        let id = b.phase(
            PhaseDef::new("gated", 4, CostModel::constant(10))
                .with_requires(vec!["operator".into()]),
        );
        b.dispatch(id);
        let p = b.build().unwrap();
        let cfg = MachineConfig::ideal(4).with_resources(vec![ResourcePool::new("operator", 1)]);
        let r = run_on(
            p,
            cfg,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(r.makespan.ticks(), 40);
        let pool = r.pool_report("operator").unwrap();
        assert_eq!(pool.tokens, 1);
        assert!(pool.waits > 0, "blocked dispatches should be counted");
        assert!(pool.wait_ticks.ticks() > 0);
    }

    #[test]
    fn unknown_pool_name_is_a_structured_error() {
        let mut b = ProgramBuilder::new();
        let id = b.phase(
            PhaseDef::new("gated", 4, CostModel::constant(10))
                .with_requires(vec!["nonexistent".into()]),
        );
        b.dispatch(id);
        let p = b.build().unwrap();
        let mut sim = Simulation::new(MachineConfig::ideal(2), OverlapPolicy::strict());
        sim.add_job(p);
        match sim.run() {
            Err(EngineError::InvalidProgram(msg)) => {
                assert!(msg.contains("nonexistent"), "{msg}");
                assert!(msg.contains("gated"), "{msg}");
            }
            other => panic!("expected InvalidProgram, got {other:?}"),
        }
    }

    #[test]
    fn crash_returns_held_tokens() {
        // Processor 0 takes the only token, crashes permanently mid-task,
        // and never repairs. If the crash path leaked the token the
        // remaining processor could never dispatch the rest of the phase
        // and the run would deadlock instead of completing.
        use pax_sim::faults::{FaultPlan, ScriptedFault};
        let mut b = ProgramBuilder::new();
        let id = b.phase(
            PhaseDef::new("gated", 6, CostModel::constant(10))
                .with_requires(vec!["operator".into()]),
        );
        b.dispatch(id);
        let p = b.build().unwrap();
        let cfg = MachineConfig::ideal(2)
            .with_resources(vec![ResourcePool::new("operator", 1)])
            .with_faults(FaultPlan::scripted(vec![ScriptedFault {
                processor: 0,
                crash_at: 5,
                repair_after: None,
            }]));
        let r = run_on(
            p,
            cfg.clone(),
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(r.crashes, 1);
        // All six granules execute (one is re-issued after the crash) on
        // the surviving processor, serialized by the token.
        assert_eq!(r.phases[0].stats.executed_granules, 6);
        // Deterministic: the same scenario reruns bit-identically.
        let mut again = Simulation::new(
            cfg,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        again.add_job({
            let mut b = ProgramBuilder::new();
            let id = b.phase(
                PhaseDef::new("gated", 6, CostModel::constant(10))
                    .with_requires(vec!["operator".into()]),
            );
            b.dispatch(id);
            b.build().unwrap()
        });
        let r2 = again.run().unwrap();
        assert_eq!(r.makespan, r2.makespan);
        assert_eq!(r.lost_work, r2.lost_work);
        assert_eq!(
            r.pool_report("operator").unwrap().waits,
            r2.pool_report("operator").unwrap().waits
        );
    }

    #[test]
    fn parked_worker_crash_releases_park_slot() {
        // Worker 1 parks on the exhausted pool, then crashes while
        // parked (permanent). The run must still complete on worker 0
        // and pool wait accounting must close the park interval.
        use pax_sim::faults::{FaultPlan, ScriptedFault};
        let mut b = ProgramBuilder::new();
        let id = b.phase(
            PhaseDef::new("gated", 5, CostModel::constant(10))
                .with_requires(vec!["operator".into()]),
        );
        b.dispatch(id);
        let p = b.build().unwrap();
        let cfg = MachineConfig::ideal(2)
            .with_resources(vec![ResourcePool::new("operator", 1)])
            .with_faults(FaultPlan::scripted(vec![ScriptedFault {
                processor: 1,
                crash_at: 3,
                repair_after: None,
            }]));
        let r = run_on(
            p,
            cfg,
            OverlapPolicy::strict().with_sizing(crate::policy::TaskSizing::Fixed(1)),
        );
        assert_eq!(r.phases[0].stats.executed_granules, 5);
        assert_eq!(r.makespan.ticks(), 50);
    }
}
