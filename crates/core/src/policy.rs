//! Overlap-control policy: every design choice the paper discusses, as a
//! knob the experiments can sweep.

/// How the master description of a phase is carved into worker tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskSizing {
    /// Fixed number of granules per task.
    Fixed(u32),
    /// Choose the task size so that each phase yields roughly
    /// `ratio × processors` tasks. The paper's guidance: "there should be
    /// at the outset of the current-phase work at least two tasks for each
    /// processor" — `TasksPerProcessor(2.0)`.
    TasksPerProcessor(f64),
}

impl TaskSizing {
    /// Resolve to a concrete per-task granule count for a phase of
    /// `granules` granules on `processors` processors (≥ 1 granule).
    pub fn task_granules(&self, granules: u32, processors: usize) -> u32 {
        match *self {
            TaskSizing::Fixed(n) => n.max(1),
            TaskSizing::TasksPerProcessor(ratio) => {
                let tasks = (processors as f64 * ratio).max(1.0);
                ((granules as f64 / tasks).floor() as u32).max(1)
            }
        }
    }
}

/// How an idle worker is matched with waiting work.
///
/// PAX "allocated \[processors\] as they became available on a
/// the-more-the-merrier basis" — strict queue order. The paper names "a
/// data-proximity work assignment algorithm" as a strategy under
/// development; [`AssignmentPolicy::DataProximity`] is that algorithm:
/// the seeking worker scans a bounded window of the waiting computation
/// queue for a description whose data home matches the worker's memory
/// cluster, falling back to the queue head when none does. Requires a
/// [`LocalityModel`](pax_sim::locality::LocalityModel) on the machine;
/// without one it behaves exactly like [`AssignmentPolicy::QueueOrder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentPolicy {
    /// Hand the queue head to whichever worker asks (PAX behaviour).
    QueueOrder,
    /// Prefer proximate work within a bounded scan of the queue.
    DataProximity {
        /// Maximum queued descriptions examined per seek. Bounds the
        /// executive time spent matching (the same engineering-judgment
        /// trade as the composite-map subset cap): a window of zero
        /// degenerates to queue order.
        scan_window: usize,
    },
}

/// How identity-mapped successor descriptions queued on current-phase
/// descriptions are split when the current description splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Split the queued successor at the same moment the current
    /// description splits, inside the dispatch service ("the additional
    /// delays of splitting queued successor computation descriptions may
    /// represent an unacceptable situation" — this is the strategy that
    /// risks it).
    DemandSplit,
    /// Presplit phase and successor descriptions into task-sized pieces at
    /// initiation, before idle workers present themselves; the executive
    /// "works ahead in otherwise idle time".
    PreSplit,
    /// Detach the successor into a successor-splitting task "quickly
    /// queued for later attention when the executive would again be idle".
    SuccessorSplitTask,
}

/// When the composite granule map of an indirect mapping is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositeBuild {
    /// During phase initiation, delaying the current phase's first
    /// dispatch (what the paper warns against: "it would seem wise to get
    /// the current phase into execution without the delay of constructing
    /// the necessary information").
    Immediate,
    /// As a background executive task after the current phase is running.
    Background,
}

/// The complete overlap policy for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapPolicy {
    /// Master switch: `false` reproduces the strict phase-barrier
    /// baseline.
    pub enabled: bool,
    /// Task sizing rule.
    pub sizing: TaskSizing,
    /// Identity-successor split handling.
    pub split_strategy: SplitStrategy,
    /// Composite-map construction timing for indirect mappings.
    pub composite_build: CompositeBuild,
    /// Elevate the priority of current-phase granules that enable the
    /// chosen successor subset (indirect mappings): "they should be split
    /// into individual descriptions and placed in the waiting computation
    /// queue in such a manner as to elevate their computational priority".
    pub elevate_enabling: bool,
    /// Cap on the number of successor granules subjected to early
    /// enablement under indirect mappings ("identify a subset group of
    /// successor-phase granules ... so as to avoid solving an
    /// unnecessarily large enablement problem"). `u32::MAX` = all.
    pub indirect_subset: u32,
    /// Place *released successor* pieces ahead of remaining current-phase
    /// work (PAX's conflict-release mechanism put released computations
    /// "ahead of the normal computations"). `false` (default) schedules
    /// them behind the current phase, so enabled successor work only
    /// *fills* processors the draining phase can no longer occupy —
    /// elevating it instead starves the very completions that release more
    /// successor work (measured by the E7/E8 ablations).
    pub elevate_released: bool,
    /// Worker-to-work matching rule (data-proximity extension, E12).
    pub assignment: AssignmentPolicy,
}

impl OverlapPolicy {
    /// Strict sequential phases — the baseline the paper starts from.
    pub fn strict() -> OverlapPolicy {
        OverlapPolicy {
            enabled: false,
            sizing: TaskSizing::TasksPerProcessor(2.0),
            split_strategy: SplitStrategy::DemandSplit,
            composite_build: CompositeBuild::Background,
            elevate_enabling: true,
            indirect_subset: u32::MAX,
            elevate_released: false,
            assignment: AssignmentPolicy::QueueOrder,
        }
    }

    /// Overlap with the paper's recommended settings: two tasks per
    /// processor, successor-splitting tasks, background composite builds,
    /// elevated enabling granules.
    pub fn overlap() -> OverlapPolicy {
        OverlapPolicy {
            enabled: true,
            sizing: TaskSizing::TasksPerProcessor(2.0),
            split_strategy: SplitStrategy::SuccessorSplitTask,
            composite_build: CompositeBuild::Background,
            elevate_enabling: true,
            indirect_subset: u32::MAX,
            elevate_released: false,
            assignment: AssignmentPolicy::QueueOrder,
        }
    }

    /// Builder-style setters.
    pub fn with_sizing(mut self, sizing: TaskSizing) -> OverlapPolicy {
        self.sizing = sizing;
        self
    }

    /// Set the identity-successor split strategy.
    pub fn with_split_strategy(mut self, s: SplitStrategy) -> OverlapPolicy {
        self.split_strategy = s;
        self
    }

    /// Set composite-map build timing.
    pub fn with_composite_build(mut self, c: CompositeBuild) -> OverlapPolicy {
        self.composite_build = c;
        self
    }

    /// Enable/disable priority elevation of enabling granules.
    pub fn with_elevate_enabling(mut self, e: bool) -> OverlapPolicy {
        self.elevate_enabling = e;
        self
    }

    /// Cap the early-enablement subset for indirect mappings.
    pub fn with_indirect_subset(mut self, n: u32) -> OverlapPolicy {
        self.indirect_subset = n;
        self
    }

    /// Schedule released successor pieces ahead of current-phase work.
    pub fn with_elevate_released(mut self, e: bool) -> OverlapPolicy {
        self.elevate_released = e;
        self
    }

    /// Set the worker-to-work matching rule.
    pub fn with_assignment(mut self, a: AssignmentPolicy) -> OverlapPolicy {
        self.assignment = a;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_sizing_fixed() {
        assert_eq!(TaskSizing::Fixed(8).task_granules(100, 4), 8);
        assert_eq!(TaskSizing::Fixed(0).task_granules(100, 4), 1);
    }

    #[test]
    fn task_sizing_ratio() {
        // 100 granules, 4 procs, 2 tasks/proc -> 8 tasks -> 12 granules each
        assert_eq!(TaskSizing::TasksPerProcessor(2.0).task_granules(100, 4), 12);
        // tiny phases never go below 1 granule per task
        assert_eq!(TaskSizing::TasksPerProcessor(4.0).task_granules(3, 10), 1);
        // one task per processor
        assert_eq!(TaskSizing::TasksPerProcessor(1.0).task_granules(64, 8), 8);
    }

    #[test]
    fn presets() {
        assert!(!OverlapPolicy::strict().enabled);
        let o = OverlapPolicy::overlap();
        assert!(o.enabled);
        assert_eq!(o.split_strategy, SplitStrategy::SuccessorSplitTask);
        assert_eq!(o.composite_build, CompositeBuild::Background);
    }

    #[test]
    fn builder_chain() {
        let p = OverlapPolicy::overlap()
            .with_sizing(TaskSizing::Fixed(4))
            .with_split_strategy(SplitStrategy::PreSplit)
            .with_composite_build(CompositeBuild::Immediate)
            .with_elevate_enabling(false)
            .with_indirect_subset(64);
        assert_eq!(p.sizing, TaskSizing::Fixed(4));
        assert_eq!(p.split_strategy, SplitStrategy::PreSplit);
        assert_eq!(p.composite_build, CompositeBuild::Immediate);
        assert!(!p.elevate_enabling);
        assert_eq!(p.indirect_subset, 64);
    }
}
