//! Sharded drive of multi-group simulations under conservative
//! epoch-barrier synchronization.
//!
//! ## Why the shard unit is the machine *group*, not the job
//!
//! Jobs sharing one simulated machine are coupled through shared state a
//! serial executive makes global by construction: the round-robin
//! waiting-computation queue, the idle-worker stack, the executive lane
//! timeline, and the run's RNG stream. Splitting *inside* a machine while
//! keeping bit-identical results would require replaying exactly the
//! single-thread interleaving — i.e. not parallelism. The indivisible
//! unit this module distributes is therefore the **group**: one replica
//! of the configured machine plus the jobs submitted to it
//! ([`crate::engine::Simulation::add_job_in_group`]). Group `g` is owned
//! by shard `g % S`, and each shard drains its groups' calendars
//! independently.
//!
//! ## Conservative epochs
//!
//! Groups interact only through **admission edges**
//! ([`crate::engine::Simulation::link_groups`]): group `succ` starts
//! `latency ≥ 1` ticks after the last job of `pred` finishes. A
//! [`Coordinator`] derives each epoch's window from those latencies: the
//! window never extends past the earliest instant any unadmitted group
//! could possibly be admitted (every pred's progress lower bound plus its
//! edge latency, relaxed transitively), so no shard can observe an
//! admission "from the past". Each shard drains events up to the window,
//! deposits progress/finish notes in its **outbox**, and the coordinator
//! exchanges them at the two-phase barrier (the threaded barrier itself
//! lives in `pax-runtime`; this module also provides the single-threaded
//! [`run_sharded`] driver the equivalence suite pins against).
//!
//! ## Determinism contract
//!
//! Every shard count — including pathological ones like 3 — produces a
//! bit-identical [`RunReport`]:
//!
//! * each group runs on its own `Engine` in **local time** (global time
//!   = admission time + local time), and chopping an engine's drive loop
//!   into windows at any boundaries is result-invariant (see
//!   `Engine::run_window`);
//! * admission times are computed *exactly* (pred's global finish +
//!   latency), never quantized to a barrier, so they are independent of
//!   the epoch schedule;
//! * per-group RNG streams are split deterministically from the scenario
//!   seed (`group_seed`: group 0 keeps the seed unchanged, so
//!   single-group runs reproduce the classic engine bit-for-bit; group
//!   `g > 0` gets a splitmix64-derived stream).
//!
//! ## Merged report conventions
//!
//! A single-group run's report passes through untouched. A multi-group
//! merge models a *fleet* of `G` machine replicas: `processors` is the
//! per-group count times `G`; totals (events, compute/management time,
//! descriptor counts) are sums — `descriptors_peak` sums per-group peaks,
//! an upper bound on the true fleet-wide peak; step traces are re-based
//! to global time and superimposed; `phases` are listed group by group
//! with `job` remapped to the original submission index; per-worker Gantt
//! traces are not merged (`gantt: None`) since worker ids would collide
//! across replicas.

use crate::engine::{deltas_to_trace, Engine, EngineError, Simulation};
use crate::ids::InstanceId;
use crate::report::{JobReport, RunReport};
use pax_sim::time::{SimDuration, SimTime};

/// An admission edge between machine groups: `succ` starts `latency`
/// ticks after the last job of `pred` finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLink {
    /// Gating group.
    pub pred: usize,
    /// Gated group.
    pub succ: usize,
    /// Admission delay past `pred`'s finish (≥ 1 tick; the minimum over
    /// all edges bounds how short a conservative epoch can get).
    pub latency: SimDuration,
}

/// Deterministic per-group RNG seed: group 0 keeps the scenario seed (so
/// single-group runs match the classic engine exactly); higher groups get
/// independent streams through the splitmix64 finalizer.
pub(crate) fn group_seed(seed: u64, group: usize) -> u64 {
    if group == 0 {
        return seed;
    }
    let mut z = seed ^ (group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One epoch's progress report for one group, deposited in the owning
/// shard's outbox and absorbed by the [`Coordinator`] at the barrier.
#[derive(Debug, Clone, Copy)]
pub struct GroupNote {
    /// Group index.
    pub group: usize,
    /// Global finish time, once the group's calendar drained.
    pub finished: Option<SimTime>,
    /// Lower bound on the group's next activity in global time (its next
    /// pending event, or its finish). Monotonically non-decreasing; the
    /// coordinator grows epoch windows from these.
    pub lower_bound: SimTime,
}

/// One group's runtime state inside a shard.
struct GroupCell {
    group: usize,
    engine: Engine,
    /// Global admission time; `None` until every pred finished.
    admit: Option<SimTime>,
    started: bool,
    finished: Option<SimTime>,
}

/// The per-shard half of the sharded engine: owns the `Engine`s of the
/// groups assigned to this shard and drains them window by window.
///
/// `Send` by construction (engines are plain owned state), so the
/// threaded driver in `pax-runtime` can move one per worker thread.
pub struct ShardEngine {
    shard: usize,
    cells: Vec<GroupCell>,
    /// Reused across epochs — cleared at the top of [`ShardEngine::run_window`],
    /// never shrunk, so steady-state epochs allocate nothing.
    outbox: Vec<GroupNote>,
}

impl ShardEngine {
    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Deliver an admission decided by the coordinator: group `group`
    /// (owned by this shard) starts at global time `admit`.
    pub fn deliver(&mut self, group: usize, admit: SimTime) {
        let cell = self
            .cells
            .iter_mut()
            .find(|c| c.group == group)
            .expect("admission delivered to the wrong shard");
        debug_assert!(cell.admit.is_none(), "group admitted twice");
        cell.admit = Some(admit);
    }

    /// Drain every admitted, unfinished group up to the global `window`
    /// (unbounded when `None`), depositing one [`GroupNote`] per such
    /// group in the outbox.
    pub fn run_window(&mut self, window: Option<SimTime>) {
        self.outbox.clear();
        for cell in &mut self.cells {
            let Some(admit) = cell.admit else { continue };
            if cell.finished.is_some() {
                continue;
            }
            if let Some(w) = window {
                if w < admit {
                    // Admitted beyond this epoch's window: nothing to
                    // drain yet; its own admission time bounds it.
                    self.outbox.push(GroupNote {
                        group: cell.group,
                        finished: None,
                        lower_bound: admit,
                    });
                    continue;
                }
            }
            if !cell.started {
                cell.engine.start();
                cell.started = true;
            }
            // The engine runs in local time; the window converts by the
            // admission offset.
            let local_limit = window.map(|w| SimTime(w.0 - admit.0));
            let drained = cell.engine.run_window(local_limit);
            let note = if drained {
                let fin = SimTime(admit.0 + cell.engine.frontier().0);
                cell.finished = Some(fin);
                GroupNote {
                    group: cell.group,
                    finished: Some(fin),
                    lower_bound: fin,
                }
            } else {
                let next = cell
                    .engine
                    .next_event_time()
                    .expect("an undrained calendar has a next event");
                GroupNote {
                    group: cell.group,
                    finished: None,
                    lower_bound: SimTime(admit.0 + next.0),
                }
            };
            self.outbox.push(note);
        }
    }

    /// The notes deposited by the last [`ShardEngine::run_window`] call.
    pub fn notes(&self) -> &[GroupNote] {
        &self.outbox
    }
}

/// What the coordinator decided for the next epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochPlan {
    /// Every group finished; merge and report.
    Done,
    /// No admitted group is still running, yet these groups can never be
    /// admitted (an admission cycle) — the fleet-level deadlock.
    Stuck {
        /// Groups whose admission can never happen.
        unadmitted: Vec<usize>,
    },
    /// Run one more epoch up to `window` (unbounded when every group is
    /// already admitted).
    Run {
        /// Conservative global window: no unadmitted group can possibly
        /// be admitted at or before it... minus one tick (windows end
        /// strictly before the earliest possible admission instant never
        /// matters because admissions take effect at the *next* epoch
        /// with their exact timestamp).
        window: Option<SimTime>,
    },
}

/// The epoch coordinator: tracks per-group admission/finish state,
/// absorbs shard outboxes at each barrier, decides admissions, and plans
/// the next window.
#[derive(Debug)]
pub struct Coordinator {
    links: Vec<GroupLink>,
    /// Original submission index of every job, per group (restores global
    /// job numbering in the merged report).
    group_jobs: Vec<Vec<usize>>,
    total_jobs: usize,
    processors_per_group: usize,
    admitted: Vec<Option<SimTime>>,
    finished: Vec<Option<SimTime>>,
    /// Last reported global progress lower bound per group.
    lower_bound: Vec<SimTime>,
    /// Admissions decided but not yet delivered to the owning shard.
    pending: Vec<(usize, SimTime)>,
    /// Scratch for window relaxation, reused across epochs.
    est: Vec<Option<SimTime>>,
}

impl Coordinator {
    fn n_groups(&self) -> usize {
        self.group_jobs.len()
    }

    /// Absorb one shard's epoch notes.
    pub fn absorb(&mut self, notes: &[GroupNote]) {
        for n in notes {
            let g = n.group;
            self.lower_bound[g] = self.lower_bound[g].max(n.lower_bound);
            if let Some(fin) = n.finished {
                debug_assert!(self.finished[g].is_none(), "group finished twice");
                self.finished[g] = Some(fin);
            }
        }
        // Decide admissions enabled by newly finished preds. Admission
        // times are exact — max over incoming edges of finish + latency —
        // and independent of the epoch schedule.
        for g in 0..self.n_groups() {
            if self.admitted[g].is_some() {
                continue;
            }
            let mut at = SimTime::ZERO;
            let mut all_preds_done = true;
            for l in self.links.iter().filter(|l| l.succ == g) {
                match self.finished[l.pred] {
                    Some(fin) => at = at.max(fin + l.latency),
                    None => {
                        all_preds_done = false;
                        break;
                    }
                }
            }
            if all_preds_done {
                self.admitted[g] = Some(at);
                self.pending.push((g, at));
            }
        }
    }

    /// Move decided-but-undelivered admissions into `into` as
    /// `(group, admit_time)` pairs; the driver routes each to shard
    /// `group % shard_count`.
    pub fn drain_admissions(&mut self, into: &mut Vec<(usize, SimTime)>) {
        into.append(&mut self.pending);
    }

    /// True when no group has any activity at or before `limit` left:
    /// each is finished, admitted with its next event past the limit, or
    /// gated behind a pred whose own entry gates the pause. The windowed
    /// drivers poll this to pause a `step_until` mid-run.
    pub fn paused_past(&self, limit: SimTime) -> bool {
        (0..self.n_groups()).all(|g| {
            self.finished[g].is_some()
                || match self.admitted[g] {
                    Some(at) => self.lower_bound[g].max(at) > limit,
                    None => true,
                }
        })
    }

    /// Plan the next epoch.
    pub fn plan(&mut self) -> EpochPlan {
        let n = self.n_groups();
        if self.finished.iter().all(|f| f.is_some()) {
            return EpochPlan::Done;
        }
        let running = (0..n).any(|g| self.admitted[g].is_some() && self.finished[g].is_none());
        let has_pending = !self.pending.is_empty();
        if !running && !has_pending {
            let unadmitted: Vec<usize> = (0..n).filter(|&g| self.admitted[g].is_none()).collect();
            return EpochPlan::Stuck { unadmitted };
        }
        if (0..n).all(|g| self.admitted[g].is_some()) {
            // Nothing left to admit: every engine can run to completion.
            return EpochPlan::Run { window: None };
        }
        // Relax per-group finish lower bounds: exact finishes where known,
        // reported progress bounds for running groups, and for unadmitted
        // groups the transitive earliest-possible admission (finish ≥
        // admission). `latency ≥ 1` makes every edge strictly increasing,
        // so the fixpoint is reached in ≤ n passes on any DAG; cycle
        // members stay `None` and simply never bound the window.
        self.est.clear();
        for g in 0..n {
            self.est.push(match (self.admitted[g], self.finished[g]) {
                (_, Some(fin)) => Some(fin),
                (Some(_), None) => Some(self.lower_bound[g]),
                (None, None) => None,
            });
        }
        for _ in 0..n {
            let mut changed = false;
            for g in 0..n {
                if self.admitted[g].is_some() || self.est[g].is_some() {
                    continue;
                }
                let mut at = SimTime::ZERO;
                let mut computable = true;
                for l in self.links.iter().filter(|l| l.succ == g) {
                    match self.est[l.pred] {
                        Some(e) => at = at.max(e + l.latency),
                        None => {
                            computable = false;
                            break;
                        }
                    }
                }
                if computable {
                    self.est[g] = Some(at);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let window = (0..n)
            .filter(|&g| self.admitted[g].is_none())
            .filter_map(|g| self.est[g])
            .min();
        // Unadmittable-only remainder (cycle members): let the admitted
        // engines run unbounded; the next plan reports Stuck or Done.
        EpochPlan::Run { window }
    }

    /// Merge the finished shard engines into one [`RunReport`].
    ///
    /// Call only after [`Coordinator::plan`] returned [`EpochPlan::Done`]
    /// (the drivers do); single-group runs pass through untouched.
    pub fn finish(self, shards: Vec<ShardEngine>) -> Result<RunReport, EngineError> {
        let n = self.n_groups();
        let mut cells: Vec<GroupCell> = shards.into_iter().flat_map(|s| s.cells).collect();
        cells.sort_by_key(|c| c.group);
        debug_assert_eq!(cells.len(), n, "every group has exactly one cell");
        if n == 1 {
            return cells.remove(0).engine.finish();
        }
        let mut merged: Option<RunReport> = None;
        let mut busy_deltas: Vec<(SimTime, i32)> = Vec::new();
        let mut mgmt_deltas: Vec<(SimTime, i32)> = Vec::new();
        let mut avail_deltas: Vec<(SimTime, i32)> = Vec::new();
        let mut jobs: Vec<Option<JobReport>> = (0..self.total_jobs).map(|_| None).collect();
        for cell in cells {
            let g = cell.group;
            let admit = cell
                .admit
                .expect("finish called with an unadmitted group")
                .0;
            let job_map = &self.group_jobs[g];
            let report = cell.engine.finish().map_err(|e| match e {
                EngineError::Deadlock {
                    unfinished_jobs,
                    detail,
                } => EngineError::Deadlock {
                    unfinished_jobs: unfinished_jobs.iter().map(|&j| job_map[j]).collect(),
                    detail: format!("machine group {g}: {detail}"),
                },
                EngineError::JobAborted { job, detail } => EngineError::JobAborted {
                    job: job_map[job],
                    detail: format!("machine group {g}: {detail}"),
                },
                other => other,
            })?;
            trace_to_deltas(&report.busy_trace, admit, &mut busy_deltas);
            trace_to_deltas(&report.mgmt_trace, admit, &mut mgmt_deltas);
            trace_to_deltas(&report.avail_trace, admit, &mut avail_deltas);
            for (j, jr) in report.jobs.iter().enumerate() {
                jobs[job_map[j]] = Some(JobReport {
                    arrived_at: SimTime(admit + jr.arrived_at.0),
                    started_at: SimTime(admit + jr.started_at.0),
                    finished_at: jr.finished_at.map(|f| SimTime(admit + f.0)),
                    rejected: jr.rejected,
                });
            }
            let acc = match merged.as_mut() {
                None => {
                    let mut first = report;
                    first.processors = self.processors_per_group * n;
                    first.makespan = SimDuration(admit + first.makespan.0);
                    first.gantt = None;
                    rewrite_group_phases(&mut first, 0, job_map);
                    prefix_warnings(&mut first.warnings, g);
                    merged = Some(first);
                    continue;
                }
                Some(acc) => acc,
            };
            acc.makespan = SimDuration(acc.makespan.0.max(admit + report.makespan.0));
            acc.compute_time += report.compute_time;
            acc.lost_work += report.lost_work;
            acc.retries += report.retries;
            acc.crashes += report.crashes;
            acc.mgmt_time += report.mgmt_time;
            acc.serial_time += report.serial_time;
            acc.remote_stall += report.remote_stall;
            acc.events += report.events;
            acc.tasks_dispatched += report.tasks_dispatched;
            acc.splits += report.splits;
            acc.local_granules += report.local_granules;
            acc.remote_granules += report.remote_granules;
            acc.descriptors_created += report.descriptors_created;
            acc.descriptors_peak += report.descriptors_peak;
            acc.jobs_rejected += report.jobs_rejected;
            acc.instances_peak += report.instances_peak;
            for (a, r) in acc.class_reports.iter_mut().zip(&report.class_reports) {
                a.processors += r.processors;
                a.busy += r.busy;
                a.tasks += r.tasks;
            }
            for (a, r) in acc.pool_reports.iter_mut().zip(&report.pool_reports) {
                a.waits += r.waits;
                a.wait_ticks += r.wait_ticks;
            }
            let instance_base = acc.phases.len() as u32;
            let mut phases = report.phases;
            rewrite_phases(&mut phases, instance_base, job_map);
            acc.phases.append(&mut phases);
            let mut warnings = report.warnings;
            prefix_warnings(&mut warnings, g);
            acc.warnings.append(&mut warnings);
        }
        let mut acc = merged.expect("at least one group");
        acc.busy_trace = deltas_to_trace(busy_deltas);
        acc.mgmt_trace = deltas_to_trace(mgmt_deltas);
        acc.avail_trace = deltas_to_trace(avail_deltas);
        acc.jobs = jobs
            .into_iter()
            .map(|j| j.expect("every job reported"))
            .collect();
        Ok(acc)
    }
}

fn rewrite_group_phases(report: &mut RunReport, instance_base: u32, job_map: &[usize]) {
    rewrite_phases(&mut report.phases, instance_base, job_map);
}

fn rewrite_phases(
    phases: &mut [crate::report::PhaseReport],
    instance_base: u32,
    job_map: &[usize],
) {
    for (i, p) in phases.iter_mut().enumerate() {
        p.instance = InstanceId(instance_base + i as u32);
        p.job = job_map[p.job as usize] as u32;
    }
}

fn prefix_warnings(warnings: &mut [String], group: usize) {
    for w in warnings.iter_mut() {
        *w = format!("group {group}: {w}");
    }
}

/// Re-base a local-time step trace by `offset` ticks and append its
/// changes as `(global_time, ±delta)` pairs.
fn trace_to_deltas(
    trace: &pax_sim::metrics::StepTrace,
    offset: u64,
    out: &mut Vec<(SimTime, i32)>,
) {
    let mut prev: i64 = 0;
    for &(t, v) in trace.points() {
        let d = v as i64 - prev;
        prev = v as i64;
        if d != 0 {
            out.push((SimTime(offset + t.0), d as i32));
        }
    }
}

/// A decomposed multi-group simulation, ready for a driver: the
/// coordinator plus one [`ShardEngine`] per shard.
pub struct ShardedRun {
    coordinator: Coordinator,
    shards: Vec<ShardEngine>,
}

impl ShardedRun {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Split into the coordinator and the shard engines (the threaded
    /// driver moves each engine onto its own worker thread).
    pub fn into_parts(self) -> (Coordinator, Vec<ShardEngine>) {
        (self.coordinator, self.shards)
    }

    /// Drive the fleet up to global time `limit` (to completion when
    /// `None`), running every epoch's shards in shard order on the
    /// calling thread. Returns `Ok(true)` once every group finished,
    /// `Ok(false)` when the fleet paused at the limit with work left.
    ///
    /// The epoch schedule a limited drive produces differs from the
    /// unbounded one, but window boundaries are result-invariant (see
    /// `Engine::run_window`) and admission times are exact, so the final
    /// report is bit-identical no matter how the drive was chopped.
    pub fn step_until(&mut self, limit: Option<SimTime>) -> Result<bool, EngineError> {
        let mut admissions: Vec<(usize, SimTime)> = Vec::new();
        loop {
            match self.coordinator.plan() {
                EpochPlan::Done => return Ok(true),
                EpochPlan::Stuck { unadmitted } => {
                    return Err(stuck_error(&self.coordinator, &unadmitted));
                }
                EpochPlan::Run { window } => {
                    let eff = match (window, limit) {
                        (Some(w), Some(l)) => Some(w.min(l)),
                        (Some(w), None) => Some(w),
                        (None, l) => l,
                    };
                    for s in &mut self.shards {
                        s.run_window(eff);
                    }
                    for s in &self.shards {
                        self.coordinator.absorb(s.notes());
                    }
                    admissions.clear();
                    self.coordinator.drain_admissions(&mut admissions);
                    let shard_count = self.shards.len();
                    for &(g, at) in &admissions {
                        self.shards[g % shard_count].deliver(g, at);
                    }
                    if let Some(l) = limit {
                        if self.coordinator.paused_past(l) {
                            return Ok(false);
                        }
                    }
                }
            }
        }
    }
}

impl Simulation {
    /// Decompose into per-group engines distributed over
    /// `cfg.shards.shards` shards (clamped to the group count) plus the
    /// epoch [`Coordinator`]. Validates programs, group density, and
    /// admission edges.
    pub fn into_sharded(mut self) -> Result<ShardedRun, EngineError> {
        self.expand_streams();
        self.cfg.validate().map_err(EngineError::InvalidConfig)?;
        self.validate()?;
        let n_groups = self.groups.iter().copied().max().unwrap_or(0) + 1;
        for (i, &g) in self.groups.iter().enumerate() {
            if g >= n_groups {
                return Err(EngineError::InvalidProgram(format!(
                    "job {i}: group {g} out of range"
                )));
            }
        }
        for g in 0..n_groups {
            if !self.groups.contains(&g) {
                return Err(EngineError::InvalidProgram(format!(
                    "machine group {g} has no jobs (group indices must be dense)"
                )));
            }
        }
        for l in &self.links {
            if l.pred >= n_groups || l.succ >= n_groups {
                return Err(EngineError::InvalidProgram(format!(
                    "admission edge {} -> {} names a group with no jobs",
                    l.pred, l.succ
                )));
            }
        }
        let shard_count = self.cfg.shards.shards.max(1).min(n_groups);
        // Per-group sub-simulations: same machine/policy, jobs in
        // submission order, deterministically split RNG streams.
        let mut group_jobs: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
        let mut programs: Vec<Vec<crate::program::Program>> =
            (0..n_groups).map(|_| Vec::new()).collect();
        // Arrival instants are local to each group's timeline (global
        // arrival = admission + local arrival), so they partition with
        // the jobs unchanged — shard-count invariant by construction.
        let mut arrivals: Vec<Vec<SimTime>> = (0..n_groups).map(|_| Vec::new()).collect();
        for (job, (program, &g)) in self
            .programs
            .into_iter()
            .zip(self.groups.iter())
            .enumerate()
        {
            group_jobs[g].push(job);
            arrivals[g].push(self.arrivals[job]);
            programs[g].push(program);
        }
        let total_jobs = group_jobs.iter().map(|j| j.len()).sum();
        let has_pred: Vec<bool> = (0..n_groups)
            .map(|g| self.links.iter().any(|l| l.succ == g))
            .collect();
        let mut shards: Vec<ShardEngine> = (0..shard_count)
            .map(|s| ShardEngine {
                shard: s,
                cells: Vec::new(),
                outbox: Vec::new(),
            })
            .collect();
        let per_group_cfg = self.cfg.clone().with_shards(pax_sim::ShardPolicy::single());
        for (g, (group_programs, group_arrivals)) in programs.into_iter().zip(arrivals).enumerate()
        {
            let sub = Simulation {
                cfg: per_group_cfg.clone(),
                policy: self.policy.clone(),
                groups: vec![0; group_programs.len()],
                programs: group_programs,
                arrivals: group_arrivals,
                streams: Vec::new(),
                evict: self.evict,
                links: Vec::new(),
                seed: group_seed(self.seed, g),
                gantt: self.gantt,
                trace: self.trace,
            };
            shards[g % shard_count].cells.push(GroupCell {
                group: g,
                engine: Engine::new(sub),
                admit: if has_pred[g] {
                    None
                } else {
                    Some(SimTime::ZERO)
                },
                started: false,
                finished: None,
            });
        }
        let admitted: Vec<Option<SimTime>> = has_pred
            .iter()
            .map(|&p| if p { None } else { Some(SimTime::ZERO) })
            .collect();
        let coordinator = Coordinator {
            links: self.links,
            group_jobs,
            total_jobs,
            processors_per_group: per_group_cfg.processors,
            admitted,
            finished: vec![None; n_groups],
            lower_bound: vec![SimTime::ZERO; n_groups],
            pending: Vec::new(),
            est: Vec::with_capacity(n_groups),
        };
        Ok(ShardedRun {
            coordinator,
            shards,
        })
    }
}

/// Single-threaded reference driver: runs every epoch's shards in shard
/// order on the calling thread. The pinned baseline the threaded driver
/// (`pax-runtime`) is diffed against — and the path `Simulation::run`
/// takes for multi-group or multi-shard configurations.
pub fn run_sharded(mut run: ShardedRun) -> Result<RunReport, EngineError> {
    run.step_until(None)?;
    let (coordinator, shards) = run.into_parts();
    coordinator.finish(shards)
}

/// Build the fleet-level deadlock error for an admission cycle.
pub fn stuck_error(coordinator: &Coordinator, unadmitted: &[usize]) -> EngineError {
    let unfinished_jobs: Vec<usize> = unadmitted
        .iter()
        .flat_map(|&g| coordinator.group_jobs[g].iter().copied())
        .collect();
    EngineError::Deadlock {
        unfinished_jobs,
        detail: format!(
            "machine groups {unadmitted:?} can never be admitted \
             (admission-edge cycle or a pred that deadlocked)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseDef;
    use crate::policy::OverlapPolicy;
    use crate::program::{Program, ProgramBuilder};
    use pax_sim::dist::CostModel;
    use pax_sim::machine::MachineConfig;
    use pax_sim::ShardPolicy;

    fn two_phase_program(granules: u32, cost: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.phase(PhaseDef::new("a", granules, CostModel::constant(cost)));
        let z = b.phase(PhaseDef::new("z", granules, CostModel::constant(cost)));
        b.dispatch(a);
        b.dispatch(z);
        b.build().unwrap()
    }

    fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64, u64, usize) {
        (
            r.events,
            r.makespan.ticks(),
            r.tasks_dispatched,
            r.splits,
            r.descriptors_created,
            r.descriptors_peak,
        )
    }

    #[test]
    fn group_seed_splits_deterministically() {
        assert_eq!(group_seed(7, 0), 7);
        assert_ne!(group_seed(7, 1), 7);
        assert_ne!(group_seed(7, 1), group_seed(7, 2));
        assert_eq!(group_seed(7, 3), group_seed(7, 3));
    }

    #[test]
    fn single_group_any_shard_count_is_identical() {
        let make = |shards: usize| {
            let mut sim = Simulation::new(
                MachineConfig::new(4).with_shards(ShardPolicy::new(shards)),
                OverlapPolicy::strict(),
            )
            .with_seed(7);
            sim.add_job(two_phase_program(64, 5));
            sim.add_job(two_phase_program(64, 5));
            sim.run().unwrap()
        };
        let base = make(1);
        for shards in [2, 3, 8] {
            let sharded = make(shards);
            assert_eq!(fingerprint(&base), fingerprint(&sharded));
            assert_eq!(
                base.busy_trace.points(),
                sharded.busy_trace.points(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn independent_groups_merge_and_shard_identically() {
        let make = |shards: usize| {
            let mut sim = Simulation::new(
                MachineConfig::new(4).with_shards(ShardPolicy::new(shards)),
                OverlapPolicy::strict(),
            )
            .with_seed(7);
            for g in 0..5 {
                sim.add_job_in_group(two_phase_program(32, 5), g);
            }
            sim.run().unwrap()
        };
        let base = make(1);
        // Five replicas of the 4-processor machine.
        assert_eq!(base.processors, 20);
        assert_eq!(base.jobs.len(), 5);
        for shards in [2, 3, 4, 8] {
            assert_eq!(fingerprint(&base), fingerprint(&make(shards)));
        }
    }

    #[test]
    fn admission_edges_offset_successor_groups_exactly() {
        let solo = {
            let mut sim = Simulation::new(MachineConfig::ideal(4), OverlapPolicy::strict());
            sim.add_job(two_phase_program(32, 5));
            sim.run().unwrap()
        };
        let make = |shards: usize| {
            let mut sim = Simulation::new(
                MachineConfig::ideal(4).with_shards(ShardPolicy::new(shards)),
                OverlapPolicy::strict(),
            );
            sim.add_job_in_group(two_phase_program(32, 5), 0);
            sim.add_job_in_group(two_phase_program(32, 5), 1);
            sim.link_groups(0, 1, SimDuration(17));
            sim.run().unwrap()
        };
        for shards in [1, 2, 3] {
            let r = make(shards);
            // Group 1 starts exactly at group 0's finish + latency,
            // independent of the epoch schedule.
            let m = solo.makespan.ticks();
            assert_eq!(r.jobs[1].started_at.ticks(), m + 17, "shards={shards}");
            assert_eq!(r.makespan.ticks(), m + 17 + m, "shards={shards}");
            assert_eq!(r.events, solo.events * 2);
        }
    }

    #[test]
    fn admission_chains_relax_past_unadmitted_preds() {
        // A -> B -> C with distinct latencies: C's admission estimate
        // must flow through unadmitted B without stalling the planner.
        let make = |shards: usize| {
            let mut sim = Simulation::new(
                MachineConfig::ideal(2).with_shards(ShardPolicy::new(shards)),
                OverlapPolicy::strict(),
            );
            for g in 0..3 {
                sim.add_job_in_group(two_phase_program(16, 3), g);
            }
            sim.link_groups(0, 1, SimDuration(5));
            sim.link_groups(1, 2, SimDuration(9));
            sim.run().unwrap()
        };
        let base = make(1);
        for shards in [2, 3] {
            let r = make(shards);
            assert_eq!(fingerprint(&base), fingerprint(&r));
            assert_eq!(base.jobs[2].started_at, r.jobs[2].started_at);
        }
    }

    #[test]
    fn admission_cycle_is_a_deadlock() {
        let mut sim = Simulation::new(
            MachineConfig::ideal(2).with_shards(ShardPolicy::new(2)),
            OverlapPolicy::strict(),
        );
        sim.add_job_in_group(two_phase_program(8, 2), 0);
        sim.add_job_in_group(two_phase_program(8, 2), 1);
        sim.add_job_in_group(two_phase_program(8, 2), 2);
        sim.link_groups(1, 2, SimDuration(3));
        sim.link_groups(2, 1, SimDuration(3));
        match sim.run() {
            Err(EngineError::Deadlock {
                unfinished_jobs, ..
            }) => assert_eq!(unfinished_jobs, vec![1, 2]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn sparse_group_indices_are_rejected() {
        let mut sim = Simulation::new(MachineConfig::ideal(2), OverlapPolicy::strict());
        sim.add_job_in_group(two_phase_program(8, 2), 0);
        sim.add_job_in_group(two_phase_program(8, 2), 2);
        match sim.run() {
            Err(EngineError::InvalidProgram(msg)) => {
                assert!(msg.contains("group 1"), "{msg}");
            }
            other => panic!("expected invalid program, got {other:?}"),
        }
    }

    #[test]
    fn interleaved_submission_order_is_restored_in_the_report() {
        // Jobs submitted alternating between groups keep their global
        // indices in the merged report.
        let make = |shards: usize| {
            let mut sim = Simulation::new(
                MachineConfig::new(2).with_shards(ShardPolicy::new(shards)),
                OverlapPolicy::strict(),
            )
            .with_seed(7);
            sim.add_job_in_group(two_phase_program(8, 2), 0);
            sim.add_job_in_group(two_phase_program(24, 2), 1);
            sim.add_job_in_group(two_phase_program(8, 2), 0);
            sim.run().unwrap()
        };
        for shards in [1, 2] {
            let r = make(shards);
            assert_eq!(r.jobs.len(), 3);
            // Group 1's lone job (global index 1) is the long one.
            let g1 = &r.jobs[1];
            let short = &r.jobs[0];
            assert!(g1.makespan().unwrap() > short.makespan().unwrap());
            // Phases point back at global job indices.
            assert!(r.phases.iter().any(|p| p.job == 1));
            for p in &r.phases {
                assert!(p.job <= 2);
            }
        }
    }
}
