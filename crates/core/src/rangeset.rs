//! A set of granule indices kept as sorted, disjoint, coalesced ranges,
//! over pluggable run storage.
//!
//! The executive uses range sets to track which granules of a phase have
//! completed — the paper's descriptions are "large, contiguous collections
//! of granules ... split apart as necessary ... and then merged back into
//! single descriptions when the work was completed". `RangeSet::insert` is
//! that merge.
//!
//! # Run storage backends
//!
//! How the sorted run list is *laid out* is a [`RunStorageKind`] knob
//! (selected per machine through `MachineConfig::with_run_storage`), not a
//! property of the set:
//!
//! * [`RunStorageKind::VecRuns`] — one contiguous sorted `Vec<(u32, u32)>`.
//!   In-order completion extends a run in place via the completed-run
//!   hint; a bridging or disjoint insert into a *fragmented* set shifts
//!   the whole tail: O(runs) memmove per event.
//! * [`RunStorageKind::ChunkedRuns`] — fixed-capacity chunks on a singly
//!   linked list, each carrying a run-count (its `Vec` length) and a
//!   max-end summary. Lookups skip whole chunks on the summaries
//!   (O(chunks)); a bridging insert rewrites only the chunks it touches
//!   (O(chunk) memmove, absorbed chunks are unlinked wholesale) — the
//!   layout fragmented rundown phases want.
//!
//! Every operation — `insert_run`, `subtract_into`, `covered_in_iter`,
//! the completed-run hint, and equality — is **layout-blind**: the two
//! backends are result-identical (pinned by an oracle property test), and
//! `==` compares the *logical* run sequence, ignoring both the hint and
//! chunk boundaries. A `VecRuns` set equals a `ChunkedRuns` set covering
//! the same indices.

use crate::ids::GranuleRange;
pub use pax_sim::machine::RunStorageKind;

/// Sorted, disjoint, coalesced set of `u32` indices.
///
/// Carries a one-element **completed-run hint**: the position of the run
/// the last [`RangeSet::insert_run`] merged into. Identity-mapped phases
/// complete granules almost in order, so the overwhelmingly common insert
/// extends that same run — the hint turns the run search into an O(1)
/// bounds check plus an in-place extend. The hint is pure acceleration
/// state: it never changes results, and equality ignores it (along with
/// every other layout detail — see the module docs).
#[derive(Debug, Clone)]
pub struct RangeSet {
    store: Store,
}

impl Default for RangeSet {
    fn default() -> RangeSet {
        RangeSet::new()
    }
}

impl PartialEq for RangeSet {
    fn eq(&self, other: &RangeSet) -> bool {
        // Neither the hint nor the storage layout (chunk boundaries) is
        // part of the value: compare the logical run sequences.
        self.iter_runs().eq(other.iter_runs())
    }
}

impl Eq for RangeSet {}

/// What [`RangeSet::insert_run`] did: the coalesced run that now covers the
/// inserted range, how many pre-existing runs it swallowed, and how many
/// indices were newly added. Lets completion processing merge a range and
/// learn the merge shape in one pass, instead of re-querying the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunInsert {
    /// The single stored run that contains the inserted range after
    /// coalescing.
    pub merged: GranuleRange,
    /// Number of previously stored runs merged into `merged` (0 means the
    /// inserted range was disjoint from — and non-adjacent to — everything).
    pub absorbed: usize,
    /// Indices newly covered by this insert (0 when already fully covered).
    pub added: u64,
}

impl RangeSet {
    /// Empty set on the default contiguous-Vec backend.
    #[inline]
    pub fn new() -> RangeSet {
        RangeSet {
            store: Store::Vec(VecRuns::new()),
        }
    }

    /// Empty set on the backend `kind` selects.
    pub fn with_storage(kind: RunStorageKind) -> RangeSet {
        RangeSet {
            store: match kind {
                RunStorageKind::VecRuns => Store::Vec(VecRuns::new()),
                RunStorageKind::ChunkedRuns { chunk_runs } => {
                    Store::Chunked(ChunkedRuns::new(chunk_runs))
                }
            },
        }
    }

    /// Empty Vec-backed set with room for `cap` runs before reallocating.
    #[inline]
    pub fn with_capacity(cap: usize) -> RangeSet {
        RangeSet {
            store: Store::Vec(VecRuns {
                runs: Vec::with_capacity(cap),
                hint: 0,
            }),
        }
    }

    /// The storage backend this set runs on.
    pub fn storage_kind(&self) -> RunStorageKind {
        match &self.store {
            Store::Vec(_) => RunStorageKind::VecRuns,
            Store::Chunked(c) => RunStorageKind::ChunkedRuns { chunk_runs: c.cap },
        }
    }

    /// Number of stored runs (for diagnostics; merging keeps this small).
    #[inline]
    pub fn run_count(&self) -> usize {
        match &self.store {
            Store::Vec(v) => v.runs.len(),
            Store::Chunked(c) => c.runs_total,
        }
    }

    /// Total number of indices covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.iter_runs().map(|r| r.len() as u64).sum()
    }

    /// True when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.run_count() == 0
    }

    /// True when `g` is in the set.
    #[inline]
    pub fn contains(&self, g: u32) -> bool {
        // First run ending after g contains it iff it starts at or
        // before g (earlier runs all end at or before g).
        self.store.runs_from(g).next().is_some_and(|r| r.lo <= g)
    }

    /// True when the whole range `[lo, hi)` is covered.
    #[inline]
    pub fn contains_range(&self, r: GranuleRange) -> bool {
        if r.is_empty() {
            return true;
        }
        self.store
            .runs_from(r.lo)
            .next()
            .is_some_and(|run| run.lo <= r.lo && run.hi >= r.hi)
    }

    /// Insert `[lo, hi)`, merging with any overlapping or adjacent runs.
    /// Inserting an already-covered or empty range is a no-op.
    #[inline]
    pub fn insert(&mut self, r: GranuleRange) {
        if !r.is_empty() {
            let _ = self.insert_run(r);
        }
    }

    /// Insert `[lo, hi)` and report the merge: the coalesced run now
    /// covering it, how many stored runs were absorbed, and how many
    /// indices were newly added. `r` must be non-empty (the executive
    /// never merges an empty completion; use [`RangeSet::insert`] when an
    /// empty range may flow through).
    pub fn insert_run(&mut self, r: GranuleRange) -> RunInsert {
        debug_assert!(!r.is_empty(), "insert_run of empty range");
        match &mut self.store {
            Store::Vec(v) => v.insert_run(r),
            Store::Chunked(c) => c.insert_run(r),
        }
    }

    /// Iterate the stored runs as `GranuleRange`s.
    #[inline]
    pub fn iter_runs(&self) -> impl Iterator<Item = GranuleRange> + '_ {
        // Every run ends above 0, so this cursor starts at the first run.
        self.store.runs_from(0)
    }

    /// Append the *gaps* (uncovered sub-ranges) inside the window
    /// `[win.lo, win.hi)` to `out` — the set-subtraction `win − self`,
    /// written into a caller-reused buffer so the steady-state release
    /// path never allocates. `out` is *not* cleared first.
    pub fn subtract_into(&self, win: GranuleRange, out: &mut Vec<GranuleRange>) {
        if win.is_empty() {
            return;
        }
        if self.is_empty() {
            // Empty-subtrahend fast path: nothing to subtract, the whole
            // window is one gap — skip the run positioning entirely.
            out.push(win);
            return;
        }
        let mut cursor = win.lo;
        for run in self.store.runs_from(win.lo) {
            if run.lo >= win.hi {
                break;
            }
            if run.lo > cursor {
                out.push(GranuleRange::new(cursor, run.lo.min(win.hi)));
            }
            cursor = cursor.max(run.hi);
            if cursor >= win.hi {
                break;
            }
        }
        if cursor < win.hi {
            out.push(GranuleRange::new(cursor, win.hi));
        }
    }

    /// Remove every stored run while keeping the backend's allocations
    /// for reuse — the eviction path resets a completed instance's sets
    /// without returning their buffers to the allocator, so a recycled
    /// instance starts warm.
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Vec(v) => {
                v.runs.clear();
                v.hint = 0;
            }
            Store::Chunked(c) => {
                // Unlink every live chunk into the free list; each keeps
                // its `Vec` capacity for the next occupant.
                let mut cur = c.head;
                while cur != NIL {
                    let next = c.chunks[cur as usize].next;
                    c.free_chunk(cur);
                    cur = next;
                }
                c.head = NIL;
                c.runs_total = 0;
                c.hint_chunk = NIL;
                c.hint_slot = 0;
            }
        }
    }

    /// The gaps inside the window, as a fresh vector. Convenience wrapper
    /// over [`RangeSet::subtract_into`] for tests and cold paths.
    pub fn gaps_in(&self, win: GranuleRange) -> Vec<GranuleRange> {
        let mut gaps = Vec::new();
        self.subtract_into(win, &mut gaps);
        gaps
    }

    /// Iterate the covered sub-ranges intersecting the window, without
    /// materializing them.
    pub fn covered_in_iter(&self, win: GranuleRange) -> impl Iterator<Item = GranuleRange> + '_ {
        self.store
            .runs_from(win.lo)
            .take_while(move |r| r.lo < win.hi)
            .filter_map(move |r| {
                let l = r.lo.max(win.lo);
                let h = r.hi.min(win.hi);
                (l < h).then(|| GranuleRange::new(l, h))
            })
    }

    /// The covered sub-ranges intersecting the window, as a fresh vector.
    /// Convenience wrapper over [`RangeSet::covered_in_iter`].
    pub fn covered_in(&self, win: GranuleRange) -> Vec<GranuleRange> {
        self.covered_in_iter(win).collect()
    }
}

// ----------------------------------------------------------------------
// storage backends
// ----------------------------------------------------------------------

/// The layout firewall: everything above speaks runs; everything below
/// owns bytes. Each backend implements exactly two primitives — the
/// merging insert and a sorted run cursor starting at the first run
/// ending after a given index — plus its own completed-run hint.
#[derive(Debug, Clone)]
enum Store {
    Vec(VecRuns),
    Chunked(ChunkedRuns),
}

impl Store {
    /// Cursor over the stored runs starting at the first run with
    /// `hi > after` (runs have strictly increasing ends, so everything
    /// skipped can neither contain, merge with, nor intersect anything
    /// at or beyond `after`).
    fn runs_from(&self, after: u32) -> RunCursor<'_> {
        match self {
            Store::Vec(v) => {
                let start = v.runs.partition_point(|&(_, rhi)| rhi <= after);
                RunCursor::Vec(v.runs[start..].iter())
            }
            Store::Chunked(c) => c.runs_from(after),
        }
    }
}

/// Sorted run cursor over either backend (see [`Store::runs_from`]).
enum RunCursor<'a> {
    Vec(std::slice::Iter<'a, (u32, u32)>),
    Chunked {
        chunks: &'a [Chunk],
        cur: u32,
        slot: usize,
    },
}

impl Iterator for RunCursor<'_> {
    type Item = GranuleRange;

    #[inline]
    fn next(&mut self) -> Option<GranuleRange> {
        match self {
            RunCursor::Vec(it) => it.next().map(|&(lo, hi)| GranuleRange::new(lo, hi)),
            RunCursor::Chunked { chunks, cur, slot } => loop {
                if *cur == NIL {
                    return None;
                }
                let ch = &chunks[*cur as usize];
                if let Some(&(lo, hi)) = ch.runs.get(*slot) {
                    *slot += 1;
                    return Some(GranuleRange::new(lo, hi));
                }
                *cur = ch.next;
                *slot = 0;
            },
        }
    }
}

// ----------------------------------------------------------------------
// VecRuns: the contiguous layout
// ----------------------------------------------------------------------

/// Contiguous sorted run storage: half-open `[lo, hi)` pairs, sorted,
/// non-overlapping, non-adjacent.
#[derive(Debug, Clone, Default)]
struct VecRuns {
    runs: Vec<(u32, u32)>,
    /// Completed-run hint: index into `runs` of the last merged run
    /// (stale values are safe: the fast path re-validates before use).
    hint: usize,
}

impl VecRuns {
    fn new() -> VecRuns {
        VecRuns::default()
    }

    fn insert_run(&mut self, r: GranuleRange) -> RunInsert {
        // Completed-run hint fast path: the common in-order insert touches
        // only the run merged into last time. Handled here when the insert
        // lands wholly inside it, or extends its tail without reaching the
        // next stored run — both cases absorb exactly that one run, so the
        // result is identical to the search below.
        if let Some(&(hlo, hhi)) = self.runs.get(self.hint) {
            if r.lo >= hlo && r.lo <= hhi {
                if r.hi <= hhi {
                    return RunInsert {
                        merged: GranuleRange::new(hlo, hhi),
                        absorbed: 1,
                        added: 0,
                    };
                }
                let clear_of_next = match self.runs.get(self.hint + 1) {
                    Some(&(nlo, _)) => r.hi < nlo, // `==` would coalesce: slow path
                    None => true,
                };
                if clear_of_next {
                    self.runs[self.hint].1 = r.hi;
                    return RunInsert {
                        merged: GranuleRange::new(hlo, r.hi),
                        absorbed: 1,
                        added: (r.hi - hhi) as u64,
                    };
                }
            }
        }
        let (mut lo, mut hi) = (r.lo, r.hi);
        // Find the first run whose end is >= lo (candidate for merging).
        let start = self.runs.partition_point(|&(_, rhi)| rhi < lo);
        let mut end = start;
        let mut covered: u64 = 0;
        while end < self.runs.len() && self.runs[end].0 <= hi {
            lo = lo.min(self.runs[end].0);
            hi = hi.max(self.runs[end].1);
            covered += (self.runs[end].1 - self.runs[end].0) as u64;
            end += 1;
        }
        let absorbed = end - start;
        if absorbed == 1 {
            // Common completion-processing case: extend one run in place —
            // no element shifting, no splice machinery.
            self.runs[start] = (lo, hi);
        } else if absorbed == 0 {
            // Disjoint insert: `Vec::insert` is already a reserve + one
            // memmove of the tail.
            self.runs.insert(start, (lo, hi));
        } else {
            // Bridging insert (≥2 runs coalesce, the batched-drain merge
            // shape): write the coalesced run in place and batch-shift
            // the tail left with one `copy_within` (a single memmove),
            // instead of `splice`'s per-element drain/relocate machinery.
            // The shift is still O(runs); the chunked backend exists for
            // phases where that dominates.
            self.runs[start] = (lo, hi);
            self.runs.copy_within(end.., start + 1);
            self.runs.truncate(self.runs.len() - (absorbed - 1));
        }
        self.hint = start;
        RunInsert {
            merged: GranuleRange::new(lo, hi),
            absorbed,
            added: (hi - lo) as u64 - covered,
        }
    }
}

// ----------------------------------------------------------------------
// ChunkedRuns: fixed-capacity chunks on a linked list
// ----------------------------------------------------------------------

/// Nil chunk-link sentinel.
const NIL: u32 = u32::MAX;

/// One storage chunk: up to `cap` sorted runs, a link to the next chunk
/// in index order, and the max-end summary (`runs.last().1`) that lets
/// lookups skip the chunk without touching its run payload. Live chunks
/// are never empty; freed chunks keep their `Vec` capacity for reuse.
#[derive(Debug, Clone)]
struct Chunk {
    runs: Vec<(u32, u32)>,
    next: u32,
    max_end: u32,
}

/// Chunked run storage: a slab of [`Chunk`]s threaded into a singly
/// linked list in ascending run order. Runs keep the same global
/// invariants as [`VecRuns`] (sorted, disjoint, non-adjacent — across
/// chunk boundaries too), so chunk boundaries are invisible to every
/// consumer. A full chunk splits in half B-tree-style; chunks drained by
/// a wide bridging insert are unlinked wholesale and recycled.
#[derive(Debug, Clone)]
struct ChunkedRuns {
    chunks: Vec<Chunk>,
    head: u32,
    free: Vec<u32>,
    /// Fixed run capacity per chunk (≥ 2).
    cap: usize,
    runs_total: usize,
    /// Completed-run hint: (chunk, slot) of the last merged run. Stale
    /// values are safe — a freed chunk is empty (guard fails) and a
    /// recycled one holds some other valid run, for which the fast-path
    /// bounds checks are equally sound.
    hint_chunk: u32,
    hint_slot: usize,
}

impl ChunkedRuns {
    fn new(chunk_runs: usize) -> ChunkedRuns {
        ChunkedRuns {
            chunks: Vec::new(),
            head: NIL,
            free: Vec::new(),
            cap: chunk_runs.max(2),
            runs_total: 0,
            hint_chunk: NIL,
            hint_slot: 0,
        }
    }

    fn alloc_chunk(&mut self) -> u32 {
        if let Some(i) = self.free.pop() {
            i
        } else {
            self.chunks.push(Chunk {
                runs: Vec::with_capacity(self.cap),
                next: NIL,
                max_end: 0,
            });
            (self.chunks.len() - 1) as u32
        }
    }

    fn free_chunk(&mut self, i: u32) {
        let ch = &mut self.chunks[i as usize];
        ch.runs.clear();
        ch.next = NIL;
        self.free.push(i);
    }

    /// Start of the run immediately after slot `s` of chunk `c`, if any.
    fn next_run_lo(&self, c: u32, s: usize) -> Option<u32> {
        let ch = &self.chunks[c as usize];
        if let Some(&(nlo, _)) = ch.runs.get(s + 1) {
            return Some(nlo);
        }
        // Live chunks are never empty, so the next chunk's first run is
        // the successor.
        (ch.next != NIL).then(|| self.chunks[ch.next as usize].runs[0].0)
    }

    fn runs_from(&self, after: u32) -> RunCursor<'_> {
        let mut cur = self.head;
        // Chunk summaries: max_end < after means every run in the chunk
        // ends at or before `after` (ends increase run to run).
        while cur != NIL && self.chunks[cur as usize].max_end <= after {
            cur = self.chunks[cur as usize].next;
        }
        let slot = if cur == NIL {
            0
        } else {
            self.chunks[cur as usize]
                .runs
                .partition_point(|&(_, rhi)| rhi <= after)
        };
        RunCursor::Chunked {
            chunks: &self.chunks,
            cur,
            slot,
        }
    }

    /// Insert `run` at slot `slot` of chunk `c`, splitting the chunk in
    /// half first when full. Returns the final (chunk, slot) of the run.
    fn insert_at(&mut self, c: u32, slot: usize, run: (u32, u32)) -> (u32, usize) {
        let (c, slot) = if self.chunks[c as usize].runs.len() < self.cap {
            (c, slot)
        } else {
            // B-tree-style split: keep the lower half here, move the
            // upper half into a fresh chunk linked right after.
            let half = self.cap / 2;
            let newc = self.alloc_chunk();
            let mut moved = std::mem::take(&mut self.chunks[newc as usize].runs);
            let ch = &mut self.chunks[c as usize];
            moved.extend(ch.runs.drain(half..));
            ch.max_end = ch.runs.last().expect("half >= 1").1;
            let next = ch.next;
            ch.next = newc;
            let upper = &mut self.chunks[newc as usize];
            upper.runs = moved;
            upper.next = next;
            upper.max_end = upper.runs.last().expect("cap - half >= 1").1;
            if slot <= half {
                (c, slot)
            } else {
                (newc, slot - half)
            }
        };
        let ch = &mut self.chunks[c as usize];
        ch.runs.insert(slot, run);
        ch.max_end = ch.runs.last().expect("just inserted").1;
        self.runs_total += 1;
        (c, slot)
    }

    fn insert_run(&mut self, r: GranuleRange) -> RunInsert {
        let (lo, hi) = (r.lo, r.hi);
        if self.head == NIL {
            let c = self.alloc_chunk();
            let ch = &mut self.chunks[c as usize];
            ch.runs.push((lo, hi));
            ch.max_end = hi;
            self.head = c;
            self.runs_total = 1;
            self.hint_chunk = c;
            self.hint_slot = 0;
            return RunInsert {
                merged: r,
                absorbed: 0,
                added: (hi - lo) as u64,
            };
        }
        // Completed-run hint fast path — same semantics as the Vec
        // backend: the insert lands inside the hinted run, or extends its
        // tail without reaching the run after it.
        if let Some(&(hlo, hhi)) = self
            .chunks
            .get(self.hint_chunk as usize)
            .and_then(|ch| ch.runs.get(self.hint_slot))
        {
            if lo >= hlo && lo <= hhi {
                if hi <= hhi {
                    return RunInsert {
                        merged: GranuleRange::new(hlo, hhi),
                        absorbed: 1,
                        added: 0,
                    };
                }
                let clear_of_next = match self.next_run_lo(self.hint_chunk, self.hint_slot) {
                    Some(nlo) => hi < nlo, // `==` would coalesce: slow path
                    None => true,
                };
                if clear_of_next {
                    let (hc, hs) = (self.hint_chunk, self.hint_slot);
                    let ch = &mut self.chunks[hc as usize];
                    ch.runs[hs].1 = hi;
                    if hs + 1 == ch.runs.len() {
                        ch.max_end = hi;
                    }
                    return RunInsert {
                        merged: GranuleRange::new(hlo, hi),
                        absorbed: 1,
                        added: (hi - hhi) as u64,
                    };
                }
            }
        }
        // Slow path. The scan may start at the hinted chunk instead of
        // the head when that is sound: if the hinted chunk's first run
        // starts at or before `lo`, every run in earlier chunks ends
        // strictly before that first run starts (non-adjacency), hence
        // strictly before `lo` — none of them can merge. Front-to-back
        // churn (the stripe/bridge pattern) then skips the whole prefix.
        let mut c = self.head;
        if let Some(ch) = self.chunks.get(self.hint_chunk as usize) {
            if ch.runs.first().is_some_and(|&(flo, _)| flo <= lo) {
                c = self.hint_chunk;
            }
        }
        // Skip chunks that end strictly before `lo` (cannot merge, not
        // even by adjacency), remembering the last one for appends.
        let mut last = NIL;
        while c != NIL && self.chunks[c as usize].max_end < lo {
            last = c;
            c = self.chunks[c as usize].next;
        }
        if c == NIL {
            // Past every stored run: append to the tail chunk.
            debug_assert!(last != NIL, "non-empty store has a tail chunk");
            let slot = self.chunks[last as usize].runs.len();
            let (hc, hs) = self.insert_at(last, slot, (lo, hi));
            self.hint_chunk = hc;
            self.hint_slot = hs;
            return RunInsert {
                merged: r,
                absorbed: 0,
                added: (hi - lo) as u64,
            };
        }
        let start = self.chunks[c as usize]
            .runs
            .partition_point(|&(_, rhi)| rhi < lo);
        debug_assert!(start < self.chunks[c as usize].runs.len());
        // Absorption scan: walk forward (across chunk boundaries) while
        // runs overlap or abut the growing merged span.
        let (mut new_lo, mut new_hi) = (lo, hi);
        let mut covered: u64 = 0;
        let mut absorbed = 0usize;
        let (mut ac, mut aslot) = (c, start);
        loop {
            if ac == NIL {
                break;
            }
            let ch = &self.chunks[ac as usize];
            let Some(&(rlo, rhi)) = ch.runs.get(aslot) else {
                ac = ch.next;
                aslot = 0;
                continue;
            };
            if rlo > new_hi {
                break;
            }
            new_lo = new_lo.min(rlo);
            new_hi = new_hi.max(rhi);
            covered += (rhi - rlo) as u64;
            absorbed += 1;
            aslot += 1;
        }
        if absorbed == 0 {
            // Disjoint insert before the run at (c, start).
            let (hc, hs) = self.insert_at(c, start, (lo, hi));
            self.hint_chunk = hc;
            self.hint_slot = hs;
            return RunInsert {
                merged: r,
                absorbed: 0,
                added: (hi - lo) as u64,
            };
        }
        // The first absorbed run is at (c, start): it becomes the merged
        // run; every other absorbed run is removed. Only the boundary
        // chunks are rewritten — fully absorbed chunks between them are
        // unlinked and recycled whole.
        if ac == c {
            let ch = &mut self.chunks[c as usize];
            ch.runs[start] = (new_lo, new_hi);
            ch.runs.drain(start + 1..aslot);
            ch.max_end = ch.runs.last().expect("merged run remains").1;
        } else {
            let after_c = {
                let ch = &mut self.chunks[c as usize];
                ch.runs[start] = (new_lo, new_hi);
                ch.runs.truncate(start + 1);
                // The merged run is now this chunk's last (it absorbed
                // everything after it here).
                ch.max_end = new_hi;
                ch.next
            };
            let mut n = after_c;
            while n != ac {
                let nn = self.chunks[n as usize].next;
                self.free_chunk(n);
                n = nn;
            }
            if ac != NIL {
                // Partially absorbed boundary chunk: shed the absorbed
                // prefix. It stays non-empty (the scan stopped at a
                // surviving run inside it).
                self.chunks[ac as usize].runs.drain(..aslot);
            }
            self.chunks[c as usize].next = ac;
        }
        self.runs_total = self.runs_total - absorbed + 1;
        self.hint_chunk = c;
        self.hint_slot = start;
        RunInsert {
            merged: GranuleRange::new(new_lo, new_hi),
            absorbed,
            added: (new_hi - new_lo) as u64 - covered,
        }
    }
}

/// Coalesce a sorted-or-unsorted list of granule indices into maximal
/// contiguous ranges, appended to `out` (which is *not* cleared). Used
/// when enablement counters release many successor granules in one
/// completion-processing step: the executive creates one description per
/// contiguous run rather than one per granule, and reuses both buffers
/// across events.
pub fn coalesce_indices_into(indices: &mut Vec<u32>, out: &mut Vec<GranuleRange>) {
    if indices.is_empty() {
        return;
    }
    indices.sort_unstable();
    indices.dedup();
    let mut lo = indices[0];
    let mut prev = indices[0];
    for &g in &indices[1..] {
        if g == prev + 1 {
            prev = g;
        } else {
            out.push(GranuleRange::new(lo, prev + 1));
            lo = g;
            prev = g;
        }
    }
    out.push(GranuleRange::new(lo, prev + 1));
}

/// Coalesce into a fresh vector. Convenience wrapper over
/// [`coalesce_indices_into`] for tests and cold paths.
pub fn coalesce_indices(indices: &mut Vec<u32>) -> Vec<GranuleRange> {
    let mut out = Vec::new();
    coalesce_indices_into(indices, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> GranuleRange {
        GranuleRange::new(lo, hi)
    }

    /// Every backend worth exercising: the Vec layout, a pathologically
    /// tiny chunk (every insert splits), and realistic chunk sizes.
    fn all_kinds() -> [RunStorageKind; 4] {
        [
            RunStorageKind::VecRuns,
            RunStorageKind::ChunkedRuns { chunk_runs: 2 },
            RunStorageKind::ChunkedRuns { chunk_runs: 4 },
            RunStorageKind::chunked(),
        ]
    }

    #[test]
    fn insert_and_contains() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(5, 10));
            assert!(s.contains(5), "{kind:?}");
            assert!(s.contains(9));
            assert!(!s.contains(10));
            assert!(!s.contains(4));
            assert_eq!(s.len(), 5);
        }
    }

    #[test]
    fn merges_adjacent() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(0, 5));
            s.insert(r(5, 10));
            assert_eq!(s.run_count(), 1, "{kind:?}");
            assert!(s.contains_range(r(0, 10)));
        }
    }

    #[test]
    fn merges_overlapping_and_bridging() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(0, 3));
            s.insert(r(6, 9));
            s.insert(r(12, 15));
            assert_eq!(s.run_count(), 3, "{kind:?}");
            s.insert(r(2, 13)); // bridges all three
            assert_eq!(s.run_count(), 1);
            assert_eq!(s.len(), 15);
        }
    }

    #[test]
    fn out_of_order_inserts() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(20, 30));
            s.insert(r(0, 5));
            s.insert(r(10, 12));
            assert_eq!(s.run_count(), 3, "{kind:?}");
            assert!(s.contains(25));
            assert!(s.contains(0));
            assert!(!s.contains(7));
        }
    }

    #[test]
    fn contains_range_checks_full_coverage() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(0, 5));
            s.insert(r(7, 10));
            assert!(s.contains_range(r(1, 4)), "{kind:?}");
            assert!(!s.contains_range(r(3, 8)));
            assert!(s.contains_range(r(7, 10)));
            assert!(s.contains_range(r(2, 2))); // empty range trivially covered
        }
    }

    #[test]
    fn gaps_in_window() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(2, 4));
            s.insert(r(6, 8));
            let gaps = s.gaps_in(r(0, 10));
            assert_eq!(gaps, vec![r(0, 2), r(4, 6), r(8, 10)], "{kind:?}");
            let gaps2 = s.gaps_in(r(3, 7));
            assert_eq!(gaps2, vec![r(4, 6)]);
            let mut full = RangeSet::with_storage(kind);
            full.insert(r(0, 10));
            assert!(full.gaps_in(r(0, 10)).is_empty());
        }
    }

    #[test]
    fn covered_in_window() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(2, 4));
            s.insert(r(6, 8));
            assert_eq!(s.covered_in(r(3, 7)), vec![r(3, 4), r(6, 7)], "{kind:?}");
            assert_eq!(s.covered_in(r(0, 2)), vec![]);
        }
    }

    #[test]
    fn coalesce_runs() {
        let mut v = vec![5, 1, 2, 3, 9, 8, 20];
        let runs = coalesce_indices(&mut v);
        assert_eq!(runs, vec![r(1, 4), r(5, 6), r(8, 10), r(20, 21)]);
        assert!(coalesce_indices(&mut Vec::new()).is_empty());
    }

    #[test]
    fn coalesce_dedups() {
        let mut v = vec![3, 3, 4, 4, 5];
        let runs = coalesce_indices(&mut v);
        assert_eq!(runs, vec![r(3, 6)]);
    }

    #[test]
    fn insert_run_reports_merge_shape() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            let i = s.insert_run(r(5, 10));
            assert_eq!(i.merged, r(5, 10), "{kind:?}");
            assert_eq!(i.absorbed, 0);
            assert_eq!(i.added, 5);

            // extend one run in place
            let i = s.insert_run(r(10, 12));
            assert_eq!(i.merged, r(5, 12));
            assert_eq!(i.absorbed, 1);
            assert_eq!(i.added, 2);

            // bridge two runs
            s.insert(r(20, 25));
            let i = s.insert_run(r(12, 20));
            assert_eq!(i.merged, r(5, 25));
            assert_eq!(i.absorbed, 2);
            assert_eq!(i.added, 8);
            assert_eq!(s.run_count(), 1);

            // already covered: nothing added
            let i = s.insert_run(r(6, 7));
            assert_eq!(i.merged, r(5, 25));
            assert_eq!(i.absorbed, 1);
            assert_eq!(i.added, 0);
        }
    }

    #[test]
    fn wide_bridging_insert_batch_shifts_the_tail() {
        // Exercise the wide-absorption path: one insert absorbing many
        // runs with a long surviving tail behind them (whole-chunk
        // unlinking on the chunked backend, copy_within on the Vec one).
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            for k in 0..100u32 {
                s.insert(r(k * 10, k * 10 + 4));
            }
            assert_eq!(s.run_count(), 100, "{kind:?}");
            let i = s.insert_run(r(100, 196));
            assert_eq!(i.absorbed, 10);
            assert_eq!(i.merged, r(100, 196));
            assert_eq!(i.added, 96 - 40);
            assert_eq!(s.run_count(), 91);
            // head, merged middle, and shifted tail all intact
            assert!(s.contains_range(r(90, 94)));
            assert!(s.contains_range(r(100, 196)));
            assert!(!s.contains(196));
            for k in 20..100u32 {
                assert!(s.contains_range(r(k * 10, k * 10 + 4)), "tail run {k}");
                assert!(!s.contains(k * 10 + 4));
            }
            assert_eq!(s.len(), 400 + 56);
        }
    }

    #[test]
    fn subtract_into_appends_without_clearing() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(2, 4));
            let mut out = vec![r(0, 1)];
            s.subtract_into(r(0, 6), &mut out);
            assert_eq!(out, vec![r(0, 1), r(0, 2), r(4, 6)], "{kind:?}");
        }
    }

    #[test]
    fn subtract_into_empty_set_fast_path() {
        // Empty subtrahend: the whole window is one gap, appended without
        // disturbing what the caller already accumulated in the scratch
        // buffer...
        for kind in all_kinds() {
            let s = RangeSet::with_storage(kind);
            let mut out = vec![r(90, 95)];
            s.subtract_into(r(10, 20), &mut out);
            assert_eq!(out, vec![r(90, 95), r(10, 20)], "{kind:?}");
            // ...and an empty window leaves the buffer untouched entirely,
            // for empty and non-empty sets alike.
            let mut untouched = vec![r(1, 2)];
            s.subtract_into(r(5, 5), &mut untouched);
            assert_eq!(untouched, vec![r(1, 2)]);
            let mut s2 = RangeSet::with_storage(kind);
            s2.insert(r(0, 4));
            s2.subtract_into(r(7, 7), &mut untouched);
            assert_eq!(untouched, vec![r(1, 2)]);
        }
    }

    #[test]
    fn covered_in_iter_matches_covered_in() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(2, 4));
            s.insert(r(6, 8));
            s.insert(r(10, 20));
            for win in [r(0, 25), r(3, 7), r(4, 6), r(8, 10), r(5, 5)] {
                let a: Vec<GranuleRange> = s.covered_in_iter(win).collect();
                assert_eq!(a, s.covered_in(win), "window {win} {kind:?}");
            }
        }
    }

    #[test]
    fn with_capacity_starts_empty() {
        let s = RangeSet::with_capacity(16);
        assert!(s.is_empty());
        assert_eq!(s.run_count(), 0);
        assert_eq!(s.storage_kind(), RunStorageKind::VecRuns);
    }

    #[test]
    fn storage_kind_round_trips() {
        assert_eq!(RangeSet::new().storage_kind(), RunStorageKind::VecRuns);
        for kind in all_kinds() {
            let reported = RangeSet::with_storage(kind).storage_kind();
            match kind {
                RunStorageKind::VecRuns => assert_eq!(reported, kind),
                // sub-minimum chunk capacities clamp to 2
                RunStorageKind::ChunkedRuns { chunk_runs } => assert_eq!(
                    reported,
                    RunStorageKind::ChunkedRuns {
                        chunk_runs: chunk_runs.max(2)
                    }
                ),
            }
        }
        let tiny = RangeSet::with_storage(RunStorageKind::ChunkedRuns { chunk_runs: 0 });
        assert_eq!(
            tiny.storage_kind(),
            RunStorageKind::ChunkedRuns { chunk_runs: 2 }
        );
    }

    #[test]
    fn hint_fast_path_in_order_extends() {
        // The identity-rundown pattern: strictly in-order single-granule
        // completions. Every insert after the first must hit the hint.
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            for g in 0..1000u32 {
                let i = s.insert_run(r(g, g + 1));
                assert_eq!(i.merged, r(0, g + 1), "{kind:?}");
                assert_eq!(i.added, 1);
                assert_eq!(i.absorbed, usize::from(g > 0));
            }
            assert_eq!(s.run_count(), 1);
            assert_eq!(s.len(), 1000);
        }
    }

    #[test]
    fn hint_does_not_break_bridging_insert() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(0, 5)); // hint -> run 0
            s.insert(r(10, 15)); // hint -> run 1
            s.insert(r(4, 6)); // behind the hinted run: slow path
            assert_eq!(s.run_count(), 2, "{kind:?}");
            assert!(s.contains_range(r(0, 6)));
            // adjacent-to-next must coalesce, not stop at the hint run
            let mut t = RangeSet::with_storage(kind);
            t.insert(r(0, 5));
            t.insert(r(5, 10)); // hint on the merged run
            t.insert(r(12, 20));
            let i = t.insert_run(r(10, 12)); // extends hint run right up to next
            assert_eq!(i.merged, r(0, 20));
            assert_eq!(i.absorbed, 2);
            assert_eq!(t.run_count(), 1);
        }
    }

    #[test]
    fn neither_hint_nor_layout_is_part_of_equality() {
        let mut a = RangeSet::new();
        a.insert(r(0, 5));
        a.insert(r(10, 15));
        let mut b = RangeSet::new();
        b.insert(r(10, 15));
        b.insert(r(0, 5));
        assert_eq!(a, b, "same runs, different hint history");
        // chunk boundaries are invisible too: a chunked set with the same
        // logical runs equals the Vec-backed one, whatever the chunk size
        // and however the inserts were ordered.
        for chunk_runs in [2usize, 3, 32] {
            let mut c = RangeSet::with_storage(RunStorageKind::ChunkedRuns { chunk_runs });
            c.insert(r(12, 15));
            c.insert(r(0, 3));
            c.insert(r(10, 12));
            c.insert(r(3, 5));
            assert_eq!(a, c, "chunk_runs={chunk_runs}");
            assert_eq!(c, b);
            c.insert(r(20, 21));
            assert_ne!(a, c, "different coverage must not compare equal");
        }
    }

    #[test]
    fn hint_survives_interleaved_queries() {
        // Mixed access: inserts out of order, with covered/stale hints.
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            s.insert(r(50, 60));
            s.insert(r(0, 10));
            let i = s.insert_run(r(55, 58)); // inside the now-shifted run
            assert_eq!(i.merged, r(50, 60), "{kind:?}");
            assert_eq!(i.added, 0);
            s.insert(r(20, 30));
            let i = s.insert_run(r(25, 35)); // extend middle run
            assert_eq!(i.merged, r(20, 35));
            assert_eq!(i.added, 5);
            assert_eq!(s.run_count(), 3);
        }
    }

    #[test]
    fn clear_empties_and_reuses_both_backends() {
        for kind in all_kinds() {
            let mut s = RangeSet::with_storage(kind);
            for k in 0..40u32 {
                s.insert(r(k * 10, k * 10 + 4));
            }
            assert_eq!(s.run_count(), 40, "{kind:?}");
            s.clear();
            assert!(s.is_empty());
            assert_eq!(s.run_count(), 0);
            assert_eq!(s.len(), 0);
            assert!(s.gaps_in(r(0, 50)) == vec![r(0, 50)]);
            assert_eq!(
                s.storage_kind(),
                RangeSet::with_storage(kind).storage_kind()
            );
            // a cleared set behaves like a fresh one
            s.insert(r(5, 9));
            s.insert(r(9, 12));
            assert_eq!(s.run_count(), 1);
            assert!(s.contains_range(r(5, 12)));
            assert!(!s.contains(12));
        }
    }

    #[test]
    fn chunk_splits_keep_runs_sorted_and_disjoint() {
        // Disjoint inserts in an order that forces repeated chunk splits
        // at several capacities; the logical view must match a Vec set.
        for chunk_runs in [2usize, 3, 4, 5] {
            let kind = RunStorageKind::ChunkedRuns { chunk_runs };
            let mut chunked = RangeSet::with_storage(kind);
            let mut vec = RangeSet::new();
            // interleaved front/back/middle insertions, all disjoint
            for k in 0..64u32 {
                let lo = (k % 2) * 500 + (k / 2) * 7;
                chunked.insert(r(lo, lo + 3));
                vec.insert(r(lo, lo + 3));
            }
            assert_eq!(chunked, vec, "chunk_runs={chunk_runs}");
            assert_eq!(chunked.run_count(), vec.run_count());
            assert_eq!(chunked.len(), vec.len());
            let runs: Vec<GranuleRange> = chunked.iter_runs().collect();
            for w in runs.windows(2) {
                assert!(w[0].hi < w[1].lo, "sorted, disjoint, non-adjacent");
            }
        }
    }

    #[test]
    fn chunked_wide_bridge_unlinks_whole_chunks_and_recycles() {
        // A bridge spanning many chunks must leave a single coalesced run
        // and keep working afterwards (recycled chunks get reused).
        let kind = RunStorageKind::ChunkedRuns { chunk_runs: 4 };
        let mut s = RangeSet::with_storage(kind);
        for k in 0..200u32 {
            s.insert(r(k * 10, k * 10 + 4));
        }
        assert_eq!(s.run_count(), 200);
        let i = s.insert_run(r(0, 1996));
        assert_eq!(i.absorbed, 200);
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 1996);
        // refragment: recycled chunks must behave like fresh ones
        for k in 0..50u32 {
            s.insert(r(3000 + k * 10, 3000 + k * 10 + 4));
        }
        assert_eq!(s.run_count(), 51);
        assert!(s.contains_range(r(0, 1996)));
        assert!(s.contains_range(r(3240, 3244)));
        assert!(!s.contains(2000));
    }
}
