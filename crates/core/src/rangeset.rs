//! A set of granule indices kept as sorted, disjoint, coalesced ranges.
//!
//! The executive uses range sets to track which granules of a phase have
//! completed — the paper's descriptions are "large, contiguous collections
//! of granules ... split apart as necessary ... and then merged back into
//! single descriptions when the work was completed". `RangeSet::insert` is
//! that merge.

use crate::ids::GranuleRange;

/// Sorted, disjoint, coalesced set of `u32` indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    runs: Vec<(u32, u32)>, // half-open [lo, hi), sorted, non-overlapping, non-adjacent
}

impl RangeSet {
    /// Empty set.
    pub fn new() -> RangeSet {
        RangeSet { runs: Vec::new() }
    }

    /// Number of stored runs (for diagnostics; merging keeps this small).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of indices covered.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|&(lo, hi)| (hi - lo) as u64).sum()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// True when `g` is in the set.
    pub fn contains(&self, g: u32) -> bool {
        match self.runs.binary_search_by(|&(lo, _)| lo.cmp(&g)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => g < self.runs[i - 1].1,
        }
    }

    /// True when the whole range `[lo, hi)` is covered.
    pub fn contains_range(&self, r: GranuleRange) -> bool {
        if r.is_empty() {
            return true;
        }
        match self.runs.binary_search_by(|&(lo, _)| lo.cmp(&r.lo)) {
            Ok(i) => self.runs[i].1 >= r.hi,
            Err(0) => false,
            Err(i) => self.runs[i - 1].1 >= r.hi,
        }
    }

    /// Insert `[lo, hi)`, merging with any overlapping or adjacent runs.
    /// Inserting an already-covered or empty range is a no-op.
    pub fn insert(&mut self, r: GranuleRange) {
        if r.is_empty() {
            return;
        }
        let (mut lo, mut hi) = (r.lo, r.hi);
        // Find the first run whose end is >= lo (candidate for merging).
        let start = self.runs.partition_point(|&(_, rhi)| rhi < lo);
        let mut end = start;
        while end < self.runs.len() && self.runs[end].0 <= hi {
            lo = lo.min(self.runs[end].0);
            hi = hi.max(self.runs[end].1);
            end += 1;
        }
        self.runs.splice(start..end, std::iter::once((lo, hi)));
    }

    /// Iterate the stored runs as `GranuleRange`s.
    pub fn iter_runs(&self) -> impl Iterator<Item = GranuleRange> + '_ {
        self.runs.iter().map(|&(lo, hi)| GranuleRange::new(lo, hi))
    }

    /// Iterate the *gaps* (uncovered sub-ranges) inside the window
    /// `[win.lo, win.hi)`.
    pub fn gaps_in(&self, win: GranuleRange) -> Vec<GranuleRange> {
        let mut gaps = Vec::new();
        if win.is_empty() {
            return gaps;
        }
        let mut cursor = win.lo;
        for &(lo, hi) in &self.runs {
            if hi <= cursor {
                continue;
            }
            if lo >= win.hi {
                break;
            }
            if lo > cursor {
                gaps.push(GranuleRange::new(cursor, lo.min(win.hi)));
            }
            cursor = cursor.max(hi);
            if cursor >= win.hi {
                break;
            }
        }
        if cursor < win.hi {
            gaps.push(GranuleRange::new(cursor, win.hi));
        }
        gaps
    }

    /// The covered sub-ranges intersecting the window.
    pub fn covered_in(&self, win: GranuleRange) -> Vec<GranuleRange> {
        let mut out = Vec::new();
        for &(lo, hi) in &self.runs {
            if hi <= win.lo {
                continue;
            }
            if lo >= win.hi {
                break;
            }
            out.push(GranuleRange::new(lo.max(win.lo), hi.min(win.hi)));
        }
        out
    }
}

/// Coalesce a sorted-or-unsorted list of granule indices into maximal
/// contiguous ranges. Used when enablement counters release many successor
/// granules in one completion-processing step: the executive creates one
/// description per contiguous run rather than one per granule.
pub fn coalesce_indices(indices: &mut Vec<u32>) -> Vec<GranuleRange> {
    if indices.is_empty() {
        return Vec::new();
    }
    indices.sort_unstable();
    indices.dedup();
    let mut out = Vec::new();
    let mut lo = indices[0];
    let mut prev = indices[0];
    for &g in &indices[1..] {
        if g == prev + 1 {
            prev = g;
        } else {
            out.push(GranuleRange::new(lo, prev + 1));
            lo = g;
            prev = g;
        }
    }
    out.push(GranuleRange::new(lo, prev + 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> GranuleRange {
        GranuleRange::new(lo, hi)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = RangeSet::new();
        s.insert(r(5, 10));
        assert!(s.contains(5));
        assert!(s.contains(9));
        assert!(!s.contains(10));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn merges_adjacent() {
        let mut s = RangeSet::new();
        s.insert(r(0, 5));
        s.insert(r(5, 10));
        assert_eq!(s.run_count(), 1);
        assert!(s.contains_range(r(0, 10)));
    }

    #[test]
    fn merges_overlapping_and_bridging() {
        let mut s = RangeSet::new();
        s.insert(r(0, 3));
        s.insert(r(6, 9));
        s.insert(r(12, 15));
        assert_eq!(s.run_count(), 3);
        s.insert(r(2, 13)); // bridges all three
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 15);
    }

    #[test]
    fn out_of_order_inserts() {
        let mut s = RangeSet::new();
        s.insert(r(20, 30));
        s.insert(r(0, 5));
        s.insert(r(10, 12));
        assert_eq!(s.run_count(), 3);
        assert!(s.contains(25));
        assert!(s.contains(0));
        assert!(!s.contains(7));
    }

    #[test]
    fn contains_range_checks_full_coverage() {
        let mut s = RangeSet::new();
        s.insert(r(0, 5));
        s.insert(r(7, 10));
        assert!(s.contains_range(r(1, 4)));
        assert!(!s.contains_range(r(3, 8)));
        assert!(s.contains_range(r(7, 10)));
        assert!(s.contains_range(r(2, 2))); // empty range trivially covered
    }

    #[test]
    fn gaps_in_window() {
        let mut s = RangeSet::new();
        s.insert(r(2, 4));
        s.insert(r(6, 8));
        let gaps = s.gaps_in(r(0, 10));
        assert_eq!(gaps, vec![r(0, 2), r(4, 6), r(8, 10)]);
        let gaps2 = s.gaps_in(r(3, 7));
        assert_eq!(gaps2, vec![r(4, 6)]);
        let mut full = RangeSet::new();
        full.insert(r(0, 10));
        assert!(full.gaps_in(r(0, 10)).is_empty());
    }

    #[test]
    fn covered_in_window() {
        let mut s = RangeSet::new();
        s.insert(r(2, 4));
        s.insert(r(6, 8));
        assert_eq!(s.covered_in(r(3, 7)), vec![r(3, 4), r(6, 7)]);
        assert_eq!(s.covered_in(r(0, 2)), vec![]);
    }

    #[test]
    fn coalesce_runs() {
        let mut v = vec![5, 1, 2, 3, 9, 8, 20];
        let runs = coalesce_indices(&mut v);
        assert_eq!(runs, vec![r(1, 4), r(5, 6), r(8, 10), r(20, 21)]);
        assert!(coalesce_indices(&mut Vec::new()).is_empty());
    }

    #[test]
    fn coalesce_dedups() {
        let mut v = vec![3, 3, 4, 4, 5];
        let runs = coalesce_indices(&mut v);
        assert_eq!(runs, vec![r(3, 6)]);
    }
}
