//! A set of granule indices kept as sorted, disjoint, coalesced ranges.
//!
//! The executive uses range sets to track which granules of a phase have
//! completed — the paper's descriptions are "large, contiguous collections
//! of granules ... split apart as necessary ... and then merged back into
//! single descriptions when the work was completed". `RangeSet::insert` is
//! that merge.

use crate::ids::GranuleRange;

/// Sorted, disjoint, coalesced set of `u32` indices.
///
/// Carries a one-element **completed-run hint**: the index of the run the
/// last [`RangeSet::insert_run`] merged into. Identity-mapped phases
/// complete granules almost in order, so the overwhelmingly common insert
/// extends that same run — the hint turns the binary search into an O(1)
/// bounds check plus an in-place extend. The hint is pure acceleration
/// state: it never changes results, and equality ignores it.
#[derive(Debug, Clone, Default)]
pub struct RangeSet {
    runs: Vec<(u32, u32)>, // half-open [lo, hi), sorted, non-overlapping, non-adjacent
    /// Index into `runs` of the last merged run (stale values are safe:
    /// the fast path re-validates before use).
    hint: usize,
}

impl PartialEq for RangeSet {
    fn eq(&self, other: &RangeSet) -> bool {
        self.runs == other.runs // the hint is not part of the value
    }
}

impl Eq for RangeSet {}

/// What [`RangeSet::insert_run`] did: the coalesced run that now covers the
/// inserted range, how many pre-existing runs it swallowed, and how many
/// indices were newly added. Lets completion processing merge a range and
/// learn the merge shape in one pass, instead of re-querying the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunInsert {
    /// The single stored run that contains the inserted range after
    /// coalescing.
    pub merged: GranuleRange,
    /// Number of previously stored runs merged into `merged` (0 means the
    /// inserted range was disjoint from — and non-adjacent to — everything).
    pub absorbed: usize,
    /// Indices newly covered by this insert (0 when already fully covered).
    pub added: u64,
}

impl RangeSet {
    /// Empty set.
    #[inline]
    pub fn new() -> RangeSet {
        RangeSet {
            runs: Vec::new(),
            hint: 0,
        }
    }

    /// Empty set with room for `cap` runs before reallocating.
    #[inline]
    pub fn with_capacity(cap: usize) -> RangeSet {
        RangeSet {
            runs: Vec::with_capacity(cap),
            hint: 0,
        }
    }

    /// Number of stored runs (for diagnostics; merging keeps this small).
    #[inline]
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total number of indices covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.runs.iter().map(|&(lo, hi)| (hi - lo) as u64).sum()
    }

    /// True when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// True when `g` is in the set.
    #[inline]
    pub fn contains(&self, g: u32) -> bool {
        match self.runs.binary_search_by(|&(lo, _)| lo.cmp(&g)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => g < self.runs[i - 1].1,
        }
    }

    /// True when the whole range `[lo, hi)` is covered.
    #[inline]
    pub fn contains_range(&self, r: GranuleRange) -> bool {
        if r.is_empty() {
            return true;
        }
        match self.runs.binary_search_by(|&(lo, _)| lo.cmp(&r.lo)) {
            Ok(i) => self.runs[i].1 >= r.hi,
            Err(0) => false,
            Err(i) => self.runs[i - 1].1 >= r.hi,
        }
    }

    /// Insert `[lo, hi)`, merging with any overlapping or adjacent runs.
    /// Inserting an already-covered or empty range is a no-op.
    #[inline]
    pub fn insert(&mut self, r: GranuleRange) {
        if !r.is_empty() {
            let _ = self.insert_run(r);
        }
    }

    /// Insert `[lo, hi)` and report the merge: the coalesced run now
    /// covering it, how many stored runs were absorbed, and how many
    /// indices were newly added. `r` must be non-empty (the executive
    /// never merges an empty completion; use [`RangeSet::insert`] when an
    /// empty range may flow through).
    pub fn insert_run(&mut self, r: GranuleRange) -> RunInsert {
        debug_assert!(!r.is_empty(), "insert_run of empty range");
        // Completed-run hint fast path: the common in-order insert touches
        // only the run merged into last time. Handled here when the insert
        // lands wholly inside it, or extends its tail without reaching the
        // next stored run — both cases absorb exactly that one run, so the
        // result is identical to the search below.
        if let Some(&(hlo, hhi)) = self.runs.get(self.hint) {
            if r.lo >= hlo && r.lo <= hhi {
                if r.hi <= hhi {
                    return RunInsert {
                        merged: GranuleRange::new(hlo, hhi),
                        absorbed: 1,
                        added: 0,
                    };
                }
                let clear_of_next = match self.runs.get(self.hint + 1) {
                    Some(&(nlo, _)) => r.hi < nlo, // `==` would coalesce: slow path
                    None => true,
                };
                if clear_of_next {
                    self.runs[self.hint].1 = r.hi;
                    return RunInsert {
                        merged: GranuleRange::new(hlo, r.hi),
                        absorbed: 1,
                        added: (r.hi - hhi) as u64,
                    };
                }
            }
        }
        let (mut lo, mut hi) = (r.lo, r.hi);
        // Find the first run whose end is >= lo (candidate for merging).
        let start = self.runs.partition_point(|&(_, rhi)| rhi < lo);
        let mut end = start;
        let mut covered: u64 = 0;
        while end < self.runs.len() && self.runs[end].0 <= hi {
            lo = lo.min(self.runs[end].0);
            hi = hi.max(self.runs[end].1);
            covered += (self.runs[end].1 - self.runs[end].0) as u64;
            end += 1;
        }
        let absorbed = end - start;
        if absorbed == 1 {
            // Common completion-processing case: extend one run in place —
            // no element shifting, no splice machinery.
            self.runs[start] = (lo, hi);
        } else if absorbed == 0 {
            // Disjoint insert: `Vec::insert` is already a reserve + one
            // memmove of the tail.
            self.runs.insert(start, (lo, hi));
        } else {
            // Bridging insert (≥2 runs coalesce, the batched-drain merge
            // shape): write the coalesced run in place and batch-shift
            // the tail left with one `copy_within` (a single memmove),
            // instead of `splice`'s per-element drain/relocate machinery
            // — the dominant cost of `rangeset_churn/1e6` at high
            // fragmentation. A chunked/tree layout would remove the
            // O(runs) shift entirely; this is the cheap guard until that
            // lands.
            self.runs[start] = (lo, hi);
            self.runs.copy_within(end.., start + 1);
            self.runs.truncate(self.runs.len() - (absorbed - 1));
        }
        self.hint = start;
        RunInsert {
            merged: GranuleRange::new(lo, hi),
            absorbed,
            added: (hi - lo) as u64 - covered,
        }
    }

    /// Iterate the stored runs as `GranuleRange`s.
    #[inline]
    pub fn iter_runs(&self) -> impl Iterator<Item = GranuleRange> + '_ {
        self.runs.iter().map(|&(lo, hi)| GranuleRange::new(lo, hi))
    }

    /// Append the *gaps* (uncovered sub-ranges) inside the window
    /// `[win.lo, win.hi)` to `out` — the set-subtraction `win − self`,
    /// written into a caller-reused buffer so the steady-state release
    /// path never allocates. `out` is *not* cleared first.
    pub fn subtract_into(&self, win: GranuleRange, out: &mut Vec<GranuleRange>) {
        if win.is_empty() {
            return;
        }
        let mut cursor = win.lo;
        let start = self.runs.partition_point(|&(_, rhi)| rhi <= win.lo);
        for &(lo, hi) in &self.runs[start..] {
            if lo >= win.hi {
                break;
            }
            if lo > cursor {
                out.push(GranuleRange::new(cursor, lo.min(win.hi)));
            }
            cursor = cursor.max(hi);
            if cursor >= win.hi {
                break;
            }
        }
        if cursor < win.hi {
            out.push(GranuleRange::new(cursor, win.hi));
        }
    }

    /// The gaps inside the window, as a fresh vector. Convenience wrapper
    /// over [`RangeSet::subtract_into`] for tests and cold paths.
    pub fn gaps_in(&self, win: GranuleRange) -> Vec<GranuleRange> {
        let mut gaps = Vec::new();
        self.subtract_into(win, &mut gaps);
        gaps
    }

    /// Iterate the covered sub-ranges intersecting the window, without
    /// materializing them.
    pub fn covered_in_iter(&self, win: GranuleRange) -> impl Iterator<Item = GranuleRange> + '_ {
        let start = self.runs.partition_point(|&(_, rhi)| rhi <= win.lo);
        self.runs[start..]
            .iter()
            .take_while(move |&&(lo, _)| lo < win.hi)
            .filter_map(move |&(lo, hi)| {
                let l = lo.max(win.lo);
                let h = hi.min(win.hi);
                (l < h).then(|| GranuleRange::new(l, h))
            })
    }

    /// The covered sub-ranges intersecting the window, as a fresh vector.
    /// Convenience wrapper over [`RangeSet::covered_in_iter`].
    pub fn covered_in(&self, win: GranuleRange) -> Vec<GranuleRange> {
        self.covered_in_iter(win).collect()
    }
}

/// Coalesce a sorted-or-unsorted list of granule indices into maximal
/// contiguous ranges, appended to `out` (which is *not* cleared). Used
/// when enablement counters release many successor granules in one
/// completion-processing step: the executive creates one description per
/// contiguous run rather than one per granule, and reuses both buffers
/// across events.
pub fn coalesce_indices_into(indices: &mut Vec<u32>, out: &mut Vec<GranuleRange>) {
    if indices.is_empty() {
        return;
    }
    indices.sort_unstable();
    indices.dedup();
    let mut lo = indices[0];
    let mut prev = indices[0];
    for &g in &indices[1..] {
        if g == prev + 1 {
            prev = g;
        } else {
            out.push(GranuleRange::new(lo, prev + 1));
            lo = g;
            prev = g;
        }
    }
    out.push(GranuleRange::new(lo, prev + 1));
}

/// Coalesce into a fresh vector. Convenience wrapper over
/// [`coalesce_indices_into`] for tests and cold paths.
pub fn coalesce_indices(indices: &mut Vec<u32>) -> Vec<GranuleRange> {
    let mut out = Vec::new();
    coalesce_indices_into(indices, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: u32, hi: u32) -> GranuleRange {
        GranuleRange::new(lo, hi)
    }

    #[test]
    fn insert_and_contains() {
        let mut s = RangeSet::new();
        s.insert(r(5, 10));
        assert!(s.contains(5));
        assert!(s.contains(9));
        assert!(!s.contains(10));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn merges_adjacent() {
        let mut s = RangeSet::new();
        s.insert(r(0, 5));
        s.insert(r(5, 10));
        assert_eq!(s.run_count(), 1);
        assert!(s.contains_range(r(0, 10)));
    }

    #[test]
    fn merges_overlapping_and_bridging() {
        let mut s = RangeSet::new();
        s.insert(r(0, 3));
        s.insert(r(6, 9));
        s.insert(r(12, 15));
        assert_eq!(s.run_count(), 3);
        s.insert(r(2, 13)); // bridges all three
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 15);
    }

    #[test]
    fn out_of_order_inserts() {
        let mut s = RangeSet::new();
        s.insert(r(20, 30));
        s.insert(r(0, 5));
        s.insert(r(10, 12));
        assert_eq!(s.run_count(), 3);
        assert!(s.contains(25));
        assert!(s.contains(0));
        assert!(!s.contains(7));
    }

    #[test]
    fn contains_range_checks_full_coverage() {
        let mut s = RangeSet::new();
        s.insert(r(0, 5));
        s.insert(r(7, 10));
        assert!(s.contains_range(r(1, 4)));
        assert!(!s.contains_range(r(3, 8)));
        assert!(s.contains_range(r(7, 10)));
        assert!(s.contains_range(r(2, 2))); // empty range trivially covered
    }

    #[test]
    fn gaps_in_window() {
        let mut s = RangeSet::new();
        s.insert(r(2, 4));
        s.insert(r(6, 8));
        let gaps = s.gaps_in(r(0, 10));
        assert_eq!(gaps, vec![r(0, 2), r(4, 6), r(8, 10)]);
        let gaps2 = s.gaps_in(r(3, 7));
        assert_eq!(gaps2, vec![r(4, 6)]);
        let mut full = RangeSet::new();
        full.insert(r(0, 10));
        assert!(full.gaps_in(r(0, 10)).is_empty());
    }

    #[test]
    fn covered_in_window() {
        let mut s = RangeSet::new();
        s.insert(r(2, 4));
        s.insert(r(6, 8));
        assert_eq!(s.covered_in(r(3, 7)), vec![r(3, 4), r(6, 7)]);
        assert_eq!(s.covered_in(r(0, 2)), vec![]);
    }

    #[test]
    fn coalesce_runs() {
        let mut v = vec![5, 1, 2, 3, 9, 8, 20];
        let runs = coalesce_indices(&mut v);
        assert_eq!(runs, vec![r(1, 4), r(5, 6), r(8, 10), r(20, 21)]);
        assert!(coalesce_indices(&mut Vec::new()).is_empty());
    }

    #[test]
    fn coalesce_dedups() {
        let mut v = vec![3, 3, 4, 4, 5];
        let runs = coalesce_indices(&mut v);
        assert_eq!(runs, vec![r(3, 6)]);
    }

    #[test]
    fn insert_run_reports_merge_shape() {
        let mut s = RangeSet::new();
        let i = s.insert_run(r(5, 10));
        assert_eq!(i.merged, r(5, 10));
        assert_eq!(i.absorbed, 0);
        assert_eq!(i.added, 5);

        // extend one run in place
        let i = s.insert_run(r(10, 12));
        assert_eq!(i.merged, r(5, 12));
        assert_eq!(i.absorbed, 1);
        assert_eq!(i.added, 2);

        // bridge two runs
        s.insert(r(20, 25));
        let i = s.insert_run(r(12, 20));
        assert_eq!(i.merged, r(5, 25));
        assert_eq!(i.absorbed, 2);
        assert_eq!(i.added, 8);
        assert_eq!(s.run_count(), 1);

        // already covered: nothing added
        let i = s.insert_run(r(6, 7));
        assert_eq!(i.merged, r(5, 25));
        assert_eq!(i.absorbed, 1);
        assert_eq!(i.added, 0);
    }

    #[test]
    fn wide_bridging_insert_batch_shifts_the_tail() {
        // Exercise the copy_within shift: one insert absorbing many runs
        // with a long surviving tail behind them.
        let mut s = RangeSet::new();
        for k in 0..100u32 {
            s.insert(r(k * 10, k * 10 + 4));
        }
        assert_eq!(s.run_count(), 100);
        let i = s.insert_run(r(100, 196));
        assert_eq!(i.absorbed, 10);
        assert_eq!(i.merged, r(100, 196));
        assert_eq!(i.added, 96 - 40);
        assert_eq!(s.run_count(), 91);
        // head, merged middle, and shifted tail all intact
        assert!(s.contains_range(r(90, 94)));
        assert!(s.contains_range(r(100, 196)));
        assert!(!s.contains(196));
        for k in 20..100u32 {
            assert!(s.contains_range(r(k * 10, k * 10 + 4)), "tail run {k}");
            assert!(!s.contains(k * 10 + 4));
        }
        assert_eq!(s.len(), 400 + 56);
    }

    #[test]
    fn subtract_into_appends_without_clearing() {
        let mut s = RangeSet::new();
        s.insert(r(2, 4));
        let mut out = vec![r(0, 1)];
        s.subtract_into(r(0, 6), &mut out);
        assert_eq!(out, vec![r(0, 1), r(0, 2), r(4, 6)]);
    }

    #[test]
    fn covered_in_iter_matches_covered_in() {
        let mut s = RangeSet::new();
        s.insert(r(2, 4));
        s.insert(r(6, 8));
        s.insert(r(10, 20));
        for win in [r(0, 25), r(3, 7), r(4, 6), r(8, 10), r(5, 5)] {
            let a: Vec<GranuleRange> = s.covered_in_iter(win).collect();
            assert_eq!(a, s.covered_in(win), "window {win}");
        }
    }

    #[test]
    fn with_capacity_starts_empty() {
        let s = RangeSet::with_capacity(16);
        assert!(s.is_empty());
        assert_eq!(s.run_count(), 0);
    }

    #[test]
    fn hint_fast_path_in_order_extends() {
        // The identity-rundown pattern: strictly in-order single-granule
        // completions. Every insert after the first must hit the hint.
        let mut s = RangeSet::new();
        for g in 0..1000u32 {
            let i = s.insert_run(r(g, g + 1));
            assert_eq!(i.merged, r(0, g + 1));
            assert_eq!(i.added, 1);
            assert_eq!(i.absorbed, usize::from(g > 0));
        }
        assert_eq!(s.run_count(), 1);
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn hint_does_not_break_bridging_insert() {
        let mut s = RangeSet::new();
        s.insert(r(0, 5)); // hint -> run 0
        s.insert(r(10, 15)); // hint -> run 1
        s.insert(r(4, 6)); // behind the hinted run: slow path
        assert_eq!(s.run_count(), 2);
        assert!(s.contains_range(r(0, 6)));
        // adjacent-to-next must coalesce, not stop at the hint run
        let mut t = RangeSet::new();
        t.insert(r(0, 5));
        t.insert(r(5, 10)); // hint on the merged run
        t.insert(r(12, 20));
        let i = t.insert_run(r(10, 12)); // extends hint run right up to next
        assert_eq!(i.merged, r(0, 20));
        assert_eq!(i.absorbed, 2);
        assert_eq!(t.run_count(), 1);
    }

    #[test]
    fn hint_is_not_part_of_equality() {
        let mut a = RangeSet::new();
        a.insert(r(0, 5));
        a.insert(r(10, 15));
        let mut b = RangeSet::new();
        b.insert(r(10, 15));
        b.insert(r(0, 5));
        assert_eq!(a, b, "same runs, different hint history");
    }

    #[test]
    fn hint_survives_interleaved_queries() {
        // Mixed access: inserts out of order, with covered/stale hints.
        let mut s = RangeSet::new();
        s.insert(r(50, 60));
        s.insert(r(0, 10));
        let i = s.insert_run(r(55, 58)); // inside the now-shifted run
        assert_eq!(i.merged, r(50, 60));
        assert_eq!(i.added, 0);
        s.insert(r(20, 30));
        let i = s.insert_run(r(25, 35)); // extend middle run
        assert_eq!(i.merged, r(20, 35));
        assert_eq!(i.added, 5);
        assert_eq!(s.run_count(), 3);
    }
}
