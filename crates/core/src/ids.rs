//! Identifier newtypes used throughout the executive.

use std::fmt;

/// Index of a phase *definition* within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseId(pub u32);

/// Index of a phase *instance* — one dispatch of a definition. Programs
/// with loops dispatch the same definition many times; each dispatch is a
/// distinct instance with its own granule completion state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u32);

/// A worker processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

/// A computation description in the descriptor arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DescId(pub u32);

/// A job stream (the multi-parallel-job-stream environment of the paper's
/// introduction is modelled by running several jobs on one machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase#{}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst#{}", self.0)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for DescId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A half-open range of granule indices `[lo, hi)` within one phase
/// instance. Granules are the paper's indivisible computations;
/// descriptions cover contiguous collections of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GranuleRange {
    /// First granule index in the range.
    pub lo: u32,
    /// One past the last granule index.
    pub hi: u32,
}

impl GranuleRange {
    /// Construct a range; `lo` must not exceed `hi`.
    pub fn new(lo: u32, hi: u32) -> GranuleRange {
        assert!(lo <= hi, "invalid granule range {lo}..{hi}");
        GranuleRange { lo, hi }
    }

    /// Number of granules covered.
    #[inline]
    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    /// True when the range covers nothing.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    /// True when granule `g` lies in the range.
    #[inline]
    pub fn contains(self, g: u32) -> bool {
        g >= self.lo && g < self.hi
    }

    /// Split into `[lo, lo+at)` and `[lo+at, hi)`. `at` must be within the
    /// range length (both sides may be empty only at the extremes).
    pub fn split_at(self, at: u32) -> (GranuleRange, GranuleRange) {
        assert!(at <= self.len(), "split point beyond range");
        (
            GranuleRange::new(self.lo, self.lo + at),
            GranuleRange::new(self.lo + at, self.hi),
        )
    }

    /// Intersection with another range, if non-empty.
    pub fn intersect(self, other: GranuleRange) -> Option<GranuleRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(GranuleRange::new(lo, hi))
        } else {
            None
        }
    }

    /// Iterate over granule indices.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        self.lo..self.hi
    }
}

impl fmt::Display for GranuleRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = GranuleRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
    }

    #[test]
    fn range_split() {
        let r = GranuleRange::new(5, 15);
        let (a, b) = r.split_at(4);
        assert_eq!(a, GranuleRange::new(5, 9));
        assert_eq!(b, GranuleRange::new(9, 15));
        let (c, d) = r.split_at(0);
        assert!(c.is_empty());
        assert_eq!(d, r);
    }

    #[test]
    fn range_intersect() {
        let a = GranuleRange::new(0, 10);
        let b = GranuleRange::new(5, 20);
        assert_eq!(a.intersect(b), Some(GranuleRange::new(5, 10)));
        let c = GranuleRange::new(10, 12);
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    #[should_panic(expected = "invalid granule range")]
    fn range_rejects_inverted() {
        let _ = GranuleRange::new(5, 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhaseId(3).to_string(), "phase#3");
        assert_eq!(GranuleRange::new(1, 4).to_string(), "[1,4)");
    }
}
