//! The waiting computation queue.
//!
//! "The waiting computation queue was kept in a known order and ... such
//! conflicting computations would be placed ahead of the normal
//! computations in the queue and, thus, given higher priority."
//!
//! Two segments implement that order: an *elevated* segment (released
//! conflicting/enabled computations, FIFO) ahead of per-job *normal*
//! segments (FIFO within a job, round-robin across jobs so that a
//! multi-parallel-job-stream environment shares the machine).

use crate::descriptor::QueueClass;
use crate::ids::{DescId, JobId};
use std::collections::VecDeque;

/// The executive's waiting computation queue.
#[derive(Debug, Default)]
pub struct WaitingQueue {
    elevated: VecDeque<DescId>,
    normal: Vec<VecDeque<DescId>>, // indexed by job
    rr_cursor: usize,
    len: usize,
}

/// Initial per-segment capacity: enough for every release of a typical
/// phase (two tasks per processor on a large machine) before the segment
/// deques ever reallocate.
const SEGMENT_CAPACITY: usize = 128;

impl WaitingQueue {
    /// Queue serving `jobs` job streams (≥ 1), with segment storage
    /// pre-reserved so steady-state pushes stay allocation-free.
    pub fn new(jobs: usize) -> WaitingQueue {
        Self::with_capacity(jobs, SEGMENT_CAPACITY)
    }

    /// Queue serving `jobs` job streams with `cap` slots pre-reserved per
    /// segment (sized from the expected task count per phase).
    pub fn with_capacity(jobs: usize, cap: usize) -> WaitingQueue {
        assert!(jobs > 0, "need at least one job stream");
        WaitingQueue {
            elevated: VecDeque::with_capacity(cap),
            normal: (0..jobs).map(|_| VecDeque::with_capacity(cap)).collect(),
            rr_cursor: 0,
            len: 0,
        }
    }

    /// Total queued descriptions.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append to the back of the given class ("behind the current phase
    /// description" for universal successors is achieved by normal-class
    /// FIFO order).
    #[inline]
    pub fn push_back(&mut self, id: DescId, class: QueueClass, job: JobId) {
        self.len += 1;
        match class {
            QueueClass::Elevated => self.elevated.push_back(id),
            QueueClass::Normal => self.normal[job.0 as usize].push_back(id),
        }
    }

    /// Push to the *front* of the given class. Used for split remainders so
    /// the current phase keeps its place ahead of anything queued behind it.
    #[inline]
    pub fn push_front(&mut self, id: DescId, class: QueueClass, job: JobId) {
        self.len += 1;
        match class {
            QueueClass::Elevated => self.elevated.push_front(id),
            QueueClass::Normal => self.normal[job.0 as usize].push_front(id),
        }
    }

    /// Pop the next description: elevated first, then round-robin over the
    /// jobs' normal segments.
    pub fn pop(&mut self) -> Option<DescId> {
        if let Some(id) = self.elevated.pop_front() {
            self.len -= 1;
            return Some(id);
        }
        let jobs = self.normal.len();
        for k in 0..jobs {
            let j = (self.rr_cursor + k) % jobs;
            if let Some(id) = self.normal[j].pop_front() {
                self.rr_cursor = (j + 1) % jobs;
                self.len -= 1;
                return Some(id);
            }
        }
        None
    }

    /// Pop the first description within the leading `window` entries (in
    /// [`WaitingQueue::pop`] order) for which `pred` holds; when none
    /// matches, pop the head. This is the data-proximity assignment scan:
    /// the window bounds the executive time spent matching, and falling
    /// back to the head keeps the queue work-conserving — a seeking worker
    /// never leaves empty-handed while work waits.
    ///
    /// Matching the overall head behaves exactly like `pop` (round-robin
    /// cursor advances); deeper matches are removed in place and leave the
    /// cursor untouched, so job-stream fairness is preserved.
    pub fn pop_matching(
        &mut self,
        window: usize,
        mut pred: impl FnMut(DescId) -> bool,
    ) -> Option<DescId> {
        let mut scanned = 0usize;
        for pos in 0..self.elevated.len() {
            if scanned >= window {
                return self.pop();
            }
            let id = self.elevated[pos];
            if pred(id) {
                self.elevated.remove(pos);
                self.len -= 1;
                return Some(id);
            }
            scanned += 1;
        }
        let jobs = self.normal.len();
        for k in 0..jobs {
            let j = (self.rr_cursor + k) % jobs;
            for pos in 0..self.normal[j].len() {
                if scanned >= window {
                    return self.pop();
                }
                let id = self.normal[j][pos];
                if pred(id) {
                    if self.elevated.is_empty() && k == 0 && pos == 0 {
                        // exact head: keep pop()'s fairness bookkeeping
                        return self.pop();
                    }
                    self.normal[j].remove(pos);
                    self.len -= 1;
                    return Some(id);
                }
                scanned += 1;
            }
        }
        self.pop()
    }

    /// Pop the next description from the *allowed* segments only — the
    /// affinity-restricted variant of [`WaitingQueue::pop`] used by
    /// heterogeneous processor classes. With both segments allowed this
    /// is exactly `pop` (same round-robin bookkeeping); with a segment
    /// disallowed its entries are invisible to this worker and wait for
    /// one whose class may serve them.
    pub fn pop_class(&mut self, allow_elevated: bool, allow_normal: bool) -> Option<DescId> {
        if allow_elevated {
            if let Some(id) = self.elevated.pop_front() {
                self.len -= 1;
                return Some(id);
            }
        }
        if allow_normal {
            let jobs = self.normal.len();
            for k in 0..jobs {
                let j = (self.rr_cursor + k) % jobs;
                if let Some(id) = self.normal[j].pop_front() {
                    self.rr_cursor = (j + 1) % jobs;
                    self.len -= 1;
                    return Some(id);
                }
            }
        }
        None
    }

    /// Peek without removing (same order as [`WaitingQueue::pop`]).
    pub fn peek(&self) -> Option<DescId> {
        if let Some(&id) = self.elevated.front() {
            return Some(id);
        }
        let jobs = self.normal.len();
        for k in 0..jobs {
            let j = (self.rr_cursor + k) % jobs;
            if let Some(&id) = self.normal[j].front() {
                return Some(id);
            }
        }
        None
    }

    /// Number of elevated entries (diagnostics).
    pub fn elevated_len(&self) -> usize {
        self.elevated.len()
    }

    /// Remove a specific description from wherever it is queued. Linear
    /// scan — only used by the priority-elevation carve path, where queue
    /// depth is a handful of descriptions. Returns true if found.
    pub fn remove(&mut self, id: DescId) -> bool {
        if let Some(pos) = self.elevated.iter().position(|&x| x == id) {
            self.elevated.remove(pos);
            self.len -= 1;
            return true;
        }
        for q in &mut self.normal {
            if let Some(pos) = q.iter().position(|&x| x == id) {
                q.remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DescId {
        DescId(i)
    }

    #[test]
    fn elevated_precedes_normal() {
        let mut q = WaitingQueue::new(1);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Elevated, JobId(0));
        q.push_back(d(3), QueueClass::Normal, JobId(0));
        q.push_back(d(4), QueueClass::Elevated, JobId(0));
        let order: Vec<DescId> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![d(2), d(4), d(1), d(3)]);
    }

    #[test]
    fn push_front_keeps_remainder_ahead() {
        let mut q = WaitingQueue::new(1);
        q.push_back(d(10), QueueClass::Normal, JobId(0)); // current phase master
        q.push_back(d(20), QueueClass::Normal, JobId(0)); // universal successor behind it
        let popped = q.pop().unwrap();
        assert_eq!(popped, d(10));
        // split: remainder goes back to the front, still ahead of successor
        q.push_front(d(11), QueueClass::Normal, JobId(0));
        assert_eq!(q.pop(), Some(d(11)));
        assert_eq!(q.pop(), Some(d(20)));
    }

    #[test]
    fn round_robin_across_jobs() {
        let mut q = WaitingQueue::new(2);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Normal, JobId(0));
        q.push_back(d(3), QueueClass::Normal, JobId(1));
        q.push_back(d(4), QueueClass::Normal, JobId(1));
        let order: Vec<DescId> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![d(1), d(3), d(2), d(4)]);
    }

    #[test]
    fn round_robin_skips_empty_jobs() {
        let mut q = WaitingQueue::new(3);
        q.push_back(d(1), QueueClass::Normal, JobId(2));
        q.push_back(d(2), QueueClass::Normal, JobId(2));
        assert_eq!(q.pop(), Some(d(1)));
        assert_eq!(q.pop(), Some(d(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_matching_prefers_match_within_window() {
        let mut q = WaitingQueue::new(1);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Normal, JobId(0));
        q.push_back(d(3), QueueClass::Normal, JobId(0));
        assert_eq!(q.pop_matching(8, |id| id == d(3)), Some(d(3)));
        assert_eq!(q.len(), 2);
        // remaining order unchanged
        assert_eq!(q.pop(), Some(d(1)));
        assert_eq!(q.pop(), Some(d(2)));
    }

    #[test]
    fn pop_matching_falls_back_to_head_when_no_match() {
        let mut q = WaitingQueue::new(1);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Normal, JobId(0));
        assert_eq!(q.pop_matching(8, |_| false), Some(d(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_matching_window_bounds_scan() {
        let mut q = WaitingQueue::new(1);
        for i in 1..=6 {
            q.push_back(d(i), QueueClass::Normal, JobId(0));
        }
        // match sits at position 4 but window is 2: falls back to head
        assert_eq!(q.pop_matching(2, |id| id == d(5)), Some(d(1)));
        // window 0 is pure queue order
        assert_eq!(q.pop_matching(0, |id| id == d(5)), Some(d(2)));
    }

    #[test]
    fn pop_matching_scans_elevated_before_normal() {
        let mut q = WaitingQueue::new(1);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Elevated, JobId(0));
        q.push_back(d(3), QueueClass::Elevated, JobId(0));
        // both elevated entries match; the earlier one wins
        assert_eq!(q.pop_matching(8, |id| id.0 >= 2), Some(d(2)));
        assert_eq!(q.pop(), Some(d(3)));
        assert_eq!(q.pop(), Some(d(1)));
    }

    #[test]
    fn pop_matching_head_match_advances_round_robin() {
        let mut q = WaitingQueue::new(2);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Normal, JobId(0));
        q.push_back(d(3), QueueClass::Normal, JobId(1));
        // head (job 0) matches: cursor moves to job 1 as with pop()
        assert_eq!(q.pop_matching(8, |id| id == d(1)), Some(d(1)));
        assert_eq!(q.pop(), Some(d(3)));
        assert_eq!(q.pop(), Some(d(2)));
    }

    #[test]
    fn pop_matching_deep_match_preserves_fairness_cursor() {
        let mut q = WaitingQueue::new(2);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Normal, JobId(0));
        q.push_back(d(3), QueueClass::Normal, JobId(1));
        // deep match in job 0: cursor still at job 0 for the next pop
        assert_eq!(q.pop_matching(8, |id| id == d(2)), Some(d(2)));
        assert_eq!(q.pop(), Some(d(1)));
        assert_eq!(q.pop(), Some(d(3)));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_matching_empty_queue() {
        let mut q = WaitingQueue::new(1);
        assert_eq!(q.pop_matching(8, |_| true), None);
    }

    #[test]
    fn pop_class_restricts_segments() {
        let mut q = WaitingQueue::new(2);
        q.push_back(d(1), QueueClass::Normal, JobId(0));
        q.push_back(d(2), QueueClass::Elevated, JobId(0));
        q.push_back(d(3), QueueClass::Normal, JobId(1));
        // Normal-only skips the elevated head entirely.
        assert_eq!(q.pop_class(false, true), Some(d(1)));
        // Elevated-only sees only the elevated segment.
        assert_eq!(q.pop_class(true, false), Some(d(2)));
        assert_eq!(q.pop_class(true, false), None);
        // Both segments allowed behaves exactly like pop().
        assert_eq!(q.pop_class(true, true), Some(d(3)));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_class_keeps_round_robin_fairness() {
        let mut a = WaitingQueue::new(2);
        let mut b = WaitingQueue::new(2);
        for (id, job) in [(1, 0), (2, 0), (3, 1), (4, 1)] {
            a.push_back(d(id), QueueClass::Normal, JobId(job));
            b.push_back(d(id), QueueClass::Normal, JobId(job));
        }
        let via_pop: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
        let via_class: Vec<_> = std::iter::from_fn(|| b.pop_class(true, true)).collect();
        assert_eq!(via_pop, via_class);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = WaitingQueue::new(2);
        q.push_back(d(5), QueueClass::Normal, JobId(1));
        q.push_back(d(6), QueueClass::Elevated, JobId(0));
        assert_eq!(q.peek(), Some(d(6)));
        assert_eq!(q.pop(), Some(d(6)));
        assert_eq!(q.peek(), Some(d(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
