//! Enablement mappings between a computational phase and its successor.
//!
//! The paper's central taxonomy. Let `p` range over completed granules of
//! the current phase, `q` over uncompleted ones, and `r` over granules of
//! the successor phase. A successor granule `r` may be computed early iff
//! it has been *enabled* by completed granules and `PARALLEL(q, r)` holds
//! for every uncompleted `q`. The mapping from completions to enablements
//! took five observed forms in PAX/CASPER:
//!
//! * [`EnablementMapping::Universal`] — any successor granule is enabled by
//!   the null set (the two phases share nothing). 6/22 phases, 266/1188
//!   lines.
//! * [`EnablementMapping::Identity`] — completion of granule *i* enables
//!   successor granule *i* (`B(I)=A(I)` followed by `C(I)=B(I)`). 9/22
//!   phases, 551/1188 lines.
//! * [`EnablementMapping::Null`] — no overlap is possible because serial
//!   actions and decisions intervene. 4/22 phases, 262/1188 lines.
//! * [`EnablementMapping::ReverseIndirect`] — a successor granule needs a
//!   *set* of current granules, identifiable only by mapping backward
//!   through a (dynamically generated) information-selection map. 2/22
//!   phases, 78/1188 lines.
//! * [`EnablementMapping::ForwardIndirect`] — completion of current granule
//!   *i* directly enables successor granule `IMAP(i)`. 1/22 phases,
//!   31/1188 lines.
//!
//! A sixth, **seam** mapping (checkerboard neighbor enablement) is
//! "foreseen" but beyond the paper's scope; we implement it as the
//! extension that carries the concluding claim that "more than 90 percent
//! of the computational phases are amenable to some form of phase
//! overlapping".
//!
//! All indirect forms lower to one executive mechanism, exactly as the
//! paper observes ("Each leads naturally to a list of current phase
//! granules that must be completed to enable a particular successor phase
//! granule"): the [`CompositeMap`], a per-successor requirement count plus
//! an inverted current→successors index, driven by enablement counters
//! decremented during completion processing.

use std::sync::Arc;

/// Discriminant of an enablement mapping, used for census tables and
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MappingKind {
    /// Successor enabled by the null set.
    Universal,
    /// `i` enables `i`.
    Identity,
    /// `i` enables `IMAP(i)`.
    ForwardIndirect,
    /// Successor `r` requires `{IMAP(j, r)}`.
    ReverseIndirect,
    /// Grid-neighbor enablement (extension; "seam mapping problem").
    Seam,
    /// No overlap possible.
    Null,
}

impl MappingKind {
    /// Short lowercase label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            MappingKind::Universal => "universal",
            MappingKind::Identity => "identity",
            MappingKind::ForwardIndirect => "forward-indirect",
            MappingKind::ReverseIndirect => "reverse-indirect",
            MappingKind::Seam => "seam",
            MappingKind::Null => "null",
        }
    }

    /// Whether the paper counts this mapping as "easily overlapped"
    /// (universal + identity = 68% of phases).
    pub fn easily_overlapped(self) -> bool {
        matches!(self, MappingKind::Universal | MappingKind::Identity)
    }

    /// Whether any overlap at all is possible under this mapping.
    pub fn overlappable(self) -> bool {
        !matches!(self, MappingKind::Null)
    }
}

/// A forward information-selection map: current granule `i` writes the
/// location read by successor granule `fmap[i]` (the paper's
/// `B(IMAP(I))=A(IMAP(I))` → `C(I)=B(I)` fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardMap {
    /// `fmap[i]` = successor granule enabled by current granule `i`.
    pub targets: Vec<u32>,
    /// Total granule count of the successor phase (the image of `targets`
    /// may cover only a subset; the rest are enabled by the null set).
    pub successor_granules: u32,
}

impl ForwardMap {
    /// Build, validating that every target is within the successor phase.
    pub fn new(targets: Vec<u32>, successor_granules: u32) -> ForwardMap {
        assert!(
            targets.iter().all(|&t| t < successor_granules),
            "forward map target out of successor range"
        );
        ForwardMap {
            targets,
            successor_granules,
        }
    }
}

/// A reverse information-selection map: successor granule `r` reads the
/// locations written by current granules `requires[r]` (the paper's
/// `B(I) = Σ_J A(IMAP(J,I))` fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverseMap {
    /// `requires[r]` = current-phase granules that must complete before
    /// successor granule `r` is enabled. Entries may repeat; duplicates
    /// are counted once.
    pub requires: Vec<Vec<u32>>,
}

impl ReverseMap {
    /// Build, validating against the current phase's granule count.
    pub fn new(requires: Vec<Vec<u32>>, current_granules: u32) -> ReverseMap {
        assert!(
            requires
                .iter()
                .all(|deps| deps.iter().all(|&d| d < current_granules)),
            "reverse map dependency out of current-phase range"
        );
        ReverseMap { requires }
    }
}

/// Structural seam topology: which current-phase granules border each
/// successor granule. The checkerboard instance lives in `pax-workloads`;
/// the executive only needs the generated lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeamMap {
    /// `requires[r]` = bordering current-phase granules of successor `r`.
    pub requires: Vec<Vec<u32>>,
}

/// An enablement mapping from one phase to its successor.
#[derive(Debug, Clone)]
pub enum EnablementMapping {
    /// Any successor granule is enabled by the null set of completions.
    Universal,
    /// Completion of granule `i` enables successor granule `i`; requires
    /// equal granule counts.
    Identity,
    /// Forward information-selection map (dynamically generated in both
    /// PAX/CASPER occurrences).
    ForwardIndirect(Arc<ForwardMap>),
    /// Reverse information-selection map.
    ReverseIndirect(Arc<ReverseMap>),
    /// Structural neighbor map (extension).
    Seam(Arc<SeamMap>),
    /// No overlap: serial actions/decisions intervene between the phases.
    Null,
}

impl EnablementMapping {
    /// The census discriminant.
    pub fn kind(&self) -> MappingKind {
        match self {
            EnablementMapping::Universal => MappingKind::Universal,
            EnablementMapping::Identity => MappingKind::Identity,
            EnablementMapping::ForwardIndirect(_) => MappingKind::ForwardIndirect,
            EnablementMapping::ReverseIndirect(_) => MappingKind::ReverseIndirect,
            EnablementMapping::Seam(_) => MappingKind::Seam,
            EnablementMapping::Null => MappingKind::Null,
        }
    }

    /// Whether this mapping requires a composite granule map (all indirect
    /// forms do; universal/identity/null do not).
    pub fn needs_composite(&self) -> bool {
        matches!(
            self,
            EnablementMapping::ForwardIndirect(_)
                | EnablementMapping::ReverseIndirect(_)
                | EnablementMapping::Seam(_)
        )
    }
}

/// The executive's uniform representation of indirect enablement: for each
/// successor granule a requirement count, and for each current granule the
/// successor granules whose counters it decrements (CSR layout).
///
/// "During completion processing, a status bit ... can be checked and, if
/// it is set, an enablement counter decremented. When the enablement
/// counter reaches zero, it can be taken as a signal that the
/// successor-phase granules are computable."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeMap {
    /// Requirement count per successor granule. Zero means the granule is
    /// enabled by the null set (released at successor initiation).
    pub requires: Vec<u32>,
    /// CSR offsets into `targets`, one slot per current granule + 1.
    pub offsets: Vec<u32>,
    /// Successor granules decremented by each current granule.
    pub targets: Vec<u32>,
}

impl CompositeMap {
    /// Number of (current → successor) dependence entries; the executive
    /// charges `composite_map_per_entry` ticks per entry to build the map.
    pub fn entries(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Successor granules that depend on current granule `i`.
    #[inline]
    pub fn dependents_of(&self, i: u32) -> &[u32] {
        let a = self.offsets[i as usize] as usize;
        let b = self.offsets[i as usize + 1] as usize;
        &self.targets[a..b]
    }

    /// Current-phase granules that appear in at least one requirement list
    /// (the "enabling set" whose priority the paper suggests elevating).
    pub fn enabling_granules(&self) -> Vec<u32> {
        (0..self.offsets.len() - 1)
            .filter(|&i| self.offsets[i] != self.offsets[i + 1])
            .map(|i| i as u32)
            .collect()
    }

    /// Build from a forward map. Duplicate writers of one successor
    /// granule each count toward its requirement (all writes must land
    /// before the successor may read).
    pub fn from_forward(fmap: &ForwardMap, current_granules: u32) -> CompositeMap {
        assert!(
            fmap.targets.len() <= current_granules as usize,
            "forward map longer than current phase"
        );
        let n_succ = fmap.successor_granules as usize;
        let mut requires = vec![0u32; n_succ];
        let mut offsets = vec![0u32; current_granules as usize + 1];
        for (i, &t) in fmap.targets.iter().enumerate() {
            requires[t as usize] += 1;
            offsets[i + 1] = 1;
        }
        // prefix-sum offsets
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut targets = vec![0u32; fmap.targets.len()];
        for (i, &t) in fmap.targets.iter().enumerate() {
            let slot = offsets[i] as usize; // each current granule has ≤1 target here
            targets[slot] = t;
        }
        CompositeMap {
            requires,
            offsets,
            targets,
        }
    }

    /// Build from a reverse map (dedup within each requirement list).
    pub fn from_reverse(rmap: &ReverseMap, current_granules: u32) -> CompositeMap {
        Self::from_requirement_lists(&rmap.requires, current_granules)
    }

    /// Build from a seam map.
    pub fn from_seam(smap: &SeamMap, current_granules: u32) -> CompositeMap {
        Self::from_requirement_lists(&smap.requires, current_granules)
    }

    /// Shared constructor: invert per-successor requirement lists into the
    /// CSR current→successors index.
    pub fn from_requirement_lists(lists: &[Vec<u32>], current_granules: u32) -> CompositeMap {
        let n_cur = current_granules as usize;
        let mut requires = vec![0u32; lists.len()];
        let mut counts = vec![0u32; n_cur];
        // First pass: dedup counts.
        let mut scratch: Vec<u32> = Vec::new();
        let mut dedup_lists: Vec<Vec<u32>> = Vec::with_capacity(lists.len());
        for (r, deps) in lists.iter().enumerate() {
            scratch.clear();
            scratch.extend_from_slice(deps);
            scratch.sort_unstable();
            scratch.dedup();
            requires[r] = scratch.len() as u32;
            for &d in &scratch {
                counts[d as usize] += 1;
            }
            dedup_lists.push(scratch.clone());
        }
        let mut offsets = vec![0u32; n_cur + 1];
        for i in 0..n_cur {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; offsets[n_cur] as usize];
        for (r, deps) in dedup_lists.iter().enumerate() {
            for &d in deps {
                targets[cursor[d as usize] as usize] = r as u32;
                cursor[d as usize] += 1;
            }
        }
        CompositeMap {
            requires,
            offsets,
            targets,
        }
    }

    /// Build the composite for any indirect mapping; panics on
    /// non-indirect mappings (callers check [`EnablementMapping::needs_composite`]).
    pub fn build(mapping: &EnablementMapping, current_granules: u32) -> CompositeMap {
        match mapping {
            EnablementMapping::ForwardIndirect(f) => Self::from_forward(f, current_granules),
            EnablementMapping::ReverseIndirect(r) => Self::from_reverse(r, current_granules),
            EnablementMapping::Seam(s) => Self::from_seam(s, current_granules),
            other => panic!(
                "composite map requested for non-indirect mapping {:?}",
                other.kind()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels() {
        assert_eq!(MappingKind::Universal.label(), "universal");
        assert!(MappingKind::Identity.easily_overlapped());
        assert!(!MappingKind::ReverseIndirect.easily_overlapped());
        assert!(MappingKind::Seam.overlappable());
        assert!(!MappingKind::Null.overlappable());
    }

    #[test]
    fn forward_composite_counts_duplicates() {
        // current granules 0..4 write successor granules [2, 2, 0, 1]
        let f = ForwardMap::new(vec![2, 2, 0, 1], 3);
        let c = CompositeMap::from_forward(&f, 4);
        assert_eq!(c.requires, vec![1, 1, 2]);
        assert_eq!(c.dependents_of(0), &[2]);
        assert_eq!(c.dependents_of(1), &[2]);
        assert_eq!(c.dependents_of(2), &[0]);
        assert_eq!(c.dependents_of(3), &[1]);
        assert_eq!(c.entries(), 4);
    }

    #[test]
    fn forward_composite_partial_coverage() {
        // Only 2 current granules map; successor has 5 granules, 3 of which
        // have zero requirements (null-set enabled).
        let f = ForwardMap::new(vec![4, 0], 5);
        let c = CompositeMap::from_forward(&f, 2);
        assert_eq!(c.requires, vec![1, 0, 0, 0, 1]);
        assert_eq!(c.requires.iter().filter(|&&x| x == 0).count(), 3);
    }

    #[test]
    fn reverse_composite_dedups() {
        // successor 0 requires {1,1,2} -> {1,2}; successor 1 requires {0}
        let r = ReverseMap::new(vec![vec![1, 1, 2], vec![0]], 3);
        let c = CompositeMap::from_reverse(&r, 3);
        assert_eq!(c.requires, vec![2, 1]);
        assert_eq!(c.dependents_of(0), &[1]);
        assert_eq!(c.dependents_of(1), &[0]);
        assert_eq!(c.dependents_of(2), &[0]);
    }

    #[test]
    fn decrement_simulation_releases_when_zero() {
        let r = ReverseMap::new(vec![vec![0, 1], vec![1, 2]], 3);
        let c = CompositeMap::from_reverse(&r, 3);
        let mut counters = c.requires.clone();
        let mut released: Vec<u32> = Vec::new();
        for completed in [1u32, 0, 2] {
            for &dep in c.dependents_of(completed) {
                counters[dep as usize] -= 1;
                if counters[dep as usize] == 0 {
                    released.push(dep);
                }
            }
        }
        // successor 0 releases after {0,1} complete; successor 1 after {1,2}
        assert_eq!(released, vec![0, 1]);
    }

    #[test]
    fn enabling_granules_extraction() {
        let r = ReverseMap::new(vec![vec![5], vec![2, 5]], 8);
        let c = CompositeMap::from_reverse(&r, 8);
        assert_eq!(c.enabling_granules(), vec![2, 5]);
    }

    #[test]
    fn seam_composite() {
        // Two successor granules each requiring two bordering current ones.
        let s = SeamMap {
            requires: vec![vec![0, 1], vec![1, 2]],
        };
        let c = CompositeMap::from_seam(&s, 3);
        assert_eq!(c.requires, vec![2, 2]);
        assert_eq!(c.dependents_of(1), &[0, 1]);
    }

    #[test]
    fn build_dispatches_on_kind() {
        let f = Arc::new(ForwardMap::new(vec![0], 1));
        let m = EnablementMapping::ForwardIndirect(f);
        assert!(m.needs_composite());
        let c = CompositeMap::build(&m, 1);
        assert_eq!(c.requires, vec![1]);
        assert!(!EnablementMapping::Universal.needs_composite());
        assert_eq!(EnablementMapping::Identity.kind(), MappingKind::Identity);
    }

    #[test]
    #[should_panic(expected = "out of successor range")]
    fn forward_map_validates() {
        let _ = ForwardMap::new(vec![3], 3);
    }

    #[test]
    #[should_panic(expected = "out of current-phase range")]
    fn reverse_map_validates() {
        let _ = ReverseMap::new(vec![vec![9]], 3);
    }

    #[test]
    #[should_panic(expected = "non-indirect mapping")]
    fn build_rejects_identity() {
        let _ = CompositeMap::build(&EnablementMapping::Identity, 4);
    }
}
