//! Run reports: everything an experiment needs to reproduce the paper's
//! utilization and rundown numbers from one simulation.

use crate::ids::InstanceId;
use crate::mapping::MappingKind;
use crate::phase::PhaseStats;
use pax_sim::metrics::{GanttTrace, StepTrace};
use pax_sim::time::{SimDuration, SimTime};
use std::fmt;

/// Per-phase-instance report entry.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Instance id, in initiation order.
    pub instance: InstanceId,
    /// Phase definition name.
    pub name: String,
    /// Job stream.
    pub job: u32,
    /// Granule count.
    pub granules: u32,
    /// Mapping through which this instance was enabled by its
    /// predecessor, if it was overlapped.
    pub enabled_by: Option<MappingKind>,
    /// Timing and overlap statistics.
    pub stats: PhaseStats,
}

impl PhaseReport {
    /// Fraction of this instance's granules that completed before its
    /// predecessor finished.
    pub fn overlap_fraction(&self) -> f64 {
        if self.granules == 0 {
            0.0
        } else {
            self.stats.overlap_granules as f64 / self.granules as f64
        }
    }
}

/// Per-job summary.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// When the job entered the system (its arrival instant — `t = 0`
    /// for batch jobs added directly).
    pub arrived_at: SimTime,
    /// When the job's first phase was dispatched. Equals `arrived_at`
    /// unless an admission policy deferred the job.
    pub started_at: SimTime,
    /// When the job's program reached `End` (`None` for unfinished or
    /// shed jobs).
    pub finished_at: Option<SimTime>,
    /// True when the admission policy shed the job instead of running it.
    pub rejected: bool,
}

impl JobReport {
    /// Elapsed wall-clock for the job from dispatch, if it finished.
    pub fn makespan(&self) -> Option<SimDuration> {
        self.finished_at.map(|f| f.since(self.started_at))
    }

    /// Service latency: arrival to completion, including any admission
    /// deferral, if the job finished.
    pub fn latency(&self) -> Option<SimDuration> {
        if self.rejected {
            return None;
        }
        self.finished_at.map(|f| f.since(self.arrived_at))
    }
}

/// Per-processor-class accounting on a heterogeneous machine
/// ([`ProcessorClass`](pax_sim::machine::ProcessorClass)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// Class name, as declared on the machine.
    pub name: String,
    /// Workers in this class (summed across groups on a sharded fleet).
    pub processors: usize,
    /// Declared speed (percent of nominal).
    pub speed_percent: u32,
    /// Useful compute ticks executed by this class (crash-preempted work
    /// deducted, exactly like `compute_time`).
    pub busy: SimDuration,
    /// Tasks dispatched to this class.
    pub tasks: u64,
}

impl ClassReport {
    /// This class's utilization over `makespan`: useful compute over the
    /// class's own capacity.
    pub fn utilization(&self, makespan: SimDuration) -> f64 {
        if makespan.is_zero() || self.processors == 0 {
            return 0.0;
        }
        self.busy.ticks() as f64 / (self.processors as u64 * makespan.ticks()) as f64
    }
}

/// Per-resource-pool accounting
/// ([`ResourcePool`](pax_sim::machine::ResourcePool)): how often and how
/// long dispatch waited on the pool's tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolReport {
    /// Pool name, as declared on the machine.
    pub name: String,
    /// Declared token capacity (per machine group).
    pub tokens: u32,
    /// Dispatch attempts that found the pool empty and parked the worker.
    pub waits: u64,
    /// Total worker-ticks spent parked on this pool.
    pub wait_ticks: SimDuration,
}

/// Full result of one simulation run.
#[derive(Debug)]
pub struct RunReport {
    /// Worker processor count.
    pub processors: usize,
    /// Completion time of the last event.
    pub makespan: SimDuration,
    /// Total useful computation time across workers.
    pub compute_time: SimDuration,
    /// Total management (executive) time.
    pub mgmt_time: SimDuration,
    /// Serial inter-phase algorithm time (the "serial actions and
    /// decisions" behind null mappings) — kept separate from management
    /// so the computation-to-management ratio matches the paper's.
    pub serial_time: SimDuration,
    /// Whether management displaced worker computation
    /// (`ExecutivePlacement::StealsWorker`).
    pub mgmt_steals_workers: bool,
    /// Busy-compute-processor step trace.
    pub busy_trace: StepTrace,
    /// Busy-executive step trace.
    pub mgmt_trace: StepTrace,
    /// Availability timeline: how many worker processors were up over
    /// time. Empty when fault injection is disabled (all `processors`
    /// were available for the whole run).
    pub avail_trace: StepTrace,
    /// Worker time lost to crash preemption: ticks spent executing
    /// granule ranges whose results were destroyed by a processor crash.
    /// Included in the busy trace (the worker was occupied) but deducted
    /// from `compute_time` (the work must be redone).
    pub lost_work: SimDuration,
    /// Granule ranges reissued to the dispatch queue after a crash.
    pub retries: u64,
    /// Processor crashes that occurred during the run.
    pub crashes: u64,
    /// Phase instances in initiation order. With instance eviction
    /// enabled (service mode), holds only the instances still live when
    /// the run ended — evicted entries are dropped to bound memory.
    pub phases: Vec<PhaseReport>,
    /// Job summaries, including arrival/latency fields for service runs.
    pub jobs: Vec<JobReport>,
    /// Jobs shed by the admission policy (`AdmissionPolicy::Shed`).
    pub jobs_rejected: u64,
    /// Peak simultaneously-live phase instances. Without eviction this is
    /// the total instance count; with eviction it is the recycling pool's
    /// high-water mark — the bounded-memory figure for service runs.
    pub instances_peak: usize,
    /// Events processed by the simulator.
    pub events: u64,
    /// Total tasks dispatched to workers.
    pub tasks_dispatched: u64,
    /// Total descriptor splits performed.
    pub splits: u64,
    /// Granules executed in their home memory cluster (zero on
    /// uniform-memory machines, where no cluster model is configured).
    pub local_granules: u64,
    /// Granules executed outside their home cluster, each paying the
    /// machine's remote stall.
    pub remote_granules: u64,
    /// Total worker time lost to remote-access stalls. Included in
    /// `compute_time` (the worker is occupied) but not useful work — see
    /// [`RunReport::effective_utilization`].
    pub remote_stall: SimDuration,
    /// Total descriptions ever created.
    pub descriptors_created: u64,
    /// Peak simultaneously-live descriptions.
    pub descriptors_peak: usize,
    /// Optional per-worker Gantt trace.
    pub gantt: Option<GanttTrace>,
    /// Warnings raised during the run (interlock violations etc.).
    pub warnings: Vec<String>,
    /// Per-class accounting on heterogeneous machines, in declaration
    /// order. Empty on homogeneous (classless) machines.
    pub class_reports: Vec<ClassReport>,
    /// Per-pool token-wait accounting on resource-constrained machines,
    /// in declaration order. Empty when no pools are declared.
    pub pool_reports: Vec<PoolReport>,
}

impl RunReport {
    /// Overall worker utilization: useful compute over capacity.
    pub fn utilization(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.compute_time.ticks() as f64 / (self.processors as u64 * self.makespan.ticks()) as f64
    }

    /// Available processor-time over the whole run: the integral of the
    /// availability timeline, or nominal capacity
    /// (`processors * makespan`) when fault injection was disabled.
    pub fn available_ticks(&self) -> u64 {
        if self.avail_trace.points().is_empty() {
            self.processors as u64 * self.makespan.ticks()
        } else {
            self.avail_trace
                .integral(SimTime::ZERO, SimTime::ZERO + self.makespan)
        }
    }

    /// Available processor-time in `[from, to)`, against the same
    /// fault-free fallback as [`RunReport::available_ticks`].
    pub fn available_in(&self, from: SimTime, to: SimTime) -> u64 {
        if self.avail_trace.points().is_empty() {
            self.processors as u64 * to.since(from).ticks()
        } else {
            self.avail_trace.integral(from, to)
        }
    }

    /// Utilization measured against *available* rather than nominal
    /// processors: useful compute over the availability integral. Under
    /// fault injection this is the honest figure — idle time the machine
    /// could never have used (the processor was down) is not charged
    /// against the executive. Equals [`RunReport::utilization`] when
    /// faults are disabled.
    pub fn available_utilization(&self) -> f64 {
        let avail = self.available_ticks();
        if avail == 0 {
            return 0.0;
        }
        self.compute_time.ticks() as f64 / avail as f64
    }

    /// Fraction of executed granules that ran outside their home memory
    /// cluster (0.0 when no clustered-memory model was configured).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_granules + self.remote_granules;
        if total == 0 {
            0.0
        } else {
            self.remote_granules as f64 / total as f64
        }
    }

    /// Utilization counting only useful computation: remote-access stalls
    /// occupy workers but move no algorithm forward, so they are deducted.
    /// Equals [`RunReport::utilization`] on uniform-memory machines.
    pub fn effective_utilization(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        let useful = self
            .compute_time
            .ticks()
            .saturating_sub(self.remote_stall.ticks());
        useful as f64 / (self.processors as u64 * self.makespan.ticks()) as f64
    }

    /// The paper's computation-to-management ratio (∞-safe: returns
    /// `f64::INFINITY` when management time is zero).
    pub fn comp_to_mgmt_ratio(&self) -> f64 {
        if self.mgmt_time.is_zero() {
            f64::INFINITY
        } else {
            self.compute_time.ticks() as f64 / self.mgmt_time.ticks() as f64
        }
    }

    /// Idle processor-time over the whole run (management wait included
    /// for dedicated executives; for worker-stealing executives the stolen
    /// time counts as management, not idle).
    pub fn idle_time(&self) -> u64 {
        let cap = self.processors as u64 * self.makespan.ticks();
        let used = self.compute_time.ticks()
            + if self.mgmt_steals_workers {
                self.mgmt_time.ticks()
            } else {
                0
            };
        cap.saturating_sub(used)
    }

    /// Rundown analysis for phase instance `idx`: the time from when busy
    /// processors last dropped below full (`processors`) until the phase
    /// completed, and the idle processor-time lost in that window.
    pub fn rundown_of(&self, idx: usize) -> Option<RundownWindow> {
        let p = &self.phases[idx];
        let end = p.stats.completed_at?;
        let start_search = p.stats.current_at;
        let onset = self
            .busy_trace
            .rundown_onset(self.processors as u32, end)
            .unwrap_or(start_search)
            .max(start_search);
        let idle = self.busy_trace.idle_time(self.processors, onset, end);
        Some(RundownWindow {
            onset,
            end,
            idle_processor_time: idle,
        })
    }

    /// Total overlap granules across all phases.
    pub fn total_overlap_granules(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.stats.overlap_granules as u64)
            .sum()
    }

    /// Makespan of job 0 (single-job convenience).
    pub fn job_makespan(&self) -> Option<SimDuration> {
        self.jobs.first().and_then(|j| j.makespan())
    }

    /// Jobs that ran to completion (shed jobs excluded).
    pub fn jobs_completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.latency().is_some()).count()
    }

    /// Nearest-rank percentile of job service latency
    /// (arrival → completion) over completed jobs. `p` in `[0, 100]`.
    /// `None` when no job completed.
    pub fn latency_percentile(&self, p: f64) -> Option<SimDuration> {
        let mut lat: Vec<SimDuration> = self.jobs.iter().filter_map(|j| j.latency()).collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_unstable();
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank: ceil(p/100 * n), 1-based; p = 0 reads the minimum.
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        Some(lat[rank.max(1) - 1])
    }

    /// Median job service latency.
    pub fn latency_p50(&self) -> Option<SimDuration> {
        self.latency_percentile(50.0)
    }

    /// 99th-percentile job service latency — the service-mode tail figure.
    pub fn latency_p99(&self) -> Option<SimDuration> {
        self.latency_percentile(99.0)
    }

    /// Steady-state throughput: completed jobs per tick of makespan
    /// (0.0 for an empty run).
    pub fn throughput(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.jobs_completed() as f64 / self.makespan.ticks() as f64
    }

    /// Utilization of the named processor class (useful compute over the
    /// class's capacity), or `None` when no such class was declared.
    pub fn class_utilization(&self, name: &str) -> Option<f64> {
        self.class_reports
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.utilization(self.makespan))
    }

    /// Token-wait accounting for the named resource pool, or `None` when
    /// no such pool was declared.
    pub fn pool_report(&self, name: &str) -> Option<&PoolReport> {
        self.pool_reports.iter().find(|p| p.name == name)
    }

    /// Render a compact textual summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            s,
            "makespan {}  utilization {:.4}  compute {}  mgmt {}  C/M {:.1}",
            self.makespan,
            self.utilization(),
            self.compute_time,
            self.mgmt_time,
            self.comp_to_mgmt_ratio(),
        );
        if self.crashes > 0 {
            let _ = writeln!(
                s,
                "  crashes {}  retries {}  lost-work {}  avail-utilization {:.4}",
                self.crashes,
                self.retries,
                self.lost_work,
                self.available_utilization(),
            );
        }
        for c in &self.class_reports {
            let _ = writeln!(
                s,
                "  class {:<12} procs {:>4}  speed {:>4}%  busy {}  tasks {}  utilization {:.4}",
                c.name,
                c.processors,
                c.speed_percent,
                c.busy,
                c.tasks,
                c.utilization(self.makespan),
            );
        }
        for p in &self.pool_reports {
            let _ = writeln!(
                s,
                "  pool {:<13} tokens {:>3}  waits {:>6}  wait-ticks {}",
                p.name, p.tokens, p.waits, p.wait_ticks,
            );
        }
        for (i, p) in self.phases.iter().enumerate() {
            let _ = writeln!(
                s,
                "  [{i}] {:<22} granules {:>8}  init {:>10}  current {:>10}  done {:>10}  overlap {:>8} ({:>5.1}%)  via {}",
                p.name,
                p.granules,
                p.stats.initiated_at.ticks(),
                p.stats.current_at.ticks(),
                p.stats
                    .completed_at
                    .map(|t| t.ticks().to_string())
                    .unwrap_or_else(|| "-".into()),
                p.stats.overlap_granules,
                p.overlap_fraction() * 100.0,
                p.enabled_by.map(|k| k.label()).unwrap_or("-"),
            );
        }
        s
    }
}

/// A phase-end rundown window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RundownWindow {
    /// When busy processors last dropped below full before phase end.
    pub onset: SimTime,
    /// Phase completion.
    pub end: SimTime,
    /// Idle processor-time lost in the window.
    pub idle_processor_time: u64,
}

impl RundownWindow {
    /// Length of the window.
    pub fn span(&self) -> SimDuration {
        self.end.since(self.onset)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_sim::time::SimTime;

    fn mk_report() -> RunReport {
        let mut busy = StepTrace::new();
        busy.record(SimTime(0), 4);
        busy.record(SimTime(80), 2);
        busy.record(SimTime(100), 0);
        RunReport {
            processors: 4,
            makespan: SimDuration(100),
            compute_time: SimDuration(360),
            mgmt_time: SimDuration(10),
            serial_time: SimDuration::ZERO,
            mgmt_steals_workers: false,
            busy_trace: busy,
            mgmt_trace: StepTrace::new(),
            avail_trace: StepTrace::new(),
            lost_work: SimDuration::ZERO,
            retries: 0,
            crashes: 0,
            phases: vec![PhaseReport {
                instance: InstanceId(0),
                name: "a".into(),
                job: 0,
                granules: 100,
                enabled_by: None,
                stats: {
                    let mut st = PhaseStats::new(SimTime(0));
                    st.completed_at = Some(SimTime(100));
                    st.overlap_granules = 25;
                    st
                },
            }],
            jobs: vec![JobReport {
                arrived_at: SimTime(0),
                started_at: SimTime(0),
                finished_at: Some(SimTime(100)),
                rejected: false,
            }],
            jobs_rejected: 0,
            instances_peak: 1,
            events: 10,
            tasks_dispatched: 8,
            splits: 4,
            local_granules: 0,
            remote_granules: 0,
            remote_stall: SimDuration::ZERO,
            descriptors_created: 12,
            descriptors_peak: 6,
            gantt: None,
            warnings: vec![],
            class_reports: vec![],
            pool_reports: vec![],
        }
    }

    #[test]
    fn class_and_pool_accounting() {
        let mut r = mk_report();
        assert_eq!(r.class_utilization("fast"), None);
        assert!(r.pool_report("operator").is_none());
        r.class_reports = vec![
            ClassReport {
                name: "fast".into(),
                processors: 1,
                speed_percent: 200,
                busy: SimDuration(80),
                tasks: 5,
            },
            ClassReport {
                name: "slow".into(),
                processors: 3,
                speed_percent: 50,
                busy: SimDuration(280),
                tasks: 3,
            },
        ];
        r.pool_reports = vec![PoolReport {
            name: "operator".into(),
            tokens: 2,
            waits: 7,
            wait_ticks: SimDuration(140),
        }];
        // makespan 100: fast = 80/(1*100), slow = 280/(3*100)
        assert!((r.class_utilization("fast").unwrap() - 0.8).abs() < 1e-12);
        assert!((r.class_utilization("slow").unwrap() - 280.0 / 300.0).abs() < 1e-12);
        let p = r.pool_report("operator").unwrap();
        assert_eq!(p.waits, 7);
        assert_eq!(p.wait_ticks, SimDuration(140));
        let s = r.summary();
        assert!(s.contains("class fast"));
        assert!(s.contains("pool operator"));
        // Zero-makespan guard.
        r.makespan = SimDuration::ZERO;
        assert_eq!(r.class_utilization("fast"), Some(0.0));
    }

    #[test]
    fn utilization_math() {
        let r = mk_report();
        assert!((r.utilization() - 0.9).abs() < 1e-12);
        assert!((r.comp_to_mgmt_ratio() - 36.0).abs() < 1e-12);
        assert_eq!(r.idle_time(), 400 - 360);
    }

    #[test]
    fn rundown_window_extraction() {
        let r = mk_report();
        let w = r.rundown_of(0).unwrap();
        assert_eq!(w.onset, SimTime(80));
        assert_eq!(w.end, SimTime(100));
        // [80,100): capacity 80, busy 2*20=40 -> idle 40
        assert_eq!(w.idle_processor_time, 40);
        assert_eq!(w.span(), SimDuration(20));
    }

    #[test]
    fn overlap_fraction() {
        let r = mk_report();
        assert!((r.phases[0].overlap_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(r.total_overlap_granules(), 25);
    }

    #[test]
    fn steals_worker_idle_accounting() {
        let mut r = mk_report();
        r.mgmt_steals_workers = true;
        assert_eq!(r.idle_time(), 400 - 360 - 10);
    }

    #[test]
    fn summary_renders() {
        let r = mk_report();
        let s = r.summary();
        assert!(s.contains("utilization"));
        assert!(s.contains("overlap"));
    }

    #[test]
    fn infinite_ratio_when_mgmt_free() {
        let mut r = mk_report();
        r.mgmt_time = SimDuration::ZERO;
        assert!(r.comp_to_mgmt_ratio().is_infinite());
    }

    #[test]
    fn remote_fraction_uniform_memory_is_zero() {
        let r = mk_report();
        assert_eq!(r.remote_fraction(), 0.0);
        assert!((r.effective_utilization() - r.utilization()).abs() < 1e-12);
    }

    #[test]
    fn available_ticks_falls_back_to_nominal_capacity() {
        let r = mk_report();
        assert_eq!(r.available_ticks(), 400);
        assert_eq!(r.available_in(SimTime(10), SimTime(60)), 200);
        assert!((r.available_utilization() - r.utilization()).abs() < 1e-12);
    }

    #[test]
    fn degraded_capacity_accounting() {
        let mut r = mk_report();
        // 4 up until t=40, one crash -> 3 up until repair at t=90.
        r.avail_trace.record(SimTime(0), 4);
        r.avail_trace.record(SimTime(40), 3);
        r.avail_trace.record(SimTime(90), 4);
        r.crashes = 1;
        r.retries = 1;
        r.lost_work = SimDuration(15);
        // 40*4 + 50*3 + 10*4 = 350
        assert_eq!(r.available_ticks(), 350);
        assert_eq!(r.available_in(SimTime(40), SimTime(90)), 150);
        assert!((r.available_utilization() - 360.0 / 350.0).abs() < 1e-12);
        let s = r.summary();
        assert!(s.contains("crashes 1"));
        assert!(s.contains("avail-utilization"));
    }

    #[test]
    fn latency_percentiles_and_throughput() {
        let mut r = mk_report();
        r.jobs = (0..100)
            .map(|i| JobReport {
                arrived_at: SimTime(i),
                started_at: SimTime(i),
                finished_at: Some(SimTime(i + 1 + i)), // latency i+1: 1..=100
                rejected: false,
            })
            .collect();
        // shed and unfinished jobs are excluded from both counts
        r.jobs.push(JobReport {
            arrived_at: SimTime(7),
            started_at: SimTime(7),
            finished_at: None,
            rejected: true,
        });
        r.jobs.push(JobReport {
            arrived_at: SimTime(9),
            started_at: SimTime(9),
            finished_at: None,
            rejected: false,
        });
        r.jobs_rejected = 1;
        assert_eq!(r.jobs_completed(), 100);
        assert_eq!(r.latency_p50(), Some(SimDuration(50)));
        assert_eq!(r.latency_p99(), Some(SimDuration(99)));
        assert_eq!(r.latency_percentile(100.0), Some(SimDuration(100)));
        assert_eq!(r.latency_percentile(0.0), Some(SimDuration(1)));
        // 100 completions over 100 ticks of makespan
        assert!((r.throughput() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_excludes_deferral_start_but_counts_from_arrival() {
        let j = JobReport {
            arrived_at: SimTime(10),
            started_at: SimTime(25), // deferred 15 ticks by admission
            finished_at: Some(SimTime(40)),
            rejected: false,
        };
        assert_eq!(j.makespan(), Some(SimDuration(15)));
        assert_eq!(j.latency(), Some(SimDuration(30)));
    }

    #[test]
    fn no_completions_means_no_percentiles() {
        let mut r = mk_report();
        r.jobs.clear();
        assert_eq!(r.jobs_completed(), 0);
        assert_eq!(r.latency_p50(), None);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn remote_fraction_and_effective_utilization() {
        let mut r = mk_report();
        r.local_granules = 75;
        r.remote_granules = 25;
        r.remote_stall = SimDuration(60);
        assert!((r.remote_fraction() - 0.25).abs() < 1e-12);
        // (360 - 60) / 400
        assert!((r.effective_utilization() - 0.75).abs() < 1e-12);
        // plain utilization still counts occupied time
        assert!((r.utilization() - 0.9).abs() < 1e-12);
    }
}
